//! Shared-slow-memory parallel SYRK, executed for real on `P` workers —
//! the paper's "future work" direction (communication-efficient *parallel*
//! symmetric kernels), explored as an extension.
//!
//! The model follows Section 2.2 of the paper: `P` workers, each with a
//! private fast memory of `S` elements, exchange data with a shared slow
//! memory. The result matrix is partitioned into independent units (square
//! tiles, or the triangle blocks of TBS), the units are distributed over the
//! workers, and each worker's communication volume is the sum of the unit
//! footprints it processes — exactly the quantity the sequential analysis
//! counts, now *measured* per worker.
//!
//! Units of work are schedule-IR [`TaskGroup`]s (the same representation the
//! sequential engine executes): each unit's group loads its result
//! footprint, streams the rows of `A` it needs and applies the rank-`1`
//! updates through [`ComputeOp`]s. [`parallel_syrk`] registers the operands
//! in a [`SharedSlowMemory`] and hands the groups to
//! [`Engine::execute_parallel`], which distributes them over a work-stealing
//! queue of scoped worker threads — each with a capacity-checked private
//! fast memory counting its own I/O. The dry-run path remains the oracle:
//! each returned [`WorkerIo`] is asserted equal to the
//! [`Engine::dry_run`] accounting of exactly the groups that worker
//! processed (see [`analytic_worker_io`]), so the observed and analytic
//! per-worker volumes can never drift apart.
//!
//! Comparing the two partitioning strategies reproduces the paper's headline
//! at the parallel level: distributing **triangle blocks** needs ≈ `1/√2`
//! of the per-worker input traffic of distributing square tiles.

use crate::plan::TbsPlan;
use std::collections::BTreeMap;
use symla_baselines::error::{OocError, Result};
use symla_baselines::params::{square_tile_for_capacity, tile_extents};
use symla_matrix::kernels::FlopCount;
use symla_matrix::{Matrix, Scalar, SymMatrix};
use symla_memory::{MachineConfig, MachineModel, MatrixId, Region, SharedSlowMemory};
use symla_obs::TraceRecorder;
use symla_sched::engine::ParallelError;
use symla_sched::indexing::CyclicIndexing;
use symla_sched::ir::{BufId, BufSlice, ComputeOp};
use symla_sched::{
    partition_groups, Engine, EngineConfig, NodeAssignment, Schedule, ScheduleBuilder, TaskGroup,
    WorkerRun,
};

/// How the result matrix is partitioned into per-worker units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockStrategy {
    /// Square tiles of side `t` with `t² + 2t ≤ S` (the conventional
    /// distribution).
    SquareTiles,
    /// Triangle blocks of the TBS partition (side `k`, `k(k+1)/2 ≤ S`),
    /// falling back to square tiles where the partition does not apply.
    TriangleBlocks,
}

impl BlockStrategy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BlockStrategy::SquareTiles => "square tiles",
            BlockStrategy::TriangleBlocks => "triangle blocks",
        }
    }
}

/// Synthetic matrix ids used inside the per-unit task groups (the parallel
/// planner analyzes schedules without a backing machine).
const C_MATRIX: MatrixId = MatrixId::synthetic(0);
const A_MATRIX: MatrixId = MatrixId::synthetic(1);

/// One independent unit of work: its result footprint (as exact regions and
/// as an explicit entry list) and the distinct rows of `A` it reads.
///
/// The unit's schedule-IR task group — load the footprint, stream every
/// needed row of `A` once per column, store the footprint back — is
/// materialized on demand by [`unit_schedule`], so the planner holds one
/// region/row list per unit rather than `m` copies of it.
#[derive(Debug, Clone)]
struct Unit {
    c_regions: Vec<Region>,
    entries: Vec<(usize, usize)>,
    rows: Vec<usize>,
}

/// Builds a unit from its result-footprint regions (disjoint, covering
/// exactly `entries`), its entry list and its distinct `A` rows.
fn build_unit(c_regions: Vec<Region>, entries: Vec<(usize, usize)>, rows: Vec<usize>) -> Unit {
    debug_assert_eq!(
        c_regions.iter().map(Region::len).sum::<usize>(),
        entries.len(),
        "footprint regions must cover the entry list exactly"
    );
    Unit {
        c_regions,
        entries,
        rows,
    }
}

/// Emits the compute step updating one footprint region of a unit from one
/// streamed column of `A`.
///
/// `abuf` holds the column's values at the unit's (sorted, distinct) `rows`;
/// each region's row and column index ranges are contiguous sub-slices of
/// that buffer, located by binary search. The op adds
/// `alpha · A[i,q] · A[j,q]` to every entry `(i, j)` of the region — the
/// exact term the reference SYRK accumulates.
fn region_update<T: Scalar>(
    sched: &mut ScheduleBuilder<T>,
    alpha: T,
    abuf: BufId,
    rows: &[usize],
    cbuf: BufId,
    region: &Region,
) {
    let pos = |r: usize| {
        rows.binary_search(&r)
            .expect("footprint row missing from the unit's row set")
    };
    match region {
        Region::SymPairs { rows: pair_rows } => {
            debug_assert_eq!(pair_rows.as_slice(), rows, "pair blocks own their row set");
            sched.compute(ComputeOp::TrianglePairs {
                alpha,
                x: BufSlice::whole(abuf, rows.len()),
                dst: cbuf,
            });
        }
        Region::SymLowerTriangle { start, size } => {
            let p = pos(*start);
            debug_assert_eq!(rows[p + size - 1], start + size - 1, "contiguous row range");
            sched.compute(ComputeOp::SprLower {
                alpha,
                x: BufSlice::new(abuf, p, *size),
                dst: cbuf,
            });
        }
        Region::SymRect {
            row0,
            col0,
            rows: rc,
            cols: cc,
        } => {
            let px = pos(*row0);
            let py = pos(*col0);
            debug_assert_eq!(rows[px + rc - 1], row0 + rc - 1, "contiguous row range");
            debug_assert_eq!(rows[py + cc - 1], col0 + cc - 1, "contiguous column range");
            sched.compute(ComputeOp::Ger {
                alpha,
                x: BufSlice::new(abuf, px, *rc),
                y: BufSlice::new(abuf, py, *cc),
                dst: cbuf,
            });
        }
        other => unreachable!("unit footprints are symmetric regions, got {other}"),
    }
}

/// Materializes the task group of one unit as a single-group schedule:
/// load the footprint, stream every needed row of `A` once per column
/// (applying the rank-1 updates), store the footprint back.
fn unit_schedule<T: Scalar>(unit: &Unit, m: usize, alpha: T) -> Schedule<T> {
    let mut sched = ScheduleBuilder::new();
    sched.begin_group();
    let cbufs: Vec<_> = unit
        .c_regions
        .iter()
        .map(|r| sched.load(C_MATRIX, r.clone()))
        .collect();
    for q in 0..m {
        let abuf = sched.load(
            A_MATRIX,
            Region::Rows {
                rows: unit.rows.clone(),
                col0: q,
                cols: 1,
            },
        );
        for (cbuf, region) in cbufs.iter().zip(unit.c_regions.iter()) {
            region_update(&mut sched, alpha, abuf, &unit.rows, *cbuf, region);
        }
        sched.discard(abuf);
    }
    let muls = (unit.entries.len() * m) as u128;
    sched.flops(FlopCount::new(muls, muls));
    for cbuf in cbufs {
        sched.store(cbuf);
    }
    sched.finish()
}

/// Communication volume of one worker of a parallel run.
///
/// Returned by [`parallel_syrk`] as *observed* counts (what the worker's
/// capacity-checked machine measured while executing its task groups) and by
/// [`analytic_worker_io`] as the *analytic* dry-run prediction for the same
/// groups; the two are asserted equal on every run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerIo {
    /// Elements the worker read from slow memory (result entries + input
    /// rows).
    pub loads: u64,
    /// Elements the worker wrote back.
    pub stores: u64,
    /// Number of units the worker processed.
    pub tasks: usize,
}

/// Outcome of a parallel run.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Number of workers.
    pub workers: usize,
    /// Partitioning strategy used.
    pub strategy: BlockStrategy,
    /// Per-worker fast-memory budget.
    pub memory_per_worker: usize,
    /// Per-worker communication volumes.
    pub per_worker: Vec<WorkerIo>,
    /// Elements of load traffic the workers issued ahead of the consuming
    /// unit (pipelined group handoff; 0 without a lookahead). Part of the
    /// total load volume, not in addition to it.
    pub prefetched_loads: u64,
}

impl ParallelReport {
    /// Total loads over all workers.
    pub fn total_loads(&self) -> u64 {
        self.per_worker.iter().map(|w| w.loads).sum()
    }

    /// Total stores over all workers.
    pub fn total_stores(&self) -> u64 {
        self.per_worker.iter().map(|w| w.stores).sum()
    }

    /// The busiest worker's load volume (the quantity parallel lower bounds
    /// constrain).
    pub fn max_loads(&self) -> u64 {
        self.per_worker.iter().map(|w| w.loads).max().unwrap_or(0)
    }

    /// Load imbalance: the busiest worker's load volume over the mean
    /// per-worker load volume. `1.0` means perfectly balanced; the parallel
    /// makespan of a bandwidth-bound run scales with this factor, since the
    /// run finishes when the busiest worker does. Returns `1.0` for an empty
    /// or traffic-free report.
    pub fn imbalance(&self) -> f64 {
        if self.per_worker.is_empty() || self.total_loads() == 0 {
            return 1.0;
        }
        let mean = self.total_loads() as f64 / self.per_worker.len() as f64;
        self.max_loads() as f64 / mean
    }
}

/// Square-tile units over the lower triangle of the order-`n` window starting
/// at absolute row/column `offset`.
fn square_units(n: usize, offset: usize, t: usize, out: &mut Vec<Unit>) {
    let extents = tile_extents(n, t);
    for (tj, &(j0, jc)) in extents.iter().enumerate() {
        for (ti, &(i0, ic)) in extents.iter().enumerate().skip(tj) {
            let mut entries = Vec::new();
            for i in i0..i0 + ic {
                for j in j0..(j0 + jc).min(i + 1) {
                    entries.push((offset + i, offset + j));
                }
            }
            if entries.is_empty() {
                continue;
            }
            let mut rows: Vec<usize> = (i0..i0 + ic).collect();
            if i0 != j0 {
                rows.extend(j0..j0 + jc);
            }
            rows.sort_unstable();
            rows.dedup();
            let rows: Vec<usize> = rows.into_iter().map(|r| offset + r).collect();

            let regions = if ti == tj {
                vec![Region::SymLowerTriangle {
                    start: offset + i0,
                    size: ic,
                }]
            } else {
                vec![Region::SymRect {
                    row0: offset + i0,
                    col0: offset + j0,
                    rows: ic,
                    cols: jc,
                }]
            };
            out.push(build_unit(regions, entries, rows));
        }
    }
}

/// Builds the unit list for the triangle-block strategy: the TBS partition's
/// triangle blocks where it applies, recursing into the diagonal zones, and
/// square tiles for the leftover strip / non-applicable sizes.
fn triangle_units(n: usize, offset: usize, plan: &TbsPlan, t: usize, out: &mut Vec<Unit>) {
    match plan.grid_size(n) {
        Some(c) if c + 1 >= plan.k => {
            let k = plan.k;
            let covered = c * k;
            // triangle blocks
            let family = CyclicIndexing::new(c, k);
            for i in 0..c {
                for j in 0..c {
                    let rows_rel = family.row_indices(i, j);
                    let mut rows: Vec<usize> = rows_rel.iter().map(|&r| offset + r).collect();
                    rows.sort_unstable();
                    let mut entries = Vec::new();
                    for (a, &r) in rows.iter().enumerate() {
                        for &rp in rows.iter().take(a) {
                            entries.push((r, rp));
                        }
                    }
                    let regions = vec![Region::SymPairs { rows: rows.clone() }];
                    out.push(build_unit(regions, entries, rows));
                }
            }
            // diagonal zones: recurse
            for u in 0..k {
                triangle_units(c, offset + u * c, plan, t, out);
            }
            // leftover strip: square tiles over the strip rows
            let leftover = n - covered;
            if leftover > 0 {
                strip_units(n, covered, offset, t, out);
            }
        }
        _ => square_units(n, offset, t, out),
    }
}

/// Square-tile units covering rows `[row_start, n)` of the lower triangle
/// (the leftover strip of the TBS partition), in window coordinates shifted
/// by `offset`.
fn strip_units(n: usize, row_start: usize, offset: usize, t: usize, out: &mut Vec<Unit>) {
    for &(i0, ic) in &tile_extents(n - row_start, t) {
        for &(j0, jc) in &tile_extents(n, t) {
            if j0 >= row_start + i0 + ic {
                break;
            }
            let lo_row = row_start + i0;
            let hi_row = row_start + i0 + ic;
            let mut entries = Vec::new();
            let mut regions = Vec::new();
            // Column-wise footprint: column j holds the rows max(lo, j)..hi,
            // so straddling tiles decompose into per-column segments while
            // fully sub-diagonal tiles collapse back into one rectangle.
            if j0 + jc <= lo_row {
                regions.push(Region::SymRect {
                    row0: offset + lo_row,
                    col0: offset + j0,
                    rows: ic,
                    cols: jc,
                });
            } else {
                for j in j0..j0 + jc {
                    let lo = lo_row.max(j);
                    if lo < hi_row {
                        regions.push(Region::SymRect {
                            row0: offset + lo,
                            col0: offset + j,
                            rows: hi_row - lo,
                            cols: 1,
                        });
                    }
                }
            }
            for i in lo_row..hi_row {
                for j in j0..(j0 + jc).min(i + 1) {
                    entries.push((offset + i, offset + j));
                }
            }
            if entries.is_empty() {
                continue;
            }
            let mut rows: Vec<usize> = (lo_row..hi_row).collect();
            rows.extend(j0..(j0 + jc).min(n));
            rows.sort_unstable();
            rows.dedup();
            let rows: Vec<usize> = rows.into_iter().map(|r| offset + r).collect();
            out.push(build_unit(regions, entries, rows));
        }
    }
}

/// Builds the unit list of a strategy for an order-`n` result and a
/// per-worker fast memory of `memory_per_worker` elements.
fn build_units(n: usize, memory_per_worker: usize, strategy: BlockStrategy) -> Result<Vec<Unit>> {
    let t = square_tile_for_capacity(memory_per_worker)?;
    let mut units: Vec<Unit> = Vec::new();
    match strategy {
        BlockStrategy::SquareTiles => square_units(n, 0, t, &mut units),
        BlockStrategy::TriangleBlocks => {
            let plan = TbsPlan::for_memory(memory_per_worker)?;
            triangle_units(n, 0, &plan, t, &mut units);
        }
    }
    Ok(units)
}

/// Concatenates the units' task groups into one schedule (one group per
/// unit, in partition order).
fn units_schedule<T: Scalar>(units: &[Unit], m: usize, alpha: T) -> Schedule<T> {
    let groups: Vec<TaskGroup<T>> = units
        .iter()
        .flat_map(|u| unit_schedule::<T>(u, m, alpha).groups)
        .collect();
    Schedule { groups }
}

/// The engine dry-run accounting of the task groups at `groups` of
/// `schedule` — the analytic per-worker volume the paper's parallel
/// analysis predicts for the worker that processed exactly those groups.
///
/// [`parallel_syrk`] asserts that every worker's *observed* [`WorkerIo`]
/// equals this oracle; tests use it to cross-check arbitrary assignments.
pub fn analytic_worker_io<T: Scalar>(schedule: &Schedule<T>, groups: &[usize]) -> WorkerIo {
    let picked = Schedule {
        groups: groups.iter().map(|&g| schedule.groups[g].clone()).collect(),
    };
    let stats = Engine::dry_run(&picked, "parallel");
    WorkerIo {
        loads: stats.volume.loads,
        stores: stats.volume.stores,
        tasks: groups.len(),
    }
}

/// Computes `C += alpha · A · Aᵀ` in parallel with `workers` threads, each a
/// node with a private, capacity-enforced fast memory of `memory_per_worker`
/// elements against a shared slow memory, and returns the per-worker
/// communication volumes actually measured.
///
/// The result matrix is partitioned into independent units by `strategy`;
/// their task groups are distributed over the workers by the work-stealing
/// queue of [`Engine::execute_parallel`] and *executed for real*: every
/// transfer moves data through the [`SharedSlowMemory`] image of `A` and
/// `C`, counted against the worker that issued it. The numerical result is
/// exact because units cover disjoint entries of `C`.
///
/// Each returned [`WorkerIo`] is asserted (not assumed) to equal the
/// dry-run accounting of the groups that worker processed — the analytic
/// model of [`analytic_worker_io`] — so this function is its own
/// observed-vs-analytic experiment.
pub fn parallel_syrk<T: Scalar>(
    a: &Matrix<T>,
    c: &mut SymMatrix<T>,
    alpha: T,
    workers: usize,
    memory_per_worker: usize,
    strategy: BlockStrategy,
) -> Result<ParallelReport> {
    parallel_syrk_prefetched(a, c, alpha, workers, memory_per_worker, strategy, 0)
}

/// [`parallel_syrk`] with a pipelined group handoff: each worker claims up
/// to `lookahead` additional units from the work-stealing queue and issues
/// their input loads into its private fast memory while the current unit
/// computes (see `Engine::execute_parallel_with`). Per-worker volumes, the
/// observed-vs-analytic assertion and the numerical result are identical to
/// the plain run; the overlapped share is returned in
/// [`ParallelReport::prefetched_loads`] and every worker still respects its
/// capacity.
pub fn parallel_syrk_prefetched<T: Scalar>(
    a: &Matrix<T>,
    c: &mut SymMatrix<T>,
    alpha: T,
    workers: usize,
    memory_per_worker: usize,
    strategy: BlockStrategy,
    lookahead: usize,
) -> Result<ParallelReport> {
    parallel_syrk_run(
        a,
        c,
        alpha,
        workers,
        memory_per_worker,
        strategy,
        |shared, schedule| {
            Engine::execute_parallel_with(
                shared,
                schedule,
                workers,
                MachineConfig::with_capacity(memory_per_worker),
                "parallel",
                &EngineConfig::with_lookahead(lookahead),
            )
        },
    )
}

/// [`parallel_syrk_prefetched`] with observability: every worker's machine
/// reports to (a clone of) `recorder`, so the run yields one
/// [`RunTrace`](symla_obs::RunTrace) with a track per worker — group
/// claims/steals, transfers, kernels and prefetch issue→delivery arrows,
/// stamped against both the real clock and the modelled timeline of
/// `model`. Per-worker volumes, the observed-vs-analytic assertion and the
/// numerical result are identical to the unobserved run.
#[allow(clippy::too_many_arguments)]
pub fn parallel_syrk_traced<T: Scalar>(
    a: &Matrix<T>,
    c: &mut SymMatrix<T>,
    alpha: T,
    workers: usize,
    memory_per_worker: usize,
    strategy: BlockStrategy,
    lookahead: usize,
    model: &MachineModel,
    recorder: &TraceRecorder,
) -> Result<ParallelReport> {
    parallel_syrk_run(
        a,
        c,
        alpha,
        workers,
        memory_per_worker,
        strategy,
        |shared, schedule| {
            Engine::execute_parallel_traced(
                shared,
                schedule,
                workers,
                MachineConfig::with_capacity(memory_per_worker),
                "parallel",
                &EngineConfig::with_lookahead(lookahead),
                model,
                recorder,
            )
        },
    )
}

/// The shared body of the parallel SYRK entry points: build units, register
/// operands, run `execute` (the plain or traced parallel engine), hand the
/// result back and cross-check every worker against the dry-run oracle.
fn parallel_syrk_run<T: Scalar, E>(
    a: &Matrix<T>,
    c: &mut SymMatrix<T>,
    alpha: T,
    workers: usize,
    memory_per_worker: usize,
    strategy: BlockStrategy,
    execute: E,
) -> Result<ParallelReport>
where
    E: FnOnce(
        &SharedSlowMemory<T>,
        &Schedule<T>,
    ) -> std::result::Result<Vec<WorkerRun>, ParallelError>,
{
    let n = c.order();
    let m = a.cols();
    if a.rows() != n {
        return Err(OocError::Invalid(format!(
            "parallel SYRK operand mismatch: A has {} rows but C has order {n}",
            a.rows()
        )));
    }
    if workers == 0 {
        return Err(OocError::Invalid("need at least one worker".into()));
    }
    let units = build_units(n, memory_per_worker, strategy)?;
    let schedule = units_schedule::<T>(&units, m, alpha);

    // Move the operands into a shared slow memory. Insertion order matches
    // the synthetic ids the unit schedules were built against.
    let shared = SharedSlowMemory::new();
    let c_id = shared.insert_symmetric(std::mem::replace(c, SymMatrix::zeros(0)));
    let a_id = shared.insert_dense(a.clone());
    debug_assert_eq!((c_id, a_id), (C_MATRIX, A_MATRIX));

    let outcome = execute(&shared, &schedule);
    let runs = match outcome {
        Ok(runs) => runs,
        Err(e) => {
            // Hand the (partially updated) result back before reporting:
            // completed groups were stored consistently, the failed group's
            // buffers were released without a write-back. Every worker has
            // exited the scope and released its leases (even failed stores
            // release), so the take cannot fail — losing the caller's
            // matrix here would be silent data loss, hence the expect.
            *c = shared
                .take_symmetric(c_id)
                .expect("workers released every lease on abort");
            return Err(e.error.into());
        }
    };
    *c = shared.take_symmetric(c_id)?;

    let mut per_worker = Vec::with_capacity(workers);
    let mut prefetched_loads = 0;
    for run in &runs {
        let observed = WorkerIo {
            loads: run.stats.volume.loads,
            stores: run.stats.volume.stores,
            tasks: run.groups.len(),
        };
        let analytic = analytic_worker_io(&schedule, &run.groups);
        assert_eq!(
            observed, analytic,
            "observed worker I/O diverged from the dry-run oracle"
        );
        prefetched_loads += run.stats.prefetched_elements;
        per_worker.push(observed);
    }

    Ok(ParallelReport {
        workers,
        strategy,
        memory_per_worker,
        per_worker,
        prefetched_loads,
    })
}

/// Communication volume of one node of a sharded parallel run, split into
/// traffic against the node's home shard and traffic against every other
/// shard (the distributed-memory cost the partitioner minimizes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeIo {
    /// Elements moved to or from the node's home shard.
    pub local: u64,
    /// Elements moved to or from every other shard.
    pub cross: u64,
    /// Total elements the node read from slow memory (all shards).
    pub loads: u64,
    /// Total elements the node wrote back (all shards).
    pub stores: u64,
    /// Number of units the node processed.
    pub tasks: usize,
}

/// Outcome of a sharded parallel run ([`parallel_syrk_sharded`]).
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// Number of nodes.
    pub nodes: usize,
    /// Partitioning strategy used for the result matrix.
    pub strategy: BlockStrategy,
    /// Per-node fast-memory budget.
    pub memory_per_node: usize,
    /// Per-node communication volumes, *observed* by each node's
    /// capacity-checked machine and asserted equal to the partitioner's
    /// analytic prediction.
    pub per_node: Vec<NodeIo>,
    /// The static group-to-node assignment the run executed.
    pub assignment: NodeAssignment,
}

impl ShardedReport {
    /// Total cross-shard volume over all nodes.
    pub fn total_cross(&self) -> u64 {
        self.per_node.iter().map(|n| n.cross).sum()
    }

    /// The busiest node's cross-shard volume (the communication
    /// bottleneck of a bandwidth-bound distributed run).
    pub fn max_cross(&self) -> u64 {
        self.per_node.iter().map(|n| n.cross).max().unwrap_or(0)
    }

    /// Total loads over all nodes.
    pub fn total_loads(&self) -> u64 {
        self.per_node.iter().map(|n| n.loads).sum()
    }

    /// Total stores over all nodes.
    pub fn total_stores(&self) -> u64 {
        self.per_node.iter().map(|n| n.stores).sum()
    }
}

/// Computes `C += alpha · A · Aᵀ` on `nodes` nodes against a **sharded**
/// shared slow memory: `C` lives on shard 0 (every node's home), `A` on
/// shard 1, so each node's cross-shard traffic is exactly the input rows it
/// streams — the quantity the paper's communication analysis bounds.
///
/// Unlike [`parallel_syrk`]'s work-stealing queue, the units are assigned
/// to nodes *statically* by [`partition_groups`] (a distributed run cannot
/// rebalance cheaply), and every node replays its groups on its own
/// capacity-checked [`SharedSlowMemory`] worker in a scoped thread. Each
/// node's observed per-shard traffic is asserted equal to the partitioner's
/// analytic volumes, so the assignment the report carries can never drift
/// from what was executed. The numerical result is exact (units cover
/// disjoint entries of `C`) and bitwise equal to the unsharded runs.
pub fn parallel_syrk_sharded<T: Scalar>(
    a: &Matrix<T>,
    c: &mut SymMatrix<T>,
    alpha: T,
    nodes: usize,
    memory_per_node: usize,
    strategy: BlockStrategy,
) -> Result<ShardedReport> {
    let n = c.order();
    let m = a.cols();
    if a.rows() != n {
        return Err(OocError::Invalid(format!(
            "sharded SYRK operand mismatch: A has {} rows but C has order {n}",
            a.rows()
        )));
    }
    if nodes == 0 {
        return Err(OocError::Invalid("need at least one node".into()));
    }
    let units = build_units(n, memory_per_node, strategy)?;
    let schedule = units_schedule::<T>(&units, m, alpha);

    let shared = SharedSlowMemory::with_shards(2);
    let c_id = shared.insert_symmetric_on(0, std::mem::replace(c, SymMatrix::zeros(0)));
    let a_id = shared.insert_dense_on(1, a.clone());
    debug_assert_eq!((c_id, a_id), (C_MATRIX, A_MATRIX));

    let shard_of: BTreeMap<u64, usize> = [(c_id.raw(), 0), (a_id.raw(), 1)].into();
    let homes = vec![0usize; nodes];
    let assignment = partition_groups(&schedule, &shard_of, &homes);

    let config = MachineConfig::with_capacity(memory_per_node);
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = assignment
            .nodes
            .iter()
            .enumerate()
            .map(|(node, groups)| {
                let (shared, schedule) = (&shared, &schedule);
                let home = homes[node];
                scope.spawn(move || {
                    let sub = Schedule {
                        groups: groups.iter().map(|&g| schedule.groups[g].clone()).collect(),
                    };
                    let mut machine = shared.worker_on(config, home);
                    Engine::execute(&mut machine, &sub)?;
                    Ok::<_, symla_sched::EngineError>((machine.into_accounting().0, groups.len()))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sharded node panicked"))
            .collect()
    });

    let mut per_node = Vec::with_capacity(nodes);
    for (node, outcome) in outcomes.into_iter().enumerate() {
        let (stats, tasks) = match outcome {
            Ok(v) => v,
            Err(e) => {
                // Same recovery contract as the work-stealing path: every
                // node has exited the scope and released its leases, so the
                // caller's (partially updated) matrix is handed back.
                *c = shared
                    .take_symmetric(c_id)
                    .expect("nodes released every lease on abort");
                return Err(e.into());
            }
        };
        let home = homes[node];
        let (mut local, mut cross) = (0u64, 0u64);
        for shard in 0..2 {
            let vol = stats.shard(shard);
            if shard == home {
                local += vol.loads + vol.stores;
            } else {
                cross += vol.loads + vol.stores;
            }
        }
        assert_eq!(
            (local, cross),
            (assignment.local_volume[node], assignment.cross_volume[node]),
            "node {node}: observed per-shard traffic diverged from the partitioner"
        );
        per_node.push(NodeIo {
            local,
            cross,
            loads: stats.volume.loads,
            stores: stats.volume.stores,
            tasks,
        });
    }
    *c = shared.take_symmetric(c_id)?;

    Ok(ShardedReport {
        nodes,
        strategy,
        memory_per_node,
        per_node,
        assignment,
    })
}

/// The task groups a strategy would distribute for an `n × m` problem, as a
/// single schedule (one group per unit, in partition order, with `α = 1`).
/// This is the exact work list [`parallel_syrk`] hands to its workers,
/// exposed so planners, tests and engines can inspect, re-distribute or
/// execute it directly.
pub fn partition_schedule<T: Scalar>(
    n: usize,
    m: usize,
    memory_per_worker: usize,
    strategy: BlockStrategy,
) -> Result<Schedule<T>> {
    partition_schedule_scaled(n, m, memory_per_worker, strategy, T::ONE)
}

/// [`partition_schedule`] with an explicit scaling factor `alpha` baked into
/// the rank-1 updates — the exact schedule [`parallel_syrk`] executes. The
/// plan-cache serve layer compiles this once per
/// `(n, m, memory_per_worker, strategy, alpha)` and replays it across calls.
pub fn partition_schedule_scaled<T: Scalar>(
    n: usize,
    m: usize,
    memory_per_worker: usize,
    strategy: BlockStrategy,
    alpha: T,
) -> Result<Schedule<T>> {
    let units = build_units(n, memory_per_worker, strategy)?;
    Ok(units_schedule::<T>(&units, m, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use symla_matrix::generate::random_matrix_seeded;
    use symla_matrix::kernels::syrk_sym;

    fn reference(n: usize, m: usize, alpha: f64, seed: u64) -> (Matrix<f64>, SymMatrix<f64>) {
        let a: Matrix<f64> = random_matrix_seeded(n, m, seed);
        let mut c = SymMatrix::zeros(n);
        syrk_sym(alpha, &a, 1.0, &mut c).unwrap();
        (a, c)
    }

    #[test]
    fn parallel_result_matches_reference_for_both_strategies() {
        let (n, m, s) = (40, 8, 10);
        let (a, expected) = reference(n, m, 1.0, 71);
        for strategy in [BlockStrategy::SquareTiles, BlockStrategy::TriangleBlocks] {
            for workers in [1, 3, 4] {
                let mut c = SymMatrix::zeros(n);
                let report = parallel_syrk(&a, &mut c, 1.0, workers, s, strategy).unwrap();
                assert!(
                    c.approx_eq(&expected, 1e-11),
                    "{} w={workers}",
                    strategy.name()
                );
                assert_eq!(report.workers, workers);
                assert_eq!(report.per_worker.len(), workers);
                let tasks: usize = report.per_worker.iter().map(|w| w.tasks).sum();
                assert!(tasks > 0);
            }
        }
    }

    #[test]
    fn triangle_blocks_reduce_total_input_traffic() {
        // At a size where the TBS partition engages, the triangle-block
        // distribution moves less input data in total (and for the busiest
        // worker) than square tiles.
        let (n, m, s) = (120, 16, 10); // k = 4, t = 2
        let (a, expected) = reference(n, m, 1.0, 72);

        let mut c1 = SymMatrix::zeros(n);
        let square = parallel_syrk(&a, &mut c1, 1.0, 4, s, BlockStrategy::SquareTiles).unwrap();
        let mut c2 = SymMatrix::zeros(n);
        let triangle =
            parallel_syrk(&a, &mut c2, 1.0, 4, s, BlockStrategy::TriangleBlocks).unwrap();
        assert!(c1.approx_eq(&expected, 1e-10));
        assert!(c2.approx_eq(&expected, 1e-10));

        assert!(
            triangle.total_loads() < square.total_loads(),
            "triangle {} vs square {}",
            triangle.total_loads(),
            square.total_loads()
        );
        // the advantage approaches 1/sqrt(2) for the A traffic; with the C
        // traffic included we just check a strict improvement in total
        // volume. (Per-worker balance depends on the dynamic scheduling and
        // is not asserted here — thread start-up order makes it noisy for
        // tiny tasks.)
        assert!(triangle.imbalance() >= 1.0);
        assert!(square.imbalance() >= 1.0);
    }

    #[test]
    fn prefetched_parallel_run_matches_plain_run_bitwise() {
        let (n, m, s) = (40, 8, 12);
        let (a, expected) = reference(n, m, 1.0, 75);
        for strategy in [BlockStrategy::SquareTiles, BlockStrategy::TriangleBlocks] {
            let mut plain_c = SymMatrix::zeros(n);
            let plain = parallel_syrk(&a, &mut plain_c, 1.0, 3, s, strategy).unwrap();
            assert_eq!(plain.prefetched_loads, 0);
            for lookahead in [1usize, 2] {
                let mut c = SymMatrix::zeros(n);
                let report =
                    parallel_syrk_prefetched(&a, &mut c, 1.0, 3, s, strategy, lookahead).unwrap();
                let ctx = format!("{} L={lookahead}", strategy.name());
                assert!(c.approx_eq(&expected, 1e-11), "{ctx}");
                assert!(c == plain_c, "{ctx}: bitwise vs plain parallel run");
                // volumes are placement-independent and overlap is part of
                // them, not on top of them
                assert_eq!(report.total_loads(), plain.total_loads(), "{ctx}");
                assert_eq!(report.total_stores(), plain.total_stores(), "{ctx}");
                assert!(report.prefetched_loads <= report.total_loads(), "{ctx}");
            }
        }
    }

    #[test]
    fn unit_accounting_equals_partition_schedule_dry_run() {
        // The sum of per-worker volumes equals the dry-run accounting of the
        // full partition schedule: both go through the same task groups.
        let (n, m, s) = (48, 6, 10);
        let (a, _) = reference(n, m, 1.0, 73);
        for strategy in [BlockStrategy::SquareTiles, BlockStrategy::TriangleBlocks] {
            let mut c = SymMatrix::zeros(n);
            let report = parallel_syrk(&a, &mut c, 1.0, 3, s, strategy).unwrap();
            let schedule = partition_schedule::<f64>(n, m, s, strategy).unwrap();
            let stats = Engine::dry_run(&schedule, "parallel");
            assert_eq!(
                report.total_loads(),
                stats.volume.loads,
                "{}",
                strategy.name()
            );
            assert_eq!(
                report.total_stores(),
                stats.volume.stores,
                "{}",
                strategy.name()
            );
        }
    }

    #[test]
    fn stores_cover_the_lower_triangle_exactly_once() {
        // Units partition the result: total stores equal the packed size of
        // C for both strategies.
        let (n, m, s) = (60, 4, 10);
        for strategy in [BlockStrategy::SquareTiles, BlockStrategy::TriangleBlocks] {
            let schedule = partition_schedule::<f64>(n, m, s, strategy).unwrap();
            let stats = Engine::dry_run(&schedule, "parallel");
            assert_eq!(
                stats.volume.stores,
                (n * (n + 1) / 2) as u64,
                "{}",
                strategy.name()
            );
        }
    }

    #[test]
    fn parallel_execution_is_bitwise_equal_to_serial_replay() {
        // The same partition schedule executed serially through the engine
        // and in parallel through the shared-slow-memory workers must agree
        // to the last bit: groups are disjoint, so no accumulation order
        // differs, only the placement of the work.
        use symla_memory::{MachineConfig, OocMachine};
        let (n, m, s) = (48, 6, 10);
        let (a, _) = reference(n, m, 1.0, 74);
        for strategy in [BlockStrategy::SquareTiles, BlockStrategy::TriangleBlocks] {
            let schedule = partition_schedule::<f64>(n, m, s, strategy).unwrap();
            let mut machine = OocMachine::new(MachineConfig::with_capacity(s));
            let c_id = machine.insert_symmetric(SymMatrix::zeros(n));
            machine.insert_dense(a.clone());
            Engine::execute(&mut machine, &schedule).unwrap();
            let serial = machine.take_symmetric(c_id).unwrap();

            for workers in [1, 2, 4, 8] {
                let mut c = SymMatrix::zeros(n);
                let report = parallel_syrk(&a, &mut c, 1.0, workers, s, strategy).unwrap();
                assert!(c == serial, "{} P={workers}", strategy.name());
                // the serial engine run and the summed workers moved the
                // same volume
                assert_eq!(
                    report.total_loads(),
                    machine.stats().volume.loads,
                    "{} P={workers}",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn analytic_worker_io_sums_to_the_full_schedule() {
        let (n, m, s) = (36, 5, 10);
        let schedule = partition_schedule::<f64>(n, m, s, BlockStrategy::TriangleBlocks).unwrap();
        let all: Vec<usize> = (0..schedule.num_groups()).collect();
        let whole = analytic_worker_io(&schedule, &all);
        let stats = Engine::dry_run(&schedule, "parallel");
        assert_eq!(whole.loads, stats.volume.loads);
        assert_eq!(whole.stores, stats.volume.stores);
        assert_eq!(whole.tasks, schedule.num_groups());
        // splitting the groups arbitrarily conserves the totals
        let (left, right) = all.split_at(all.len() / 3);
        let a = analytic_worker_io(&schedule, left);
        let b = analytic_worker_io(&schedule, right);
        assert_eq!(a.loads + b.loads, whole.loads);
        assert_eq!(a.stores + b.stores, whole.stores);
        assert_eq!(analytic_worker_io(&schedule, &[]), WorkerIo::default());
    }

    #[test]
    fn sharded_run_matches_reference_and_the_partitioner_accounting() {
        let (n, m, s) = (40, 8, 10);
        let (a, expected) = reference(n, m, 1.0, 81);
        for strategy in [BlockStrategy::SquareTiles, BlockStrategy::TriangleBlocks] {
            let mut plain_c = SymMatrix::zeros(n);
            let plain = parallel_syrk(&a, &mut plain_c, 1.0, 2, s, strategy).unwrap();
            for nodes in [1usize, 2, 4] {
                let mut c = SymMatrix::zeros(n);
                let report = parallel_syrk_sharded(&a, &mut c, 1.0, nodes, s, strategy).unwrap();
                let ctx = format!("{} N={nodes}", strategy.name());
                assert!(c.approx_eq(&expected, 1e-11), "{ctx}");
                // Groups cover disjoint entries, so placement cannot change
                // the arithmetic: bitwise equal to the work-stealing run.
                assert!(c == plain_c, "{ctx}");
                assert_eq!(report.nodes, nodes, "{ctx}");
                assert_eq!(report.per_node.len(), nodes, "{ctx}");
                assert_eq!(report.total_loads(), plain.total_loads(), "{ctx}");
                assert_eq!(report.total_stores(), plain.total_stores(), "{ctx}");
                // C lives on the home shard and is loaded and stored once
                // per unit; everything else is cross-shard A traffic.
                assert_eq!(
                    report.total_cross(),
                    report.total_loads() - report.total_stores(),
                    "{ctx}"
                );
                assert_eq!(
                    report.total_cross(),
                    report.assignment.total_cross(),
                    "{ctx}"
                );
                assert_eq!(report.max_cross(), report.assignment.max_cross(), "{ctx}");
                let tasks: usize = report.per_node.iter().map(|n| n.tasks).sum();
                assert_eq!(tasks, report.assignment.nodes.iter().map(Vec::len).sum());
            }
        }
    }

    #[test]
    fn sharded_triangle_blocks_cut_cross_shard_traffic_toward_the_paper_ratio() {
        // The cross-shard volume of a sharded run is exactly the A traffic,
        // so the triangle-block advantage shows up undiluted by the C
        // traffic: at (120, 16, 10) the TBS partition (k = 4) streams
        // t/(k-1) = 2/3 of the square tiling's input rows — the finite-size
        // shadow of the paper's asymptotic 1/sqrt(2) ~ 0.707.
        let (n, m, s) = (120, 16, 10);
        let (a, expected) = reference(n, m, 1.0, 82);
        let mut c1 = SymMatrix::zeros(n);
        let square =
            parallel_syrk_sharded(&a, &mut c1, 1.0, 4, s, BlockStrategy::SquareTiles).unwrap();
        let mut c2 = SymMatrix::zeros(n);
        let triangle =
            parallel_syrk_sharded(&a, &mut c2, 1.0, 4, s, BlockStrategy::TriangleBlocks).unwrap();
        assert!(c1.approx_eq(&expected, 1e-10));
        assert!(c2.approx_eq(&expected, 1e-10));

        let ratio = triangle.total_cross() as f64 / square.total_cross() as f64;
        assert!(
            (0.6..=0.78).contains(&ratio),
            "cross-shard ratio {ratio} (triangle {} vs square {}) outside the 1/sqrt(2) band",
            triangle.total_cross(),
            square.total_cross()
        );
        // The bottleneck node improves too, not just the total.
        assert!(
            triangle.max_cross() < square.max_cross(),
            "triangle max {} vs square max {}",
            triangle.max_cross(),
            square.max_cross()
        );
    }

    #[test]
    fn sharded_errors_on_bad_arguments() {
        let a: Matrix<f64> = Matrix::zeros(4, 2);
        let mut c = SymMatrix::zeros(5);
        assert!(parallel_syrk_sharded(&a, &mut c, 1.0, 2, 10, BlockStrategy::SquareTiles).is_err());
        let mut c4 = SymMatrix::zeros(4);
        assert!(
            parallel_syrk_sharded(&a, &mut c4, 1.0, 0, 10, BlockStrategy::SquareTiles).is_err()
        );
    }

    #[test]
    fn errors_on_bad_arguments() {
        let a: Matrix<f64> = Matrix::zeros(4, 2);
        let mut c = SymMatrix::zeros(5);
        assert!(parallel_syrk(&a, &mut c, 1.0, 2, 10, BlockStrategy::SquareTiles).is_err());
        let mut c4 = SymMatrix::zeros(4);
        assert!(parallel_syrk(&a, &mut c4, 1.0, 0, 10, BlockStrategy::SquareTiles).is_err());
        assert!(parallel_syrk(&a, &mut c4, 1.0, 2, 1, BlockStrategy::SquareTiles).is_err());
        assert_eq!(BlockStrategy::SquareTiles.name(), "square tiles");
        assert_eq!(BlockStrategy::TriangleBlocks.name(), "triangle blocks");
    }

    #[test]
    fn report_helpers() {
        let report = ParallelReport {
            workers: 2,
            strategy: BlockStrategy::SquareTiles,
            memory_per_worker: 16,
            per_worker: vec![
                WorkerIo {
                    loads: 10,
                    stores: 2,
                    tasks: 1,
                },
                WorkerIo {
                    loads: 30,
                    stores: 4,
                    tasks: 3,
                },
            ],
            prefetched_loads: 0,
        };
        assert_eq!(report.total_loads(), 40);
        assert_eq!(report.total_stores(), 6);
        assert_eq!(report.max_loads(), 30);
        assert!((report.imbalance() - 1.5).abs() < 1e-12);
        let empty = ParallelReport {
            workers: 0,
            strategy: BlockStrategy::SquareTiles,
            memory_per_worker: 0,
            per_worker: vec![],
            prefetched_loads: 0,
        };
        assert_eq!(empty.max_loads(), 0);
        assert_eq!(empty.imbalance(), 1.0);
    }
}
