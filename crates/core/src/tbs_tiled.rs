//! Tiled TBS (Section 5.1.4 of the paper): the practical variant of the
//! triangular-block SYRK schedule.
//!
//! Element-level TBS only engages once `N ⪆ 2S`; the tiled variant replaces
//! individual result elements by `b×b` tiles, so the triangle-block phase
//! already engages when `N ⪆ √(2S)·√(k(k−1))`, at the price of a
//! `√(k/(k−1))` factor on the leading I/O term:
//!
//! `Q ≤ N²M/√(2S) · √(k/(k−1)) + N²/2 + O(NM log N)`.
//!
//! Fast memory holds the `k(k−1)/2` tiles of one triangle block plus the
//! `k·b` elements of one column of `A` restricted to the block's tile rows.

use crate::plan::TbsTiledPlan;
use symla_baselines::error::{OocError, Result};
use symla_baselines::params::{tile_extents, IoEstimate};
use symla_baselines::{ooc_syrk_build, ooc_syrk_cost, OocSyrkPlan};
use symla_matrix::kernels::FlopCount;
use symla_matrix::Scalar;
use symla_memory::{OocMachine, PanelRef, SymWindowRef};
use symla_sched::indexing::CyclicIndexing;
use symla_sched::{BufId, BufSlice, ComputeOp, Engine, Schedule, ScheduleBuilder};

/// Decomposition of a tiled-TBS invocation of order `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbsTiledDecomposition {
    /// Triangle-block side length in tiles.
    pub k: usize,
    /// Tile side length.
    pub b: usize,
    /// Tile-grid size `c`, when the triangle phase engages.
    pub grid: Option<usize>,
    /// Matrix rows covered by triangle blocks (`c·k·b`).
    pub covered: usize,
    /// Leftover rows handled by the square-block baseline.
    pub leftover: usize,
    /// Number of triangle blocks (`c²`).
    pub blocks: usize,
}

/// Computes the top-level decomposition of a tiled-TBS call of order `n`.
pub fn tbs_tiled_decomposition(n: usize, plan: &TbsTiledPlan) -> TbsTiledDecomposition {
    match plan.grid_size(n) {
        Some(c) if c + 1 >= plan.k => TbsTiledDecomposition {
            k: plan.k,
            b: plan.b,
            grid: Some(c),
            covered: c * plan.k * plan.b,
            leftover: n - c * plan.k * plan.b,
            blocks: c * c,
        },
        _ => TbsTiledDecomposition {
            k: plan.k,
            b: plan.b,
            grid: None,
            covered: 0,
            leftover: n,
            blocks: 0,
        },
    }
}

fn square_plan(plan: &TbsTiledPlan) -> Result<OocSyrkPlan> {
    OocSyrkPlan::for_memory(plan.capacity.max(plan.working_set()))
}

/// Predicted I/O of [`tbs_tiled_execute`]. Mirrors the executor exactly.
pub fn tbs_tiled_cost(n: usize, m: usize, plan: &TbsTiledPlan) -> Result<IoEstimate> {
    let sq = square_plan(plan)?;
    let decomp = tbs_tiled_decomposition(n, plan);
    let Some(c) = decomp.grid else {
        return Ok(ooc_syrk_cost(n, m, &sq));
    };
    let (k, b) = (plan.k, plan.b);
    let covered = decomp.covered;
    let leftover = decomp.leftover;
    let mut est = IoEstimate::default();

    // 1. leftover strip: rectangle part + trailing diagonal part
    if leftover > 0 {
        let t = sq.tile;
        for &(_, ic) in &tile_extents(leftover, t) {
            for &(_, jc) in &tile_extents(covered, t) {
                est.loads += (ic * jc) as u128 + (m * (ic + jc)) as u128;
                est.stores += (ic * jc) as u128;
                let pairs = (m * ic * jc) as u128;
                est.flops = est.flops.merge(&FlopCount::new(pairs, pairs));
            }
        }
        est = est.merge(&ooc_syrk_cost(leftover, m, &sq));
    }

    // 2. recursive diagonal zones (order c·b each)
    let zone = tbs_tiled_cost(c * b, m, plan)?;
    for _ in 0..k {
        est = est.merge(&zone);
    }

    // 3. triangle blocks: k(k−1)/2 tiles of b² elements each, plus k·b
    //    elements of A per column.
    let tile_pairs = (k * (k - 1) / 2) as u128;
    let blocks = (c * c) as u128;
    est.loads += blocks * (tile_pairs * (b * b) as u128 + (m * k * b) as u128);
    est.stores += blocks * tile_pairs * (b * b) as u128;
    let block_flops = tile_pairs * (m * b * b) as u128;
    est.flops = est
        .flops
        .merge(&FlopCount::new(blocks * block_flops, blocks * block_flops));
    Ok(est)
}

/// Same strip helper as element-level TBS (kept local to avoid exposing it).
fn syrk_rect_strip<T: Scalar>(
    sched: &mut ScheduleBuilder<T>,
    a: &PanelRef,
    c: &SymWindowRef,
    row_start: usize,
    strip_rows: usize,
    alpha: T,
    sq: &OocSyrkPlan,
) {
    let m = a.cols();
    let t = sq.tile;
    for &(i0, ic) in &tile_extents(strip_rows, t) {
        for &(j0, jc) in &tile_extents(row_start, t) {
            sched.begin_group();
            let cbuf = sched.load(c.id, c.rect_region(row_start + i0, j0, ic, jc));
            for q in 0..m {
                let arow = sched.load(a.id, a.col_segment_region(q, row_start + i0, ic));
                let acol = sched.load(a.id, a.col_segment_region(q, j0, jc));
                sched.compute(ComputeOp::Ger {
                    alpha,
                    x: BufSlice::whole(arow, ic),
                    y: BufSlice::whole(acol, jc),
                    dst: cbuf,
                });
                sched.discard(arow);
                sched.discard(acol);
            }
            let pairs = (m * ic * jc) as u128;
            sched.flops(FlopCount::new(pairs, pairs));
            sched.store(cbuf);
        }
    }
}

/// Appends the tiled-TBS schedule for `C[window] += alpha · A · Aᵀ` to an
/// existing builder, recursing into the diagonal zones. Operands are assumed
/// validated.
pub fn tbs_tiled_build<T: Scalar>(
    sched: &mut ScheduleBuilder<T>,
    a: &PanelRef,
    c: &SymWindowRef,
    alpha: T,
    plan: &TbsTiledPlan,
) -> Result<()> {
    let n = c.order();
    let m = a.cols();
    let sq = square_plan(plan)?;
    let decomp = tbs_tiled_decomposition(n, plan);
    let Some(cgrid) = decomp.grid else {
        ooc_syrk_build(sched, a, c, alpha, &sq);
        return Ok(());
    };
    let (k, b) = (plan.k, plan.b);
    let covered = decomp.covered;
    let leftover = decomp.leftover;

    // 1. leftover strip
    if leftover > 0 {
        syrk_rect_strip(sched, a, c, covered, leftover, alpha, &sq);
        let a_bot = a.window(covered, 0, leftover, m);
        let c_bot = c.subwindow(covered, leftover);
        ooc_syrk_build(sched, &a_bot, &c_bot, alpha, &sq);
    }

    // 2. recursive diagonal zones
    for u in 0..k {
        let a_sub = a.window(u * cgrid * b, 0, cgrid * b, m);
        let c_sub = c.subwindow(u * cgrid * b, cgrid * b);
        tbs_tiled_build(sched, &a_sub, &c_sub, alpha, plan)?;
    }

    // 3. triangle blocks
    let family = CyclicIndexing::new(cgrid, k);
    for i in 0..cgrid {
        for j in 0..cgrid {
            sched.begin_group();
            let tile_rows = family.row_indices(i, j);
            // Load the k(k-1)/2 tiles of the block (pair (u, v), u > v).
            let mut tiles: Vec<BufId> = Vec::with_capacity(k * (k - 1) / 2);
            for u in 1..k {
                for v in 0..u {
                    let region = c.rect_region(tile_rows[u] * b, tile_rows[v] * b, b, b);
                    tiles.push(sched.load(c.id, region));
                }
            }
            // The matrix rows of the block, in tile-row order.
            let mut rows = Vec::with_capacity(k * b);
            for &tr in &tile_rows {
                rows.extend(tr * b..(tr + 1) * b);
            }
            for q in 0..m {
                let abuf = sched.load(a.id, a.rows_region(&rows, q, 1));
                let mut idx = 0;
                for u in 1..k {
                    for v in 0..u {
                        sched.compute(ComputeOp::Ger {
                            alpha,
                            x: BufSlice::new(abuf, u * b, b),
                            y: BufSlice::new(abuf, v * b, b),
                            dst: tiles[idx],
                        });
                        idx += 1;
                    }
                }
                sched.discard(abuf);
            }
            let block_flops = (k * (k - 1) / 2) as u128 * (m * b * b) as u128;
            sched.flops(FlopCount::new(block_flops, block_flops));
            for tile in tiles {
                sched.store(tile);
            }
        }
    }
    Ok(())
}

/// Builds the tiled-TBS schedule for `C[window] += alpha · A · Aᵀ`,
/// validating the operand shapes.
pub fn tbs_tiled_schedule<T: Scalar>(
    a: &PanelRef,
    c: &SymWindowRef,
    alpha: T,
    plan: &TbsTiledPlan,
) -> Result<Schedule<T>> {
    if a.rows() != c.order() {
        return Err(OocError::Invalid(format!(
            "tiled TBS operand mismatch: A has {} rows but C has order {}",
            a.rows(),
            c.order()
        )));
    }
    let mut sched = ScheduleBuilder::new();
    tbs_tiled_build(&mut sched, a, c, alpha, plan)?;
    Ok(sched.finish())
}

/// Executes `C[window] += alpha · A · Aᵀ` with the tiled TBS schedule,
/// emitted by [`tbs_tiled_build`] and replayed by the generic [`Engine`].
pub fn tbs_tiled_execute<T: Scalar>(
    machine: &mut OocMachine<T>,
    a: &PanelRef,
    c: &SymWindowRef,
    alpha: T,
    plan: &TbsTiledPlan,
) -> Result<()> {
    let schedule = tbs_tiled_schedule(a, c, alpha, plan)?;
    Engine::execute(machine, &schedule)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use symla_matrix::generate::{random_matrix_seeded, random_symmetric, seeded_rng};
    use symla_matrix::kernels::syrk_sym;
    use symla_matrix::{Matrix, SymMatrix};

    fn run(
        n: usize,
        m: usize,
        plan: &TbsTiledPlan,
        capacity: usize,
        alpha: f64,
    ) -> (
        SymMatrix<f64>,
        SymMatrix<f64>,
        IoEstimate,
        symla_memory::IoStats,
    ) {
        let a: Matrix<f64> = random_matrix_seeded(n, m, 9100 + n as u64);
        let mut rng = seeded_rng(9200 + n as u64);
        let c0: SymMatrix<f64> = random_symmetric(n, &mut rng);
        let mut expected = c0.clone();
        syrk_sym(alpha, &a, 1.0, &mut expected).unwrap();

        let mut machine = OocMachine::with_capacity(capacity);
        let a_id = machine.insert_dense(a);
        let c_id = machine.insert_symmetric(c0);
        tbs_tiled_execute(
            &mut machine,
            &PanelRef::dense(a_id, n, m),
            &SymWindowRef::full(c_id, n),
            alpha,
            plan,
        )
        .unwrap();
        let est = tbs_tiled_cost(n, m, plan).unwrap();
        let stats = machine.stats().clone();
        let got = machine.take_symmetric(c_id).unwrap();
        (got, expected, est, stats)
    }

    #[test]
    fn engaged_tiled_tbs_is_correct_and_matches_cost() {
        // k = 3, b = 4: working set = 3*16 + 12 = 60. With n = 40 the tile
        // grid is c = largest coprime below 40/12 = 3 -> 3 >= k-1 = 2, so the
        // triangle phase engages (covered 36, leftover 4).
        let plan = TbsTiledPlan::with_params(3, 4).unwrap();
        assert!(plan.applicable(40));
        let cap = plan.working_set().max(60);
        let (got, expected, est, stats) = run(40, 6, &plan, cap, 1.0);
        assert!(got.approx_eq(&expected, 1e-11));
        assert_eq!(est.loads, stats.volume.loads as u128);
        assert_eq!(est.stores, stats.volume.stores as u128);
        assert_eq!(est.flops, stats.flops);
        assert!(stats.peak_resident <= cap);
    }

    #[test]
    fn fallback_matches_square_baseline() {
        let plan = TbsTiledPlan::with_params(4, 3).unwrap();
        assert!(!plan.applicable(20));
        let cap = plan.working_set();
        let (got, expected, est, _stats) = run(20, 5, &plan, cap, 1.0);
        assert!(got.approx_eq(&expected, 1e-11));
        let sq = OocSyrkPlan::for_memory(cap).unwrap();
        assert_eq!(est, ooc_syrk_cost(20, 5, &sq));
    }

    #[test]
    fn negative_alpha_and_recursion_depth() {
        // k = 2, b = 3: kb = 6; with n = 60 the grid is c = 9 (coprime range
        // empty for k = 2), covered 54; the recursion gets zones of order 27,
        // which themselves engage again (27/6 = 4 >= 1).
        let plan = TbsTiledPlan::with_params(2, 3).unwrap();
        let cap = plan.working_set().max(24);
        let (got, expected, est, stats) = run(60, 4, &plan, cap, -1.0);
        assert!(got.approx_eq(&expected, 1e-10));
        assert_eq!(est.loads, stats.volume.loads as u128);
        assert_eq!(est.stores, stats.volume.stores as u128);
        assert!(stats.peak_resident <= cap);
    }

    #[test]
    fn planner_driven_run_matches_cost_and_beats_baseline() {
        let s = 600;
        let n = 180;
        let m = 24;
        let plan = TbsTiledPlan::for_problem(s, n).unwrap();
        assert!(plan.applicable(n), "plan {plan:?}");
        let (got, expected, est, stats) = run(n, m, &plan, s, 1.0);
        assert!(got.approx_eq(&expected, 1e-10));
        assert_eq!(est.loads, stats.volume.loads as u128);
        assert!(stats.peak_resident <= s);

        // At this size, element-level TBS cannot engage (needs N >= ~2S), but
        // tiled TBS still beats the plain square-block baseline on loads of A
        // (total loads including C are compared here).
        let sq = ooc_syrk_cost(n, m, &OocSyrkPlan::for_memory(s).unwrap());
        assert!(
            est.loads < sq.loads,
            "tiled TBS {} should beat square blocks {}",
            est.loads,
            sq.loads
        );
        let lb = bounds::syrk_lower_bound(n as f64, m as f64, s as f64);
        assert!(est.loads as f64 >= lb);
    }

    #[test]
    fn decomposition_reports_structure() {
        let plan = TbsTiledPlan::with_params(3, 4).unwrap();
        let d = tbs_tiled_decomposition(40, &plan);
        assert_eq!(d.grid, Some(3));
        assert_eq!(d.covered, 36);
        assert_eq!(d.leftover, 4);
        assert_eq!(d.blocks, 9);
        let none = tbs_tiled_decomposition(10, &plan);
        assert_eq!(none.grid, None);
        assert_eq!(none.blocks, 0);
    }

    #[test]
    fn overhead_factor_matches_section_5_1_4() {
        // For a large analytic instance the leading constant of tiled TBS is
        // 1/sqrt(2) * sqrt(k/(k-1)) (normalized by N^2 M / sqrt(S) with S
        // equal to the plan's exact working set).
        let plan = TbsTiledPlan::with_params(5, 30).unwrap();
        let s_exact = plan.working_set() as f64;
        let n = 30_000;
        let m = 1_000;
        assert!(plan.applicable(n));
        let est = tbs_tiled_cost(n, m, &plan).unwrap();
        let c_loads = (n as f64) * (n as f64) / 2.0;
        let normalized =
            (est.loads as f64 - c_loads) / ((n as f64).powi(2) * m as f64 / s_exact.sqrt());
        let target = (plan.k as f64 / (plan.k as f64 - 1.0)).sqrt() / std::f64::consts::SQRT_2;
        assert!(
            (normalized - target).abs() / target < 0.12,
            "normalized {normalized} vs target {target}"
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut machine = OocMachine::<f64>::with_capacity(100);
        let a_id = machine.insert_dense(Matrix::zeros(4, 3));
        let c_id = machine.insert_symmetric(SymMatrix::zeros(5));
        let err = tbs_tiled_execute(
            &mut machine,
            &PanelRef::dense(a_id, 4, 3),
            &SymWindowRef::full(c_id, 5),
            1.0,
            &TbsTiledPlan::with_params(2, 2).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, OocError::Invalid(_)));
    }
}
