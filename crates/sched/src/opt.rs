//! The optimization problems of Section 4 of the paper and their solutions.
//!
//! `P(X)` asks for the largest subcomputation of the SYRK DAG that accesses
//! at most `X` data elements. Through balanced solutions (`P′`) and the
//! substitution of Lemma 4.5 (`P′′`), the paper derives the closed-form bound
//! of Theorem 4.1:
//!
//! `opt P(X) ≤ √2/(3√3) · X^{3/2}`,
//!
//! which, applied with `X = 3S` through Lemma 3.1, yields the lower bounds
//! `Q_SYRK ≥ N²M/(√2·√S)` and `Q_Chol ≥ N³/(3·√2·√S)` and the maximal
//! operational intensity `√(S/2)` (multiplications per transferred element).
//!
//! This module provides both the closed forms and exact integer searches so
//! the experiments can verify the analysis numerically.

/// Optimal (relaxed, continuous) side length `I*` of the full layers in
/// `P′′(X)`: `I* = 2/3 + √(1+6X)/3` (proof of Lemma 4.6).
pub fn relaxed_optimal_side(x_budget: f64) -> f64 {
    2.0 / 3.0 + (1.0 + 6.0 * x_budget).sqrt() / 3.0
}

/// Optimal (relaxed) number of layers `K*` in `P′′(X)`:
/// `K* = (I* − 1/2)(1 − 1/I*)`.
pub fn relaxed_optimal_layers(x_budget: f64) -> f64 {
    let i = relaxed_optimal_side(x_budget);
    (i - 0.5) * (1.0 - 1.0 / i)
}

/// Optimal objective value `H''(X)` of the relaxed problem `P′′(X)`:
/// `H''(X) = (√(1+6X) − 1)² (2√(1+6X) + 1) / 108`.
pub fn relaxed_optimum_value(x_budget: f64) -> f64 {
    let r = (1.0 + 6.0 * x_budget).sqrt();
    (r - 1.0) * (r - 1.0) * (2.0 * r + 1.0) / 108.0
}

/// The Theorem 4.1 upper bound on the size of any subcomputation accessing at
/// most `X` elements: `√2/(3√3) · X^{3/2}`.
pub fn max_subcomputation_bound(x_budget: f64) -> f64 {
    std::f64::consts::SQRT_2 / (3.0 * 3.0_f64.sqrt()) * x_budget.powf(1.5)
}

/// Maximal operational intensity of the SYRK / Cholesky multiply operations
/// under a fast memory of `s` elements (Corollaries 4.7 / 4.8): `√(s/2)`
/// multiplications per transferred element. (Counting the additions as well
/// doubles this to `√(2s)`.)
pub fn max_oi_symmetric_mults(s: f64) -> f64 {
    (s / 2.0).sqrt()
}

/// Maximal operational intensity of GEMM / LU multiplications under a fast
/// memory of `s` elements: `√s / 2` (from the tight non-symmetric bounds
/// `Q_GEMM ≥ 2·NMK/√S` and `Q_LU ≥ (2/3)·N³/√S` of Olivry et al. /
/// Kwasniewski et al., Table 1 referenced in the paper's introduction).
/// Counting additions as well doubles this to `√s`.
///
/// The symmetric kernels therefore enjoy a `√2`-higher maximal operational
/// intensity — the headline result of the paper:
/// `max_oi_symmetric_mults(s) / max_oi_nonsymmetric_mults(s) = √2`.
pub fn max_oi_nonsymmetric_mults(s: f64) -> f64 {
    s.sqrt() / 2.0
}

/// An integer balanced-solution candidate `(I, J, K)` of `P′(X)`:
/// `K` full layers of side `I` and one remainder layer of side `J ≤ I`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalancedCandidate {
    /// Side length of the full layers.
    pub side: usize,
    /// Side length of the remainder layer (`≤ side`).
    pub remainder_side: usize,
    /// Number of full layers.
    pub layers: usize,
    /// Objective value: number of operations covered.
    pub operations: u128,
    /// Data accessed: `I(I−1)/2 + K·I + J`.
    pub data_accessed: u128,
}

/// Exhaustive integer search of `P′(X)`: the best balanced solution under a
/// data budget of `x_budget` elements, optionally capping the layer side at
/// `max_side` (matrix order `N`) and the number of layers at `max_layers`
/// (number of columns `M`).
///
/// Complexity is `O(√X · X^{1/2}) = O(X)` pairs `(I, J)`, fine for the budget
/// sizes used in the experiments (up to a few hundred thousand).
pub fn best_integer_balanced(
    x_budget: usize,
    max_side: Option<usize>,
    max_layers: Option<usize>,
) -> BalancedCandidate {
    let mut best = BalancedCandidate {
        side: 0,
        remainder_side: 0,
        layers: 0,
        operations: 0,
        data_accessed: 0,
    };
    let side_cap = max_side.unwrap_or(usize::MAX);
    let layer_cap = max_layers.unwrap_or(usize::MAX) as u128;

    let mut side = 2usize;
    while side * (side - 1) / 2 + side <= x_budget && side <= side_cap {
        let tri = side * (side - 1) / 2;
        for rem in 0..=side {
            if tri + rem > x_budget {
                break;
            }
            let slack = x_budget - tri - rem;
            let layers = ((slack / side) as u128).min(layer_cap);
            if layers == 0 {
                continue;
            }
            let operations = layers * (tri as u128) + (rem * rem.saturating_sub(1) / 2) as u128;
            let data = tri as u128 + layers * side as u128 + rem as u128;
            if operations > best.operations
                || (operations == best.operations && data < best.data_accessed)
            {
                best = BalancedCandidate {
                    side,
                    remainder_side: rem,
                    layers: layers as usize,
                    operations,
                    data_accessed: data,
                };
            }
        }
        side += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_solution_satisfies_kkt_identities() {
        for &x in &[10.0_f64, 100.0, 1000.0, 12345.0] {
            let i = relaxed_optimal_side(x);
            let k = relaxed_optimal_layers(x);
            // The KKT condition K·I = (I − 1)(I − 1/2)
            assert!((k * i - (i - 1.0) * (i - 0.5)).abs() < 1e-9 * x);
            // The constraint is tight: I(I−1)/2 + K·I = X
            assert!((i * (i - 1.0) / 2.0 + k * i - x).abs() < 1e-9 * x.max(1.0));
            // Objective matches the closed form
            let obj = k * i * (i - 1.0) / 2.0;
            assert!((obj - relaxed_optimum_value(x)).abs() < 1e-9 * x.powf(1.5));
        }
    }

    #[test]
    fn relaxed_optimum_below_theorem_bound() {
        for &x in &[1.0_f64, 3.0, 10.0, 55.0, 300.0, 4096.0, 1e6] {
            assert!(
                relaxed_optimum_value(x) <= max_subcomputation_bound(x) + 1e-9,
                "x = {x}"
            );
        }
    }

    #[test]
    fn theorem_bound_is_asymptotically_tight() {
        // The ratio H''(X) / bound(X) tends to 1 as X grows.
        let ratio = relaxed_optimum_value(1e9) / max_subcomputation_bound(1e9);
        assert!(ratio > 0.999);
        let small_ratio = relaxed_optimum_value(10.0) / max_subcomputation_bound(10.0);
        assert!(small_ratio < 1.0);
    }

    #[test]
    fn integer_search_below_bound_and_near_optimal() {
        for &x in &[12_usize, 50, 200, 1000, 5000] {
            let best = best_integer_balanced(x, None, None);
            assert!(best.data_accessed as usize <= x);
            let bound = max_subcomputation_bound(x as f64);
            assert!(
                (best.operations as f64) <= bound + 1e-9,
                "x={x}: {} > {bound}",
                best.operations
            );
            // The integer optimum is close to the relaxed optimum for
            // reasonable budgets (within 25%).
            if x >= 200 {
                assert!(
                    best.operations as f64 >= 0.75 * relaxed_optimum_value(x as f64),
                    "x={x}: integer {} far below relaxed {}",
                    best.operations,
                    relaxed_optimum_value(x as f64)
                );
            }
        }
    }

    #[test]
    fn integer_search_respects_caps() {
        let unbounded = best_integer_balanced(500, None, None);
        let capped_side = best_integer_balanced(500, Some(5), None);
        assert!(capped_side.side <= 5);
        assert!(capped_side.operations <= unbounded.operations);
        let capped_layers = best_integer_balanced(500, None, Some(2));
        assert!(capped_layers.layers <= 2);
        assert!(capped_layers.operations <= unbounded.operations);
        // Tiny budget yields the empty solution.
        let none = best_integer_balanced(1, None, None);
        assert_eq!(none.operations, 0);
    }

    #[test]
    fn operational_intensities() {
        assert!((max_oi_symmetric_mults(200.0) - 10.0).abs() < 1e-12);
        assert!((max_oi_nonsymmetric_mults(100.0) - 5.0).abs() < 1e-12);
        // the sqrt(2) separation highlighted by the paper: symmetric kernels
        // admit a factor sqrt(2) HIGHER operational intensity
        let s = 1234.0;
        let ratio = max_oi_symmetric_mults(s) / max_oi_nonsymmetric_mults(s);
        assert!((ratio - std::f64::consts::SQRT_2).abs() < 1e-12);
    }
}
