//! Triangle blocks (Definition 3.5) and the canonical sets `σ(m)` / `T(m)`
//! (Lemma 3.6) of the paper.
//!
//! A triangle block `TB(R)` of a row-index set `R` is the set of all strictly
//! subdiagonal pairs of `R`. Triangle blocks are the shape that maximizes the
//! number of result elements reachable from a given set of rows of `A`, which
//! is why both the SYRK lower bound and the TBS algorithm are built on them.

use std::collections::BTreeSet;

/// The triangle block `TB(R)`: all pairs `(r, r')` with `r > r'`, both in `R`.
pub fn triangle_block(rows: &[usize]) -> Vec<(usize, usize)> {
    let mut sorted: Vec<usize> = rows.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut out = Vec::with_capacity(sorted.len() * sorted.len().saturating_sub(1) / 2);
    for (a, &r) in sorted.iter().enumerate() {
        for &rp in sorted.iter().take(a) {
            out.push((r, rp));
        }
    }
    out
}

/// Number of elements of a triangle block of side length `side`:
/// `side·(side−1)/2`.
pub fn triangle_block_len(side: usize) -> usize {
    side * side.saturating_sub(1) / 2
}

/// `σ(m)`: the smallest side length of a triangle block with at least `m`
/// elements (Lemma 3.6): `σ(m) = ⌈ √(1/4 + 2m) + 1/2 ⌉` and `σ(0) = 0`.
pub fn sigma(m: usize) -> usize {
    if m == 0 {
        return 0;
    }
    let target = m as f64;
    let mut side = ((0.25 + 2.0 * target).sqrt() + 0.5).ceil() as usize;
    // Guard against floating-point edge cases: adjust to the exact minimum.
    while triangle_block_len(side) < m {
        side += 1;
    }
    while side > 0 && triangle_block_len(side - 1) >= m {
        side -= 1;
    }
    side
}

/// `T(m)`: a canonical subset of `TB({0, …, σ(m)−1})` with exactly `m`
/// elements. By construction `|T(m)| = m` and `|τ(T(m))| = σ(m)` (all σ(m)
/// rows are touched), the property used by balanced solutions.
pub fn canonical_t(m: usize) -> Vec<(usize, usize)> {
    let side = sigma(m);
    let mut out = Vec::with_capacity(m);
    if m == 0 {
        return out;
    }
    // Fill pairs in an order that touches every row of [0, side) even when we
    // stop before exhausting the full triangle: enumerate by increasing row
    // r = 1..side, and within a row by increasing column. The last row `side-1`
    // must appear; since m > triangle_block_len(side-1), the enumeration
    // necessarily reaches row side-1 before stopping.
    'outer: for r in 1..side {
        for rp in 0..r {
            out.push((r, rp));
            if out.len() == m {
                break 'outer;
            }
        }
    }
    out
}

/// The symmetric footprint size of a pair set (number of distinct indices).
pub fn footprint_size(pairs: &[(usize, usize)]) -> usize {
    let mut set = BTreeSet::new();
    for &(i, j) in pairs {
        set.insert(i);
        set.insert(j);
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_block_enumerates_subdiagonal_pairs() {
        let tb = triangle_block(&[7, 2, 5]);
        assert_eq!(tb, vec![(5, 2), (7, 2), (7, 5)]);
        assert_eq!(tb.len(), triangle_block_len(3));
        assert!(triangle_block(&[4]).is_empty());
        assert!(triangle_block(&[]).is_empty());
        // duplicates are ignored
        assert_eq!(triangle_block(&[3, 3, 1]).len(), 1);
    }

    #[test]
    fn sigma_matches_definition() {
        // σ(m) is the smallest side with side(side-1)/2 >= m
        for m in 0..500 {
            let s = sigma(m);
            assert!(triangle_block_len(s) >= m, "σ({m}) = {s} too small");
            if s > 0 {
                assert!(triangle_block_len(s - 1) < m, "σ({m}) = {s} not minimal");
            }
        }
        assert_eq!(sigma(0), 0);
        assert_eq!(sigma(1), 2);
        assert_eq!(sigma(2), 3);
        assert_eq!(sigma(3), 3);
        assert_eq!(sigma(4), 4);
        assert_eq!(sigma(6), 4);
        assert_eq!(sigma(7), 5);
    }

    #[test]
    fn sigma_closed_form_matches_paper_formula() {
        // Lemma 3.6: σ(m) = ceil(sqrt(1/4 + 2m) + 1/2)
        for m in 1..2000_usize {
            let formula = ((0.25 + 2.0 * m as f64).sqrt() + 0.5).ceil() as usize;
            assert_eq!(sigma(m), formula, "m = {m}");
        }
    }

    #[test]
    fn canonical_t_has_exact_size_and_footprint() {
        for m in 0..300 {
            let t = canonical_t(m);
            assert_eq!(t.len(), m);
            // all pairs strictly subdiagonal and within [0, sigma(m))
            for &(i, j) in &t {
                assert!(i > j);
                assert!(i < sigma(m));
            }
            if m > 0 {
                assert_eq!(
                    footprint_size(&t),
                    sigma(m),
                    "footprint of T({m}) must be σ(m)"
                );
            }
            // no duplicates
            let set: BTreeSet<_> = t.iter().collect();
            assert_eq!(set.len(), m);
        }
    }

    #[test]
    fn footprint_size_counts_distinct_indices() {
        assert_eq!(footprint_size(&[]), 0);
        assert_eq!(footprint_size(&[(3, 1)]), 2);
        assert_eq!(footprint_size(&[(3, 1), (4, 3)]), 3);
        assert_eq!(footprint_size(&[(3, 1), (3, 1)]), 2);
    }
}
