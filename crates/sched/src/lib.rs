//! # symla-sched
//!
//! Combinatorial machinery behind the lower bounds and the triangle-block
//! schedules of *"I/O-Optimal Algorithms for Symmetric Linear Algebra
//! Kernels"* (SPAA'22):
//!
//! * [`ops`] — the operation sets `S` (SYRK) and `C` (Cholesky updates);
//! * [`footprint`] — restrictions `E|k`, symmetric footprints `τ(·)` and the
//!   data-access count `D(E)` of Proposition 3.4;
//! * [`triangle`] — triangle blocks, `σ(m)` and the canonical sets `T(m)`;
//! * [`balanced`] — balanced solutions (Definition 4.2, Lemma 4.3);
//! * [`opt`] — the optimization problems `P′ / P′′` and the closed-form
//!   Theorem 4.1 bound, plus the resulting maximal operational intensities;
//! * [`indexing`] — cyclic indexing families and the coprimality machinery
//!   used to choose the TBS grid size `c` (Lemma 5.5);
//! * [`partition`] — the exact tiling of the result matrix by triangle
//!   blocks and diagonal zones (Figures 1–2);
//! * [`ir`] — the schedule intermediate representation: load / alloc /
//!   compute / store / discard [`ir::Step`]s grouped into independent
//!   [`ir::TaskGroup`]s, with a compact textual dump
//!   ([`ir::Schedule::dump`]);
//! * [`engine`] — the generic engine replaying a schedule against the
//!   machine model of `symla-memory` in execute, dry-run or trace mode, and
//!   distributing independent task groups over the workers of a shared slow
//!   memory in execute-parallel mode; every mode has a prefetching variant
//!   (`*_with` + [`engine::EngineConfig`]) that double-buffers the load
//!   stream;
//! * [`prefetch`] — the lookahead planner behind those variants: per group
//!   boundary it admits the future loads that fit the capacity slack
//!   `S − footprint` and read fresh data;
//! * [`timing`] — the modelled wall-clock of a replay: prices a schedule's
//!   events against a `MachineModel` with the engine's per-group overlap
//!   windows, bitwise-equal to what a `LatencyMachine` measures during a
//!   real execution;
//! * [`autotune`] — the cost-model-driven autotuner: a beam search over
//!   tile size × pass pipeline × prefetch lookahead × worker count, every
//!   candidate scored *without execution* via dry-run stats and the
//!   modelled wall-clock, reported with its gap to the paper's
//!   `mults/√(S/2)` I/O lower bound;
//! * [`passes`] — the schedule-optimization layer: IR-to-IR rewrites
//!   (redundant-load elimination and coalescing, dead-store elimination,
//!   locality-driven group reordering) chained by a
//!   [`passes::PassManager`] that accounts every pass with engine dry runs
//!   and verifies semantic equivalence symbolically.
//!
//! The combinatorial modules are exact integer mathematics; the IR, engine
//! and passes are the execution substrate every out-of-core algorithm of
//! `symla-baselines` / `symla-core` is built on (those crates contain only
//! *schedule builders*): builders emit straightforward IR, the pass layer
//! recovers locality mechanically, the engine replays the result in any
//! mode.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod autotune;
pub mod balanced;
pub mod binary;
pub mod engine;
pub mod footprint;
pub mod indexing;
pub mod ir;
pub mod ops;
pub mod opt;
pub mod partition;
pub mod passes;
pub mod prefetch;
pub mod timing;
pub mod triangle;

pub use autotune::{
    model_fingerprint, Candidate, TuneError, TunedConfig, Tuner, TuningReport, TuningSpace,
};
pub use balanced::BalancedSolution;
pub use binary::{stable_hash, BinaryError, StableHasher, FORMAT_VERSION};
pub use engine::{Engine, EngineConfig, EngineError, ParallelError, WorkerRun};
pub use footprint::{data_access, DataAccess};
pub use indexing::{largest_coprime_below, CyclicIndexing};
pub use ir::{BufId, BufSlice, ComputeOp, Schedule, ScheduleBuilder, Step, TaskGroup};
pub use ops::{Op, OpSet};
pub use opt::{max_oi_nonsymmetric_mults, max_oi_symmetric_mults, max_subcomputation_bound};
pub use partition::{partition_groups, NodeAssignment, PartitionStats, TbsPartition};
pub use passes::{Pass, PassError, PassManager, PassPipeline, PassReport};
pub use prefetch::{PrefetchIssue, PrefetchPlan};
pub use timing::{modelled_group_times, modelled_run_trace, modelled_time, modelled_time_planned};
pub use triangle::{canonical_t, sigma, triangle_block};
