//! The TBS partition of the result matrix (Section 5.1.1 of the paper,
//! Figures 1 and 2).
//!
//! For a matrix of order `c·k`, the strict lower triangle is split into
//! * `k(k−1)/2` square *zones* of size `c × c` (one per pair of zone rows),
//!   tiled exactly by the `c²` triangle blocks produced by a valid indexing
//!   family, and
//! * `k` triangular *diagonal zones* of side `c` (pairs within one zone row),
//!   which TBS handles by recursive calls.
//!
//! When the matrix order `N` is not a multiple of `c·k`, the last
//! `ℓ = N − c·k` rows are handled by the square-block baseline; this module
//! only describes the structured `c·k × c·k` prefix.

use crate::indexing::CyclicIndexing;
use crate::triangle::triangle_block;
use std::collections::BTreeSet;

/// Statistics describing one TBS partition level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionStats {
    /// Matrix order covered by the structured part (`c·k`).
    pub covered: usize,
    /// Number of triangle blocks (`c²`).
    pub blocks: usize,
    /// Elements per triangle block (`k(k−1)/2`).
    pub elements_per_block: usize,
    /// Number of square zones (`k(k−1)/2`).
    pub square_zones: usize,
    /// Number of diagonal (recursive) zones (`k`).
    pub diagonal_zones: usize,
    /// Elements in each diagonal zone's strict lower triangle
    /// (`c(c−1)/2`).
    pub elements_per_diagonal_zone: usize,
}

/// One level of the TBS partition of a `c·k × c·k` strict lower triangle.
#[derive(Debug, Clone)]
pub struct TbsPartition {
    /// Zone side length (`c`).
    pub c: usize,
    /// Number of zone rows (`k`).
    pub k: usize,
    /// The row-index set of every triangle block, indexed `(i, j)` with
    /// `block_rows[i * c + j] = R_{i,j}` (each of length `k`, strictly
    /// increasing).
    pub block_rows: Vec<Vec<usize>>,
    /// The `k` diagonal zones as `(start, len)` row ranges (`(u·c, c)`).
    pub diagonal_zones: Vec<(usize, usize)>,
}

impl TbsPartition {
    /// Builds the partition from the cyclic indexing family. Returns an error
    /// if the family does not satisfy the sufficient validity condition of
    /// Lemma 5.5 (the caller is expected to have chosen `c` with
    /// [`crate::indexing::largest_coprime_below`]).
    pub fn build(c: usize, k: usize) -> Result<Self, String> {
        if k < 2 {
            return Err(format!("TBS partition needs k >= 2, got {k}"));
        }
        let family = CyclicIndexing::new(c, k);
        if !family.satisfies_lemma_5_5() {
            return Err(format!(
                "cyclic indexing family ({c}, {k}) does not satisfy the validity condition \
                 (c >= k-1 and c coprime with [2, k-2])"
            ));
        }
        let mut block_rows = Vec::with_capacity(c * c);
        for i in 0..c {
            for j in 0..c {
                block_rows.push(family.row_indices(i, j));
            }
        }
        let diagonal_zones = (0..k).map(|u| (u * c, c)).collect();
        Ok(Self {
            c,
            k,
            block_rows,
            diagonal_zones,
        })
    }

    /// Order of the structured region (`c·k`).
    pub fn covered(&self) -> usize {
        self.c * self.k
    }

    /// The row-index set of block `(i, j)`.
    pub fn block(&self, i: usize, j: usize) -> &[usize] {
        &self.block_rows[i * self.c + j]
    }

    /// Summary statistics of the partition.
    pub fn stats(&self) -> PartitionStats {
        PartitionStats {
            covered: self.covered(),
            blocks: self.c * self.c,
            elements_per_block: self.k * (self.k - 1) / 2,
            square_zones: self.k * (self.k - 1) / 2,
            diagonal_zones: self.k,
            elements_per_diagonal_zone: self.c * self.c.saturating_sub(1) / 2,
        }
    }

    /// Exhaustively verifies that the triangle blocks and the diagonal zones
    /// together cover every strictly-subdiagonal pair of `[0, c·k)` exactly
    /// once. Cost `O((ck)²)`, intended for tests and the E5 experiment.
    pub fn verify_exact_cover(&self) -> Result<(), String> {
        let n = self.covered();
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut insert = |pair: (usize, usize), what: &str| -> Result<(), String> {
            if !seen.insert(pair) {
                return Err(format!("pair {pair:?} covered twice (by {what})"));
            }
            Ok(())
        };

        for (idx, rows) in self.block_rows.iter().enumerate() {
            for pair in triangle_block(rows) {
                insert(pair, &format!("block {idx}"))?;
            }
        }
        for &(start, len) in &self.diagonal_zones {
            for i in start..start + len {
                for j in start..i {
                    insert((i, j), "diagonal zone")?;
                }
            }
        }

        let expected = n * (n - 1) / 2;
        if seen.len() != expected {
            return Err(format!("covered {} pairs, expected {expected}", seen.len()));
        }
        // Every covered pair must be a valid subdiagonal pair of [0, n).
        if let Some(&(i, j)) = seen.iter().find(|&&(i, j)| i <= j || i >= n) {
            return Err(format!("invalid pair ({i}, {j}) in cover"));
        }
        Ok(())
    }

    /// ASCII rendering of the block structure: for each element `(i, j)` of
    /// the strict lower triangle of the structured region, prints the block
    /// index that owns it (diagonal zones print `.`). Row-limited for large
    /// matrices; intended for the examples that reproduce Figure 1.
    pub fn render_ascii(&self, max_rows: usize) -> String {
        let n = self.covered().min(max_rows);
        // map pair -> block id
        let mut owner = vec![vec![None::<usize>; n]; n];
        for (idx, rows) in self.block_rows.iter().enumerate() {
            for (i, j) in triangle_block(rows) {
                if i < n && j < n {
                    owner[i][j] = Some(idx);
                }
            }
        }
        let mut out = String::new();
        for (i, row) in owner.iter().enumerate() {
            for (j, cell) in row.iter().enumerate().take(i) {
                match cell {
                    Some(idx) => out.push_str(&format!("{:>4}", idx % 10000)),
                    None => out.push_str("   ."),
                }
                if j + 1 == i {
                    break;
                }
            }
            if i > 0 {
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_requires_valid_family() {
        assert!(TbsPartition::build(7, 5).is_ok());
        assert!(TbsPartition::build(6, 5).is_err()); // 6 shares factors with [2,3]
        assert!(TbsPartition::build(3, 6).is_err()); // c < k - 1
        assert!(TbsPartition::build(5, 1).is_err()); // k too small
    }

    #[test]
    fn stats_match_paper_formulas() {
        let p = TbsPartition::build(7, 5).unwrap();
        let s = p.stats();
        assert_eq!(s.covered, 35);
        assert_eq!(s.blocks, 49);
        assert_eq!(s.elements_per_block, 10);
        assert_eq!(s.square_zones, 10);
        assert_eq!(s.diagonal_zones, 5);
        assert_eq!(s.elements_per_diagonal_zone, 21);
        // Total cover: blocks * per_block + zones * per_zone = ck(ck-1)/2
        let total =
            s.blocks * s.elements_per_block + s.diagonal_zones * s.elements_per_diagonal_zone;
        assert_eq!(total, 35 * 34 / 2);
    }

    #[test]
    fn exact_cover_for_several_parameters() {
        for &(c, k) in &[
            (5_usize, 4_usize),
            (7, 5),
            (7, 6),
            (11, 5),
            (13, 7),
            (5, 3),
            (3, 2),
        ] {
            let p = TbsPartition::build(c, k).unwrap_or_else(|e| panic!("({c},{k}): {e}"));
            p.verify_exact_cover()
                .unwrap_or_else(|e| panic!("({c},{k}): {e}"));
        }
    }

    #[test]
    fn block_contains_designated_element() {
        // Block (i, j) must contain element (i + c, j) of the matrix.
        let p = TbsPartition::build(11, 5).unwrap();
        for i in 0..11 {
            for j in 0..11 {
                let rows = p.block(i, j);
                assert!(rows.contains(&j));
                assert!(rows.contains(&(11 + i)));
            }
        }
    }

    #[test]
    fn blocks_are_disjoint_pairwise() {
        let p = TbsPartition::build(7, 4).unwrap();
        let mut all_pairs = BTreeSet::new();
        for rows in &p.block_rows {
            for pair in triangle_block(rows) {
                assert!(all_pairs.insert(pair), "duplicate pair {pair:?}");
            }
        }
        assert_eq!(all_pairs.len(), 49 * 6);
    }

    #[test]
    fn ascii_rendering_has_expected_shape() {
        let p = TbsPartition::build(5, 3).unwrap();
        let art = p.render_ascii(100);
        // 15 rows in the strict lower triangle rendering (rows 1..15)
        assert_eq!(art.lines().count(), 14);
        assert!(art.contains('.'));
    }
}
