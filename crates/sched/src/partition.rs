//! The TBS partition of the result matrix (Section 5.1.1 of the paper,
//! Figures 1 and 2).
//!
//! For a matrix of order `c·k`, the strict lower triangle is split into
//! * `k(k−1)/2` square *zones* of size `c × c` (one per pair of zone rows),
//!   tiled exactly by the `c²` triangle blocks produced by a valid indexing
//!   family, and
//! * `k` triangular *diagonal zones* of side `c` (pairs within one zone row),
//!   which TBS handles by recursive calls.
//!
//! When the matrix order `N` is not a multiple of `c·k`, the last
//! `ℓ = N − c·k` rows are handled by the square-block baseline; this module
//! only describes the structured `c·k × c·k` prefix.

use crate::indexing::CyclicIndexing;
use crate::ir::{Schedule, Step};
use crate::triangle::triangle_block;
use std::collections::{BTreeMap, BTreeSet};
use symla_matrix::Scalar;

/// Statistics describing one TBS partition level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionStats {
    /// Matrix order covered by the structured part (`c·k`).
    pub covered: usize,
    /// Number of triangle blocks (`c²`).
    pub blocks: usize,
    /// Elements per triangle block (`k(k−1)/2`).
    pub elements_per_block: usize,
    /// Number of square zones (`k(k−1)/2`).
    pub square_zones: usize,
    /// Number of diagonal (recursive) zones (`k`).
    pub diagonal_zones: usize,
    /// Elements in each diagonal zone's strict lower triangle
    /// (`c(c−1)/2`).
    pub elements_per_diagonal_zone: usize,
}

/// One level of the TBS partition of a `c·k × c·k` strict lower triangle.
#[derive(Debug, Clone)]
pub struct TbsPartition {
    /// Zone side length (`c`).
    pub c: usize,
    /// Number of zone rows (`k`).
    pub k: usize,
    /// The row-index set of every triangle block, indexed `(i, j)` with
    /// `block_rows[i * c + j] = R_{i,j}` (each of length `k`, strictly
    /// increasing).
    pub block_rows: Vec<Vec<usize>>,
    /// The `k` diagonal zones as `(start, len)` row ranges (`(u·c, c)`).
    pub diagonal_zones: Vec<(usize, usize)>,
}

impl TbsPartition {
    /// Builds the partition from the cyclic indexing family. Returns an error
    /// if the family does not satisfy the sufficient validity condition of
    /// Lemma 5.5 (the caller is expected to have chosen `c` with
    /// [`crate::indexing::largest_coprime_below`]).
    pub fn build(c: usize, k: usize) -> Result<Self, String> {
        if k < 2 {
            return Err(format!("TBS partition needs k >= 2, got {k}"));
        }
        let family = CyclicIndexing::new(c, k);
        if !family.satisfies_lemma_5_5() {
            return Err(format!(
                "cyclic indexing family ({c}, {k}) does not satisfy the validity condition \
                 (c >= k-1 and c coprime with [2, k-2])"
            ));
        }
        let mut block_rows = Vec::with_capacity(c * c);
        for i in 0..c {
            for j in 0..c {
                block_rows.push(family.row_indices(i, j));
            }
        }
        let diagonal_zones = (0..k).map(|u| (u * c, c)).collect();
        Ok(Self {
            c,
            k,
            block_rows,
            diagonal_zones,
        })
    }

    /// Order of the structured region (`c·k`).
    pub fn covered(&self) -> usize {
        self.c * self.k
    }

    /// The row-index set of block `(i, j)`.
    pub fn block(&self, i: usize, j: usize) -> &[usize] {
        &self.block_rows[i * self.c + j]
    }

    /// Summary statistics of the partition.
    pub fn stats(&self) -> PartitionStats {
        PartitionStats {
            covered: self.covered(),
            blocks: self.c * self.c,
            elements_per_block: self.k * (self.k - 1) / 2,
            square_zones: self.k * (self.k - 1) / 2,
            diagonal_zones: self.k,
            elements_per_diagonal_zone: self.c * self.c.saturating_sub(1) / 2,
        }
    }

    /// Exhaustively verifies that the triangle blocks and the diagonal zones
    /// together cover every strictly-subdiagonal pair of `[0, c·k)` exactly
    /// once. Cost `O((ck)²)`, intended for tests and the E5 experiment.
    pub fn verify_exact_cover(&self) -> Result<(), String> {
        let n = self.covered();
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut insert = |pair: (usize, usize), what: &str| -> Result<(), String> {
            if !seen.insert(pair) {
                return Err(format!("pair {pair:?} covered twice (by {what})"));
            }
            Ok(())
        };

        for (idx, rows) in self.block_rows.iter().enumerate() {
            for pair in triangle_block(rows) {
                insert(pair, &format!("block {idx}"))?;
            }
        }
        for &(start, len) in &self.diagonal_zones {
            for i in start..start + len {
                for j in start..i {
                    insert((i, j), "diagonal zone")?;
                }
            }
        }

        let expected = n * (n - 1) / 2;
        if seen.len() != expected {
            return Err(format!("covered {} pairs, expected {expected}", seen.len()));
        }
        // Every covered pair must be a valid subdiagonal pair of [0, n).
        if let Some(&(i, j)) = seen.iter().find(|&&(i, j)| i <= j || i >= n) {
            return Err(format!("invalid pair ({i}, {j}) in cover"));
        }
        Ok(())
    }

    /// ASCII rendering of the block structure: for each element `(i, j)` of
    /// the strict lower triangle of the structured region, prints the block
    /// index that owns it (diagonal zones print `.`). Row-limited for large
    /// matrices; intended for the examples that reproduce Figure 1.
    pub fn render_ascii(&self, max_rows: usize) -> String {
        let n = self.covered().min(max_rows);
        // map pair -> block id
        let mut owner = vec![vec![None::<usize>; n]; n];
        for (idx, rows) in self.block_rows.iter().enumerate() {
            for (i, j) in triangle_block(rows) {
                if i < n && j < n {
                    owner[i][j] = Some(idx);
                }
            }
        }
        let mut out = String::new();
        for (i, row) in owner.iter().enumerate() {
            for (j, cell) in row.iter().enumerate().take(i) {
                match cell {
                    Some(idx) => out.push_str(&format!("{:>4}", idx % 10000)),
                    None => out.push_str("   ."),
                }
                if j + 1 == i {
                    break;
                }
            }
            if i > 0 {
                out.push('\n');
            }
        }
        out
    }
}

/// The result of [`partition_groups`]: which task groups each node replays
/// and how much slow-memory traffic each node exchanges with its home shard
/// (local) versus every other shard (cross).
///
/// Volumes are in matrix elements, the same unit as
/// [`IoStats`](symla_memory::IoStats); together `local_volume[n] +
/// cross_volume[n]` is exactly the dry-run I/O volume of node `n`'s groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeAssignment {
    /// Group indices assigned to each node, in schedule order.
    pub nodes: Vec<Vec<usize>>,
    /// Per node: elements moved to or from the node's home shard.
    pub local_volume: Vec<u64>,
    /// Per node: elements moved to or from every other shard.
    pub cross_volume: Vec<u64>,
}

impl NodeAssignment {
    /// Total cross-shard volume over all nodes.
    pub fn total_cross(&self) -> u64 {
        self.cross_volume.iter().sum()
    }

    /// Largest per-node cross-shard volume (the communication bottleneck).
    pub fn max_cross(&self) -> u64 {
        self.cross_volume.iter().copied().max().unwrap_or(0)
    }

    /// Total volume (local + cross) of node `n`'s groups.
    pub fn node_volume(&self, n: usize) -> u64 {
        self.local_volume[n] + self.cross_volume[n]
    }
}

/// Assigns the task groups of `schedule` to nodes, minimizing each node's
/// *cross-shard* traffic: the elements it moves to or from shards other than
/// its home shard (`homes[n]` for node `n`, indices into the shards of a
/// [`SharedSlowMemory`](symla_memory::SharedSlowMemory)).
///
/// `shard_of_matrix` maps a matrix id (its [`raw`](symla_memory::MatrixId::raw)
/// value) to the shard holding it; unmapped matrices live on shard `0`.
/// Every load and store of a group is attributed to the shard of the matrix
/// it transfers, at region granularity — the same accounting the sharded
/// slow memory performs at replay time, so the assignment's predicted
/// volumes match the observed per-shard [`IoStats`](symla_memory::IoStats)
/// exactly.
///
/// The heuristic is greedy LPT over the per-group volumes (largest group
/// first, the classic makespan bound): each group goes to the node where it
/// adds the least cross-shard volume, tie-broken by the smaller total
/// volume, then by node index. Builders that seed group order from the
/// triangle-block partition (the SYRK/Cholesky family) therefore get
/// contiguous block columns co-located before load balance kicks in.
///
/// # Panics
///
/// Panics if `homes` is empty.
pub fn partition_groups<T: Scalar>(
    schedule: &Schedule<T>,
    shard_of_matrix: &BTreeMap<u64, usize>,
    homes: &[usize],
) -> NodeAssignment {
    assert!(
        !homes.is_empty(),
        "partition_groups needs at least one node"
    );
    let shard_of = |raw: u64| shard_of_matrix.get(&raw).copied().unwrap_or(0);

    // Per group: elements transferred per shard. Buffers may straddle
    // groups in serial schedules, so the buf -> (matrix, len) table is
    // carried across the whole walk.
    let mut buf_src: BTreeMap<crate::ir::BufId, (u64, usize)> = BTreeMap::new();
    let mut volumes: Vec<BTreeMap<usize, u64>> = Vec::with_capacity(schedule.groups.len());
    for group in &schedule.groups {
        let mut per_shard: BTreeMap<usize, u64> = BTreeMap::new();
        for step in &group.steps {
            match step {
                Step::Load {
                    matrix,
                    region,
                    dst,
                    ..
                } => {
                    buf_src.insert(*dst, (matrix.raw(), region.len()));
                    *per_shard.entry(shard_of(matrix.raw())).or_default() += region.len() as u64;
                }
                Step::Alloc {
                    matrix,
                    region,
                    dst,
                } => {
                    buf_src.insert(*dst, (matrix.raw(), region.len()));
                }
                Step::Store { buf, .. } => {
                    if let Some((raw, len)) = buf_src.remove(buf) {
                        *per_shard.entry(shard_of(raw)).or_default() += len as u64;
                    }
                }
                Step::Discard { buf } => {
                    buf_src.remove(buf);
                }
                Step::Compute(_) | Step::Flops(_) => {}
            }
        }
        volumes.push(per_shard);
    }

    // LPT order: groups by total volume, largest first, stable in index.
    let mut order: Vec<usize> = (0..volumes.len()).collect();
    let total = |g: usize| volumes[g].values().sum::<u64>();
    order.sort_by_key(|&g| std::cmp::Reverse(total(g)));

    let n = homes.len();
    let mut nodes: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut local = vec![0u64; n];
    let mut cross = vec![0u64; n];
    for g in order {
        let group_total = total(g);
        let best = (0..n)
            .min_by_key(|&node| {
                let on_home = volumes[g].get(&homes[node]).copied().unwrap_or(0);
                let added_cross = group_total - on_home;
                (cross[node] + added_cross, local[node] + cross[node], node)
            })
            .expect("at least one node");
        let on_home = volumes[g].get(&homes[best]).copied().unwrap_or(0);
        local[best] += on_home;
        cross[best] += group_total - on_home;
        nodes[best].push(g);
    }
    for groups in &mut nodes {
        groups.sort_unstable();
    }
    NodeAssignment {
        nodes,
        local_volume: local,
        cross_volume: cross,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_requires_valid_family() {
        assert!(TbsPartition::build(7, 5).is_ok());
        assert!(TbsPartition::build(6, 5).is_err()); // 6 shares factors with [2,3]
        assert!(TbsPartition::build(3, 6).is_err()); // c < k - 1
        assert!(TbsPartition::build(5, 1).is_err()); // k too small
    }

    #[test]
    fn stats_match_paper_formulas() {
        let p = TbsPartition::build(7, 5).unwrap();
        let s = p.stats();
        assert_eq!(s.covered, 35);
        assert_eq!(s.blocks, 49);
        assert_eq!(s.elements_per_block, 10);
        assert_eq!(s.square_zones, 10);
        assert_eq!(s.diagonal_zones, 5);
        assert_eq!(s.elements_per_diagonal_zone, 21);
        // Total cover: blocks * per_block + zones * per_zone = ck(ck-1)/2
        let total =
            s.blocks * s.elements_per_block + s.diagonal_zones * s.elements_per_diagonal_zone;
        assert_eq!(total, 35 * 34 / 2);
    }

    #[test]
    fn exact_cover_for_several_parameters() {
        for &(c, k) in &[
            (5_usize, 4_usize),
            (7, 5),
            (7, 6),
            (11, 5),
            (13, 7),
            (5, 3),
            (3, 2),
        ] {
            let p = TbsPartition::build(c, k).unwrap_or_else(|e| panic!("({c},{k}): {e}"));
            p.verify_exact_cover()
                .unwrap_or_else(|e| panic!("({c},{k}): {e}"));
        }
    }

    #[test]
    fn block_contains_designated_element() {
        // Block (i, j) must contain element (i + c, j) of the matrix.
        let p = TbsPartition::build(11, 5).unwrap();
        for i in 0..11 {
            for j in 0..11 {
                let rows = p.block(i, j);
                assert!(rows.contains(&j));
                assert!(rows.contains(&(11 + i)));
            }
        }
    }

    #[test]
    fn blocks_are_disjoint_pairwise() {
        let p = TbsPartition::build(7, 4).unwrap();
        let mut all_pairs = BTreeSet::new();
        for rows in &p.block_rows {
            for pair in triangle_block(rows) {
                assert!(all_pairs.insert(pair), "duplicate pair {pair:?}");
            }
        }
        assert_eq!(all_pairs.len(), 49 * 6);
    }

    #[test]
    fn partitioner_colocates_groups_with_their_shard() {
        use crate::ir::ScheduleBuilder;
        use symla_memory::{MatrixId, Region};

        // Matrix 0 lives on shard 0, matrix 1 on shard 1. Two groups read
        // only matrix 0, two only matrix 1: with homes [0, 1] the optimum is
        // zero cross-shard traffic.
        let m0 = MatrixId::synthetic(0);
        let m1 = MatrixId::synthetic(1);
        let mut b = ScheduleBuilder::<f64>::new();
        for g in 0..4 {
            b.begin_group();
            let m = if g % 2 == 0 { m0 } else { m1 };
            let x = b.load(m, Region::rect(0, g, 3, 1));
            b.store(x);
        }
        let s = b.finish();
        let shards: BTreeMap<u64, usize> = [(0, 0), (1, 1)].into();

        let a = partition_groups(&s, &shards, &[0, 1]);
        assert_eq!(a.nodes, vec![vec![0, 2], vec![1, 3]]);
        // each group moves 3 elements in and 3 out, all on its home shard
        assert_eq!(a.local_volume, vec![12, 12]);
        assert_eq!(a.cross_volume, vec![0, 0]);
        assert_eq!(a.total_cross(), 0);
        assert_eq!(a.max_cross(), 0);

        // Both nodes homed on shard 0: matrix-1 traffic is cross wherever it
        // lands — the total is forced, and every group is placed exactly once.
        let a = partition_groups(&s, &shards, &[0, 0]);
        assert_eq!(a.total_cross(), 12);
        assert_eq!(a.node_volume(0) + a.node_volume(1), 24);
        let mut all: Vec<usize> = a.nodes.concat();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn partitioner_attributes_straddling_stores_to_the_loading_shard() {
        use crate::ir::ScheduleBuilder;
        use symla_memory::{MatrixId, Region};

        // The buffer is loaded in group 0 and stored in group 1: the store's
        // 4 elements belong to matrix 1's shard, charged to group 1.
        let m1 = MatrixId::synthetic(1);
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let x = b.load(m1, Region::rect(0, 0, 2, 2));
        b.begin_group();
        b.store(x);
        let s = b.finish();
        let shards: BTreeMap<u64, usize> = [(1, 1)].into();
        let a = partition_groups(&s, &shards, &[1]);
        assert_eq!(a.local_volume, vec![8]);
        assert_eq!(a.cross_volume, vec![0]);
        let a = partition_groups(&s, &shards, &[0]);
        assert_eq!(a.cross_volume, vec![8]);
    }

    #[test]
    fn ascii_rendering_has_expected_shape() {
        let p = TbsPartition::build(5, 3).unwrap();
        let art = p.render_ascii(100);
        // 15 rows in the strict lower triangle rendering (rows 1..15)
        assert_eq!(art.lines().count(), 14);
        assert!(art.contains('.'));
    }
}
