//! The generic out-of-core execution engine.
//!
//! [`Engine`] replays a [`Schedule`] built from the IR of [`crate::ir`] in
//! five modes: two that run it, two that only analyze it, and a prefetching
//! variant of each of the four:
//!
//! * [`Engine::execute`] — runs the schedule for real against any
//!   [`MachineOps`] machine (normally the serial
//!   [`OocMachine`](symla_memory::OocMachine)): every
//!   load/store is a counted, capacity-checked machine transfer and every
//!   compute step runs its block kernel on the resident buffers. The eight
//!   out-of-core algorithms' `*_execute` wrappers are serial executions
//!   through this entry point.
//! * [`Engine::execute_parallel`] — distributes the schedule's
//!   [`TaskGroup`]s over `P` workers of a [`SharedSlowMemory`] through a
//!   work-stealing queue of [`std::thread::scope`] threads. Each worker is a
//!   private, capacity-checked fast memory with its own [`IoStats`] /
//!   [`Trace`]; the groups it replays run through the same per-group code
//!   path as a serial execution.
//! * [`Engine::dry_run`] — replays only the accounting: loads, stores,
//!   events, flops, per-phase attribution and the peak-resident watermark,
//!   without a machine or data. A dry run of a schedule produces exactly the
//!   [`IoStats`] an execution of the same schedule produces.
//! * [`Engine::trace`] — synthesizes the [`Trace`] event stream the machine
//!   would record, again without executing anything; used for schedule
//!   inspection and bound verification.
//!
//! Every mode additionally exists in a **prefetching** variant
//! ([`Engine::execute_with`] / [`Engine::dry_run_with`] /
//! [`Engine::trace_with`] / [`Engine::execute_parallel_with`]) taking an
//! [`EngineConfig`]: with `lookahead = L > 0` the engine double-buffers the
//! load stream, issuing the `Load` steps of up to `L` future task groups at
//! the boundary of the current group — i.e. while the current group
//! computes — whenever they fit in the capacity slack `S − footprint` and
//! are legal to hoist (see [`crate::prefetch`] for the planner and its
//! admission rules). Transfer *volumes* are unchanged; the prefetched share
//! of the load stream is reported in [`IoStats::prefetched_elements`] /
//! `prefetch_events` (overlapped vs stalled loads), and the residency cost
//! of the lookahead shows up in `peak_resident`, which by planner
//! construction never exceeds the machine capacity. `lookahead = 0` is
//! bit-for-bit today's behaviour.
//!
//! The invariant tying the modes together (checked by the cross-crate
//! equivalence tests): for any schedule `s`, machine `m` and config `c`,
//! `execute_with(&mut m, &s, &c)` leaves `m.stats()` equal to
//! `dry_run_with(&s, .., &c, m.capacity())` and `m.trace()` equal to
//! `trace_with(&s, .., &c, m.capacity())`; and for any schedule whose groups
//! are independent, `execute_parallel(&shared, &s, P, ..)` leaves the *sum*
//! of the per-worker [`IoStats`] equal to `dry_run(&s)`, each worker's stats
//! equal to the dry run of exactly the groups it processed, and the contents
//! of the shared slow memory bitwise-identical to what a serial `execute`
//! leaves behind.

use crate::ir::{BufId, BufSlice, ComputeOp, Schedule, Step, TaskGroup};
use crate::prefetch::{group_peak, hoistable_loads, PrefetchPlan};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use symla_matrix::kernels::micro::{ger_view_auto, spr_lower_view_auto};
use symla_matrix::kernels::views::{
    cholesky_packed_view_in_place, lu_view_in_place, triangle_pairs_update,
};
use symla_matrix::{MatrixError, Scalar};
use symla_memory::{
    Direction, FastBuf, IoStats, MachineConfig, MachineModel, MachineOps, MemoryError,
    SharedSlowMemory, Trace, TraceEvent,
};
use symla_obs::{InstrumentedMachine, TraceRecorder};

/// Errors raised while replaying a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// An error from the memory machine (capacity exceeded, bad region, ...).
    Memory(MemoryError),
    /// A numerical error from a block kernel (non-SPD pivot, ...).
    Matrix(MatrixError),
    /// The schedule is malformed (e.g. a step references a buffer that was
    /// never loaded or was already released).
    InvalidSchedule(String),
    /// The caller passed an invalid argument (e.g. zero workers); nothing
    /// was replayed and no accounting exists.
    InvalidArgument(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Memory(e) => write!(f, "memory model error: {e}"),
            EngineError::Matrix(e) => write!(f, "kernel error: {e}"),
            EngineError::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
            EngineError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Memory(e) => Some(e),
            EngineError::Matrix(e) => Some(e),
            EngineError::InvalidSchedule(_) | EngineError::InvalidArgument(_) => None,
        }
    }
}

impl From<MemoryError> for EngineError {
    fn from(e: MemoryError) -> Self {
        EngineError::Memory(e)
    }
}

impl From<MatrixError> for EngineError {
    fn from(e: MatrixError) -> Self {
        EngineError::Matrix(e)
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

/// Buffers loaded ahead of their group, keyed by the `(group, step)`
/// coordinate of the `Load` they stand in for (buffer ids are only unique
/// within one builder, so they cannot key cross-group state).
type PrefetchedBufs<T> = BTreeMap<(usize, usize), FastBuf<T>>;

/// Per-group prefetch analysis of the parallel path: the group's standalone
/// peak footprint (`None` = not self-contained) and its hoistable loads as
/// `(step index, elements)` pairs.
type GroupAnalysis = (Option<usize>, Vec<(usize, usize)>);

/// Replay configuration of the engine's `*_with` entry points.
///
/// The only knob today is the prefetch lookahead: with `lookahead = L > 0`
/// the engine issues the `Load` steps of up to `L` future task groups at
/// the current group's boundary (double-buffering at `L = 1`), admitted by
/// the [`PrefetchPlan`] against the capacity
/// slack. `lookahead = 0` (the default) reproduces the plain serial replay
/// exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineConfig {
    /// How many future task groups' loads may be in flight while the
    /// current group computes.
    pub lookahead: usize,
}

impl EngineConfig {
    /// A config prefetching up to `lookahead` groups ahead.
    pub fn with_lookahead(lookahead: usize) -> Self {
        Self { lookahead }
    }
}

/// Accounting of one worker of an [`Engine::execute_parallel`] run.
#[derive(Debug, Clone)]
pub struct WorkerRun {
    /// The worker's I/O statistics: exactly the dry-run accounting of the
    /// task groups in `groups` (asserted by the equivalence tests).
    pub stats: IoStats,
    /// The worker's transfer trace, if the worker config enabled recording.
    pub trace: Option<Trace>,
    /// Indices (into [`Schedule::groups`]) of the task groups this worker
    /// completed, in the order it claimed them.
    pub groups: Vec<usize>,
}

impl WorkerRun {
    /// Sums the statistics of a set of worker runs (phases merge by name,
    /// the peak residency is the **maximum over the workers**).
    ///
    /// For a schedule with self-contained groups the volumes, events, flops
    /// and phase split equal the serial [`Engine::dry_run`] of the whole
    /// schedule (every group is processed by exactly one worker), and the
    /// merged `peak_resident` equals the serial peak (both are per-group
    /// maxima). Note what the merged peak is *not*: the fleet-wide memory
    /// in use. The workers' private fast memories coexist, so at any
    /// instant the fleet may hold up to the **sum** of the per-worker
    /// residencies — see [`WorkerRun::aggregate_peak`] for that upper
    /// bound.
    pub fn merged_stats(runs: &[WorkerRun]) -> IoStats {
        let mut total = IoStats::new();
        for run in runs {
            total.merge(&run.stats);
        }
        total
    }

    /// Upper bound on the fleet-wide peak residency: the sum of the
    /// per-worker peaks. The true concurrent peak lies between the busiest
    /// single worker's peak (what [`WorkerRun::merged_stats`] reports) and
    /// this sum — the workers' fast memories are private and coexist, but
    /// their individual peaks need not be simultaneous, so the sum is an
    /// upper bound, not an exact measurement.
    pub fn aggregate_peak(runs: &[WorkerRun]) -> usize {
        runs.iter().map(|r| r.stats.peak_resident).sum()
    }
}

/// Error of an [`Engine::execute_parallel`] run.
///
/// Carries the accounting of every worker at the moment the run aborted, so
/// callers can still audit the traffic of the groups that did complete (the
/// failing worker's stats include the partial traffic of the failed group;
/// its buffers were released back without store traffic).
#[derive(Debug)]
pub struct ParallelError {
    /// The first replay error observed.
    pub error: EngineError,
    /// Index of the worker whose group replay failed. `None` when the run
    /// was rejected before any worker started (e.g. `workers == 0` — see
    /// [`EngineError::InvalidArgument`]); no worker index is fabricated for
    /// failures that never happened on a worker.
    pub worker: Option<usize>,
    /// Index (into [`Schedule::groups`]) of the task group that failed;
    /// `None` when no group was ever attempted.
    pub group: Option<usize>,
    /// Per-worker accounting up to the abort. Workers that were mid-group
    /// when the abort flag rose finish that group normally, so every run
    /// in this list is consistent (its stats equal the dry-run of its
    /// completed groups plus, for the failing worker, the partial group).
    pub runs: Vec<WorkerRun>,
}

impl fmt::Display for ParallelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.worker, self.group) {
            (Some(worker), Some(group)) => write!(
                f,
                "worker {} failed on task group {}: {}",
                worker, group, self.error
            ),
            _ => write!(f, "parallel execution rejected: {}", self.error),
        }
    }
}

impl std::error::Error for ParallelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<ParallelError> for EngineError {
    fn from(e: ParallelError) -> Self {
        e.error
    }
}

/// The per-worker deques of a parallel run: each worker drains its own deque
/// from the front and steals from the back of the others when it runs dry.
/// Groups are dealt round-robin, so a schedule of uniform groups starts out
/// balanced and stealing only kicks in under real imbalance.
struct StealQueue {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl StealQueue {
    fn deal(groups: usize, workers: usize) -> Self {
        Self {
            deques: (0..workers)
                .map(|w| Mutex::new((w..groups).step_by(workers).collect()))
                .collect(),
        }
    }

    fn lock(&self, w: usize) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
        // Recover from poisoning (a worker panicking elsewhere): the deques
        // hold plain indices, so the data cannot be inconsistent.
        self.deques[w]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Next group for worker `w`: its own front, else a steal from the back
    /// of the first non-empty victim (the flag in the pair is `true` for a
    /// steal). `None` means all deques are empty — no new work can appear,
    /// so the worker is done.
    fn pop(&self, w: usize) -> Option<(usize, bool)> {
        if let Some(g) = self.lock(w).pop_front() {
            return Some((g, false));
        }
        let n = self.deques.len();
        for v in (w + 1..n).chain(0..w) {
            if let Some(g) = self.lock(v).pop_back() {
                return Some((g, true));
            }
        }
        None
    }

    /// Next group from worker `w`'s own deque only. Filling a prefetch
    /// lookahead window uses this instead of [`StealQueue::pop`]: a worker
    /// must not *steal* groups it will merely park behind its current one —
    /// that would serialize work other workers could run now.
    fn pop_local(&self, w: usize) -> Option<usize> {
        self.lock(w).pop_front()
    }
}

/// The schedule replayer. See the module docs for the five modes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Engine;

fn missing(buf: BufId) -> EngineError {
    EngineError::InvalidSchedule(format!("step references unknown or released buffer {buf}"))
}

fn short_segment(op: &str, got: usize, needed: usize) -> EngineError {
    EngineError::InvalidSchedule(format!(
        "{op}: segment buffer has {got} element(s), step needs {needed} \
         (column/row index out of range for the destination tile)"
    ))
}

/// The phase each group's traffic is attributed to under the serial phase
/// semantics: a group's own label if set, else the label of the nearest
/// labeled group before it, else `default` (the machine's phase at entry).
/// Precomputed so prefetched loads can be charged to the phase of the group
/// that consumes them, independent of where they are issued.
fn effective_phases<T: Scalar>(schedule: &Schedule<T>, default: &str) -> Vec<String> {
    let mut current = default.to_string();
    schedule
        .groups
        .iter()
        .map(|group| {
            if let Some(phase) = &group.phase {
                current = phase.clone();
            }
            current.clone()
        })
        .collect()
}

fn slice_of<'a, T: Scalar>(bufs: &'a BTreeMap<BufId, FastBuf<T>>, s: &BufSlice) -> Result<&'a [T]> {
    let buf = bufs.get(&s.buf).ok_or_else(|| missing(s.buf))?;
    buf.as_slice().get(s.start..s.start + s.len).ok_or_else(|| {
        EngineError::InvalidSchedule(format!(
            "slice {}..+{} exceeds buffer {} of {} elements",
            s.start,
            s.len,
            s.buf,
            buf.len()
        ))
    })
}

impl Engine {
    /// Replays `schedule` against `machine`, running every block kernel on
    /// real data. Transfers are counted and capacity-checked by the machine
    /// exactly as the hand-rolled executors counted them. Works against any
    /// [`MachineOps`] implementation: the serial
    /// [`OocMachine`](symla_memory::OocMachine) or one
    /// [`WorkerMachine`](symla_memory::WorkerMachine) of a shared slow
    /// memory.
    ///
    /// On error, buffers the failed schedule still held are released back to
    /// the machine (without store traffic), so its residency accounting and
    /// leases stay consistent and the matrices can still be taken out.
    ///
    /// ```
    /// use symla_matrix::Matrix;
    /// use symla_memory::{OocMachine, Region};
    /// use symla_sched::{BufSlice, ComputeOp, Engine, ScheduleBuilder};
    ///
    /// let mut machine = OocMachine::<f64>::with_capacity(6);
    /// let id = machine.insert_dense(Matrix::identity(4));
    /// // One rank-1 update: C[0..2, 0..2] += 2 · a · aᵀ with a = A[0..2, 3].
    /// let mut b = ScheduleBuilder::new();
    /// let c = b.load(id, Region::rect(0, 0, 2, 2));
    /// let a = b.load(id, Region::col_segment(3, 0, 2));
    /// b.compute(ComputeOp::Ger {
    ///     alpha: 2.0,
    ///     x: BufSlice::whole(a, 2),
    ///     y: BufSlice::whole(a, 2),
    ///     dst: c,
    /// });
    /// b.discard(a);
    /// b.store(c);
    /// Engine::execute(&mut machine, &b.finish()).unwrap();
    /// // Transfers were counted and capacity-checked (6 resident at peak) ...
    /// assert_eq!(machine.stats().volume.loads, 6);
    /// assert_eq!(machine.stats().volume.stores, 4);
    /// assert_eq!(machine.stats().peak_resident, 6);
    /// // ... and the kernel really ran on slow memory's data.
    /// let out = machine.take_dense(id).unwrap();
    /// assert_eq!(out[(0, 0)], 1.0); // A[0,3] = 0, so nothing changed
    /// ```
    pub fn execute<T: Scalar, M: MachineOps<T>>(
        machine: &mut M,
        schedule: &Schedule<T>,
    ) -> Result<()> {
        Self::execute_with(machine, schedule, &EngineConfig::default())
    }

    /// [`Engine::execute`] with a replay configuration: `config.lookahead > 0`
    /// turns on double-buffered prefetching — at every group boundary the
    /// engine first *fills* the prefetch window (issuing the planned `Load`
    /// steps of up to `lookahead` future groups, counted as load traffic and
    /// marked prefetched in the machine's [`IoStats`]) and then *drains* the
    /// current group, whose prefetched loads find their buffers already
    /// resident. The [`PrefetchPlan`] admits
    /// a load only when it fits the capacity slack and reads fresh data, so
    /// the machine's peak residency never exceeds its capacity and results
    /// are bitwise-identical to the plain replay.
    ///
    /// Prefetched loads are attributed to the phase of the group that
    /// *consumes* them (issuing a load early does not change which
    /// sub-algorithm needs the data), so the per-phase split is identical
    /// at every lookahead.
    pub fn execute_with<T: Scalar, M: MachineOps<T>>(
        machine: &mut M,
        schedule: &Schedule<T>,
        config: &EngineConfig,
    ) -> Result<()> {
        let mut bufs: BTreeMap<BufId, FastBuf<T>> = BTreeMap::new();
        let mut prefetched: PrefetchedBufs<T> = BTreeMap::new();
        let outcome = if config.lookahead == 0 {
            // Fast path: no plan, no phase table — exactly the historical
            // serial replay (the per-group phase label semantics coincide
            // with `effective_phases`, without one String per group).
            Self::replay_plain(machine, schedule, &mut bufs, &mut prefetched)
        } else {
            let plan = PrefetchPlan::plan(schedule, config.lookahead, machine.capacity());
            let phases = effective_phases(schedule, machine.phase());
            Self::replay(
                machine,
                schedule,
                &plan,
                &phases,
                &mut bufs,
                &mut prefetched,
            )
        };
        for buf in bufs.into_values().chain(prefetched.into_values()) {
            // Release leaked buffers even when the replay failed; a discard
            // can only fail for foreign buffers, which cannot be in `bufs`.
            let _ = machine.discard(buf);
        }
        outcome
    }

    /// Replays `schedule` with an **already-computed** prefetch plan,
    /// skipping the planning step of [`Engine::execute_with`] entirely.
    ///
    /// This is the replay-many half of the plan cache's
    /// compile-once/replay-many contract: a plan computed (and serialized)
    /// at compile time is handed back verbatim, so a cache hit performs
    /// zero prefetch-planner work. The plan must have been produced by
    /// [`PrefetchPlan::plan`] for this schedule under a capacity no larger
    /// than the machine's — a plan for a different schedule is rejected
    /// when its boundary count disagrees, and its per-step coordinates are
    /// validated during the replay.
    ///
    /// An empty plan replays through the same fast path as
    /// [`Engine::execute`]; results and accounting are identical to
    /// `execute_with` at the lookahead the plan was computed for.
    pub fn execute_planned<T: Scalar, M: MachineOps<T>>(
        machine: &mut M,
        schedule: &Schedule<T>,
        plan: &PrefetchPlan,
    ) -> Result<()> {
        if !plan.is_empty() && plan.num_boundaries() != schedule.num_groups() {
            return Err(EngineError::InvalidArgument(format!(
                "prefetch plan covers {} group boundary(ies), schedule has {} group(s)",
                plan.num_boundaries(),
                schedule.num_groups()
            )));
        }
        // A plan may come from disk: reject out-of-range coordinates here
        // rather than index-panicking inside the replay.
        for boundary in 0..plan.num_boundaries() {
            for issue in plan.issues_at(boundary) {
                let valid = schedule
                    .groups
                    .get(issue.group)
                    .is_some_and(|g| issue.step < g.steps.len());
                if !valid {
                    return Err(EngineError::InvalidArgument(format!(
                        "prefetch plan targets step {} of group {}, out of range \
                         for this schedule",
                        issue.step, issue.group
                    )));
                }
            }
        }
        let mut bufs: BTreeMap<BufId, FastBuf<T>> = BTreeMap::new();
        let mut prefetched: PrefetchedBufs<T> = BTreeMap::new();
        let outcome = if plan.is_empty() {
            Self::replay_plain(machine, schedule, &mut bufs, &mut prefetched)
        } else {
            let phases = effective_phases(schedule, machine.phase());
            Self::replay(machine, schedule, plan, &phases, &mut bufs, &mut prefetched)
        };
        for buf in bufs.into_values().chain(prefetched.into_values()) {
            let _ = machine.discard(buf);
        }
        outcome
    }

    /// The non-prefetching serial replay (`lookahead = 0`).
    fn replay_plain<T: Scalar, M: MachineOps<T>>(
        machine: &mut M,
        schedule: &Schedule<T>,
        bufs: &mut BTreeMap<BufId, FastBuf<T>>,
        prefetched: &mut PrefetchedBufs<T>,
    ) -> Result<()> {
        for (g, group) in schedule.groups.iter().enumerate() {
            machine.note_group_boundary();
            machine.note_group_start(g);
            if let Some(phase) = &group.phase {
                machine.set_phase(phase);
            }
            Self::replay_group(machine, g, group, bufs, prefetched)?;
            machine.note_group_end(g);
        }
        machine.note_group_boundary();
        if !bufs.is_empty() {
            return Err(EngineError::InvalidSchedule(format!(
                "{} buffer(s) left resident at end of schedule",
                bufs.len()
            )));
        }
        Ok(())
    }

    fn replay<T: Scalar, M: MachineOps<T>>(
        machine: &mut M,
        schedule: &Schedule<T>,
        plan: &PrefetchPlan,
        phases: &[String],
        bufs: &mut BTreeMap<BufId, FastBuf<T>>,
        prefetched: &mut PrefetchedBufs<T>,
    ) -> Result<()> {
        for (g, group) in schedule.groups.iter().enumerate() {
            machine.note_group_boundary();
            machine.note_group_start(g);
            // Fill: issue the loads planned at this boundary (they overlap
            // with this group's compute in the two-phase model).
            for issue in plan.issues_at(g) {
                let Step::Load {
                    matrix,
                    region,
                    level,
                    ..
                } = &schedule.groups[issue.group].steps[issue.step]
                else {
                    return Err(EngineError::InvalidSchedule(format!(
                        "prefetch plan targets non-load step {} of group {}",
                        issue.step, issue.group
                    )));
                };
                machine.set_phase(&phases[issue.group]);
                let buf = machine.load_from(*matrix, region.clone(), *level)?;
                machine.note_prefetch(region.len());
                machine.note_prefetch_issue(issue.group, issue.step, region.len());
                prefetched.insert((issue.group, issue.step), buf);
            }
            // Drain: replay the group itself.
            machine.set_phase(&phases[g]);
            Self::replay_group(machine, g, group, bufs, prefetched)?;
            machine.note_group_end(g);
        }
        machine.note_group_boundary();
        if !bufs.is_empty() || !prefetched.is_empty() {
            return Err(EngineError::InvalidSchedule(format!(
                "{} buffer(s) left resident at end of schedule",
                bufs.len() + prefetched.len()
            )));
        }
        Ok(())
    }

    /// Replays the steps of one task group. Shared verbatim between the
    /// serial path (where `bufs` persists across groups, tolerating legacy
    /// schedules whose buffers straddle group boundaries) and the parallel
    /// path (where each group gets a fresh table and must be self-contained).
    /// A load whose `(group, step)` coordinate is in `prefetched` was issued
    /// (and counted) at an earlier group boundary and replays as a handoff —
    /// coordinates, not buffer ids, key the handoff because concatenated
    /// schedules legally reuse ids across groups.
    fn replay_group<T: Scalar, M: MachineOps<T>>(
        machine: &mut M,
        group_index: usize,
        group: &TaskGroup<T>,
        bufs: &mut BTreeMap<BufId, FastBuf<T>>,
        prefetched: &mut PrefetchedBufs<T>,
    ) -> Result<()> {
        for (idx, step) in group.steps.iter().enumerate() {
            match step {
                Step::Load {
                    matrix,
                    region,
                    dst,
                    level,
                } => {
                    if let Some(buf) = prefetched.remove(&(group_index, idx)) {
                        machine.note_prefetch_delivery(group_index, idx);
                        bufs.insert(*dst, buf);
                        continue;
                    }
                    let buf = machine.load_from(*matrix, region.clone(), *level)?;
                    bufs.insert(*dst, buf);
                }
                Step::Alloc {
                    matrix,
                    region,
                    dst,
                } => {
                    let buf = machine.allocate_zeroed(*matrix, region.clone())?;
                    bufs.insert(*dst, buf);
                }
                Step::Flops(flops) => machine.record_flops(*flops),
                Step::Store { buf, level } => {
                    let b = bufs.remove(buf).ok_or_else(|| missing(*buf))?;
                    machine.store_to(b, *level)?;
                }
                Step::Discard { buf } => {
                    let b = bufs.remove(buf).ok_or_else(|| missing(*buf))?;
                    machine.discard(b)?;
                }
                Step::Compute(op) => {
                    machine.note_compute(op.kind());
                    Self::compute(bufs, op)?;
                }
            }
        }
        Ok(())
    }

    /// Executes `schedule` with `workers` concurrent workers sharing the
    /// slow memory `shared`, each with a private fast memory configured by
    /// `config`.
    ///
    /// [`TaskGroup`]s are the unit of distribution: they are dealt
    /// round-robin onto per-worker deques and re-balanced by work stealing
    /// (a worker that drains its own deque steals from the back of the
    /// others). **The caller asserts that the groups are independent** —
    /// i.e. no group reads or writes a slow-memory region another group
    /// writes. The SYRK-family schedules of this workspace (square-block,
    /// TBS, tiled TBS, GEMM and the `symla_core::parallel` partitions)
    /// satisfy this: each group owns a disjoint block of the result and only
    /// reads the shared input panel. The left-looking factorizations
    /// (Cholesky, LU, TRSM) order their groups *through* slow memory and
    /// must stay on the serial [`Engine::execute`] path.
    ///
    /// Two semantic differences from a serial execution, both irrelevant to
    /// schedules with independent groups:
    ///
    /// * every group must be self-contained (create and release all its
    ///   buffers) — the serial path tolerates buffers straddling groups;
    /// * a group without a phase label is attributed to `default_phase`,
    ///   not to the label of the textually preceding group (which may be
    ///   replaying on a different worker).
    ///
    /// On success, returns one [`WorkerRun`] per worker (its [`IoStats`],
    /// optional [`Trace`] and the groups it completed). On failure, the
    /// first error aborts the run: other workers finish the group they are
    /// on and stop claiming; the returned [`ParallelError`] carries the
    /// error, the failing worker/group and every worker's accounting.
    ///
    /// ```
    /// use symla_matrix::Matrix;
    /// use symla_memory::{MachineConfig, MatrixId, Region, SharedSlowMemory};
    /// use symla_sched::engine::{Engine, WorkerRun};
    /// use symla_sched::ScheduleBuilder;
    ///
    /// let shared = SharedSlowMemory::<f64>::new();
    /// let id = shared.insert_dense(Matrix::identity(8));
    /// // Four independent groups, one per diagonal 2x2 block.
    /// let mut b = ScheduleBuilder::new();
    /// for i in 0..4 {
    ///     b.begin_group();
    ///     let buf = b.load(id, Region::rect(2 * i, 2 * i, 2, 2));
    ///     b.store(buf);
    /// }
    /// let schedule = b.finish();
    ///
    /// let runs =
    ///     Engine::execute_parallel(&shared, &schedule, 2, MachineConfig::with_capacity(4), "main")
    ///         .unwrap();
    /// assert_eq!(runs.len(), 2);
    /// // Every group ran on exactly one worker ...
    /// let done: usize = runs.iter().map(|r| r.groups.len()).sum();
    /// assert_eq!(done, 4);
    /// // ... and the summed per-worker accounting equals the serial dry run.
    /// assert_eq!(WorkerRun::merged_stats(&runs), Engine::dry_run(&schedule, "main"));
    /// ```
    pub fn execute_parallel<T: Scalar>(
        shared: &SharedSlowMemory<T>,
        schedule: &Schedule<T>,
        workers: usize,
        config: MachineConfig,
        default_phase: &str,
    ) -> std::result::Result<Vec<WorkerRun>, ParallelError> {
        Self::execute_parallel_with(
            shared,
            schedule,
            workers,
            config,
            default_phase,
            &EngineConfig::default(),
        )
    }

    /// [`Engine::execute_parallel`] with a replay configuration: with
    /// `engine.lookahead = L > 0` every worker pipelines its group handoff —
    /// it claims up to `L` additional groups from *its own deque* (never
    /// stealing ahead: parked lookahead groups would serialize work other
    /// workers could run now) and, before
    /// draining the current group, issues the hoistable loads of those
    /// claimed groups into its private fast memory (counted and marked
    /// prefetched in its [`IoStats`]), so the next group's input stream
    /// overlaps the current group's compute. Admission is conservative: a
    /// load is only issued while the resident prefetch window plus the
    /// largest claimed group footprint still fits the worker's capacity, and
    /// a load that the (serialized) shared memory rejects anyway falls back
    /// to its original program point instead of failing the run. Groups that
    /// are not self-contained disable prefetching around them, and the
    /// caller's independence contract (no group touches a region another
    /// group writes) is what makes cross-group hoisting safe — exactly the
    /// contract [`Engine::execute_parallel`] already imposes.
    ///
    /// Per-worker transfer volumes, group coverage and numerical results are
    /// identical to the non-prefetching run; only the overlapped/stalled
    /// split and (within capacity) the per-worker peak residency change.
    pub fn execute_parallel_with<T: Scalar>(
        shared: &SharedSlowMemory<T>,
        schedule: &Schedule<T>,
        workers: usize,
        config: MachineConfig,
        default_phase: &str,
        engine: &EngineConfig,
    ) -> std::result::Result<Vec<WorkerRun>, ParallelError> {
        Self::execute_parallel_core(
            schedule,
            workers,
            engine.lookahead,
            default_phase,
            |_w| shared.worker(config),
            |m| m.into_accounting(),
        )
    }

    /// [`Engine::execute_parallel_with`] with observability: every worker's
    /// machine is wrapped in an
    /// [`InstrumentedMachine`] reporting to
    /// (a clone of) `recorder`, so the run produces one
    /// [`RunTrace`](symla_obs::RunTrace) covering all workers — group spans,
    /// transfers, kernels, claims/steals and prefetch issue→delivery pairs,
    /// each stamped with both the real clock and the modelled timeline of
    /// `model`. Accounting, results and scheduling semantics are identical
    /// to the unobserved entry point (asserted by the observer-invariance
    /// tests).
    #[allow(clippy::too_many_arguments)]
    pub fn execute_parallel_traced<T: Scalar>(
        shared: &SharedSlowMemory<T>,
        schedule: &Schedule<T>,
        workers: usize,
        config: MachineConfig,
        default_phase: &str,
        engine: &EngineConfig,
        model: &MachineModel,
        recorder: &TraceRecorder,
    ) -> std::result::Result<Vec<WorkerRun>, ParallelError> {
        Self::execute_parallel_core(
            schedule,
            workers,
            engine.lookahead,
            default_phase,
            |w| InstrumentedMachine::new(shared.worker(config), *model, recorder.clone(), w),
            |m| m.into_inner().into_accounting(),
        )
    }

    /// The parallel replay loop, generic over how a worker's machine is
    /// built and how it is torn down into accounting — the unobserved and
    /// traced entry points share everything else (machines are built inside
    /// the spawned threads, so they need not be `Send`).
    fn execute_parallel_core<T, M, B, F>(
        schedule: &Schedule<T>,
        workers: usize,
        lookahead: usize,
        default_phase: &str,
        build: B,
        finish: F,
    ) -> std::result::Result<Vec<WorkerRun>, ParallelError>
    where
        T: Scalar,
        M: MachineOps<T>,
        B: Fn(usize) -> M + Sync,
        F: Fn(M) -> (IoStats, Option<Trace>) + Sync,
    {
        if workers == 0 {
            return Err(ParallelError {
                error: EngineError::InvalidArgument(
                    "execute_parallel needs at least one worker".to_string(),
                ),
                worker: None,
                group: None,
                runs: Vec::new(),
            });
        }
        // Per-group prefetch analysis, shared read-only by all workers:
        // the group's own peak footprint (None = not self-contained, do not
        // prefetch around it) and the loads hoistable to its start.
        let analysis: Vec<GroupAnalysis> = if lookahead > 0 {
            schedule
                .groups
                .iter()
                .map(|g| (group_peak(g), hoistable_loads(g)))
                .collect()
        } else {
            Vec::new()
        };
        let queue = StealQueue::deal(schedule.groups.len(), workers);
        let abort = AtomicBool::new(false);
        let failure: Mutex<Option<(usize, usize, EngineError)>> = Mutex::new(None);

        let runs: Vec<WorkerRun> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (queue, abort, failure, analysis) = (&queue, &abort, &failure, &analysis);
                    let (build, finish) = (&build, &finish);
                    scope.spawn(move || {
                        let mut machine = build(w);
                        let mut groups = Vec::new();
                        let mut pending: VecDeque<(usize, bool)> = VecDeque::new();
                        let mut prefetched: PrefetchedBufs<T> = BTreeMap::new();
                        while !abort.load(Ordering::Acquire) {
                            while pending.len() < 1 + lookahead {
                                // The head of the window may be stolen (it
                                // is about to run); lookahead extras come
                                // from the worker's own deque only.
                                let next = if pending.is_empty() {
                                    queue.pop(w)
                                } else {
                                    queue.pop_local(w).map(|g| (g, false))
                                };
                                let Some(g) = next else { break };
                                pending.push_back(g);
                            }
                            let Some((g, stolen)) = pending.pop_front() else {
                                break;
                            };
                            machine.note_group_boundary();
                            machine.note_claim(g, stolen);
                            machine.note_group_start(g);
                            let group = &schedule.groups[g];
                            if lookahead > 0 {
                                Self::fill_worker_window(
                                    &mut machine,
                                    schedule,
                                    analysis,
                                    g,
                                    &pending,
                                    default_phase,
                                    &mut prefetched,
                                );
                            }
                            machine.set_phase(group.phase.as_deref().unwrap_or(default_phase));
                            let mut bufs = BTreeMap::new();
                            let mut outcome = Self::replay_group(
                                &mut machine,
                                g,
                                group,
                                &mut bufs,
                                &mut prefetched,
                            );
                            if outcome.is_ok() && !bufs.is_empty() {
                                outcome = Err(EngineError::InvalidSchedule(format!(
                                    "{} buffer(s) left resident at end of task group {g}",
                                    bufs.len()
                                )));
                            }
                            for (_, buf) in bufs {
                                let _ = machine.discard(buf);
                            }
                            machine.note_group_end(g);
                            match outcome {
                                Ok(()) => groups.push(g),
                                Err(error) => {
                                    failure
                                        .lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                                        .get_or_insert((w, g, error));
                                    abort.store(true, Ordering::Release);
                                    break;
                                }
                            }
                        }
                        machine.note_group_boundary();
                        // Release any prefetched buffers whose group never
                        // drained (abort mid-pipeline).
                        for (_, buf) in prefetched {
                            let _ = machine.discard(buf);
                        }
                        let (stats, trace) = finish(machine);
                        WorkerRun {
                            stats,
                            trace,
                            groups,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parallel worker panicked"))
                .collect()
        });

        let slot = failure
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match slot {
            Some((worker, group, error)) => Err(ParallelError {
                error,
                worker: Some(worker),
                group: Some(group),
                runs,
            }),
            None => Ok(runs),
        }
    }

    /// Issues the hoistable loads of a worker's claimed-but-not-yet-drained
    /// groups (`pending`) before it drains group `current`. Admission is
    /// conservative: the live prefetch window plus the load plus the largest
    /// group footprint the worker still has in flight must fit its capacity;
    /// a rejected or failing load simply stays at its original program point
    /// (prefetching is an optimization, never a new failure mode).
    fn fill_worker_window<T: Scalar, M: MachineOps<T>>(
        machine: &mut M,
        schedule: &Schedule<T>,
        analysis: &[GroupAnalysis],
        current: usize,
        pending: &VecDeque<(usize, bool)>,
        default_phase: &str,
        prefetched: &mut PrefetchedBufs<T>,
    ) {
        let capacity = machine.capacity();
        let mut window: u64 = prefetched.values().map(|b| b.len() as u64).sum();
        // The bound must cover every group the worker drains while the
        // prefetched buffer is alive: the current group and all claimed ones.
        let mut max_peak = 0u64;
        for g in std::iter::once(current).chain(pending.iter().map(|&(g, _)| g)) {
            match analysis[g].0 {
                Some(peak) => max_peak = max_peak.max(peak as u64),
                // A non-self-contained group has no standalone footprint;
                // prefetching around it is off the table entirely.
                None => return,
            }
        }
        for &(h, _) in pending {
            for &(step_idx, size) in &analysis[h].1 {
                let Step::Load {
                    matrix,
                    region,
                    level,
                    ..
                } = &schedule.groups[h].steps[step_idx]
                else {
                    continue;
                };
                if prefetched.contains_key(&(h, step_idx)) {
                    continue;
                }
                if let Some(cap) = capacity {
                    if window + size as u64 + max_peak > cap as u64 {
                        continue;
                    }
                }
                machine.set_phase(schedule.groups[h].phase.as_deref().unwrap_or(default_phase));
                let Ok(buf) = machine.load_from(*matrix, region.clone(), *level) else {
                    continue; // fall back to loading at the original point
                };
                machine.note_prefetch(region.len());
                machine.note_prefetch_issue(h, step_idx, region.len());
                window += size as u64;
                prefetched.insert((h, step_idx), buf);
            }
        }
    }

    /// Runs one compute step on the resident buffers.
    ///
    /// The destination buffer is taken out of the table for the duration of
    /// the kernel so operand slices (which may alias each other, but never
    /// the destination) can be borrowed immutably.
    fn compute<T: Scalar>(bufs: &mut BTreeMap<BufId, FastBuf<T>>, op: &ComputeOp<T>) -> Result<()> {
        let dst_id = match op {
            ComputeOp::Ger { dst, .. }
            | ComputeOp::SprLower { dst, .. }
            | ComputeOp::TrianglePairs { dst, .. }
            | ComputeOp::CholeskyInPlace { dst, .. }
            | ComputeOp::LuInPlace { dst, .. }
            | ComputeOp::TrsmRightStep { dst, .. }
            | ComputeOp::LuColSolveStep { dst, .. }
            | ComputeOp::LuRowElimStep { dst, .. } => *dst,
        };
        let mut dst = bufs.remove(&dst_id).ok_or_else(|| missing(dst_id))?;
        let outcome = Self::compute_on(bufs, op, &mut dst);
        bufs.insert(dst_id, dst);
        outcome
    }

    fn compute_on<T: Scalar>(
        bufs: &BTreeMap<BufId, FastBuf<T>>,
        op: &ComputeOp<T>,
        dst: &mut FastBuf<T>,
    ) -> Result<()> {
        match op {
            ComputeOp::Ger { alpha, x, y, .. } => {
                let xs = slice_of(bufs, x)?;
                let ys = slice_of(bufs, y)?;
                let mut view = dst.rect_view_mut().map_err(EngineError::Memory)?;
                // Cache-blocked micro-kernel, bitwise-equal to `ger_view`
                // (asserted by the `kernel_equivalence` sweep).
                ger_view_auto(*alpha, xs, ys, &mut view)?;
            }
            ComputeOp::SprLower { alpha, x, .. } => {
                let xs = slice_of(bufs, x)?;
                let mut view = dst.packed_view_mut().map_err(EngineError::Memory)?;
                spr_lower_view_auto(*alpha, xs, &mut view)?;
            }
            ComputeOp::TrianglePairs { alpha, x, .. } => {
                let xs = slice_of(bufs, x)?;
                triangle_pairs_update(*alpha, xs, dst.as_mut_slice())?;
            }
            ComputeOp::CholeskyInPlace { pivot_base, .. } => {
                let mut view = dst.packed_view_mut().map_err(EngineError::Memory)?;
                cholesky_packed_view_in_place(&mut view).map_err(|e| match e {
                    MatrixError::NotPositiveDefinite { pivot, value } => {
                        EngineError::Matrix(MatrixError::NotPositiveDefinite {
                            pivot: pivot + pivot_base,
                            value,
                        })
                    }
                    other => EngineError::Matrix(other),
                })?;
            }
            ComputeOp::LuInPlace { pivot_base, .. } => {
                let mut view = dst.rect_view_mut().map_err(EngineError::Memory)?;
                lu_view_in_place(&mut view).map_err(|e| match e {
                    MatrixError::SingularPivot { pivot } => {
                        EngineError::Matrix(MatrixError::SingularPivot {
                            pivot: pivot + pivot_base,
                        })
                    }
                    other => EngineError::Matrix(other),
                })?;
            }
            ComputeOp::TrsmRightStep {
                seg, col, pivot, ..
            } => {
                let seg = bufs.get(seg).ok_or_else(|| missing(*seg))?.as_slice();
                let mut xv = dst.rect_view_mut().map_err(EngineError::Memory)?;
                let (rc, cc) = (xv.rows(), xv.cols());
                let kk = *col;
                if kk >= cc || seg.len() < cc - kk {
                    return Err(short_segment(
                        "TrsmRightStep",
                        seg.len(),
                        cc.saturating_sub(kk),
                    ));
                }
                let diag = seg[0];
                if diag == T::ZERO || !diag.is_finite_scalar() {
                    return Err(EngineError::Matrix(MatrixError::SingularPivot {
                        pivot: *pivot,
                    }));
                }
                let inv = diag.recip();
                for r in 0..rc {
                    let v = xv.get(r, kk) * inv;
                    xv.set(r, kk, v);
                }
                for j in (kk + 1)..cc {
                    let ljk = seg[j - kk];
                    if ljk == T::ZERO {
                        continue;
                    }
                    for r in 0..rc {
                        let v = xv.get(r, j) - xv.get(r, kk) * ljk;
                        xv.set(r, j, v);
                    }
                }
            }
            ComputeOp::LuColSolveStep {
                seg, col, pivot, ..
            } => {
                let seg = bufs.get(seg).ok_or_else(|| missing(*seg))?.as_slice();
                let kk = *col;
                let mut tv = dst.rect_view_mut().map_err(EngineError::Memory)?;
                if kk >= tv.cols() || seg.len() < kk + 1 {
                    return Err(short_segment("LuColSolveStep", seg.len(), kk + 1));
                }
                let diag = seg[kk];
                if diag == T::ZERO || !diag.is_finite_scalar() {
                    return Err(EngineError::Matrix(MatrixError::SingularPivot {
                        pivot: *pivot,
                    }));
                }
                let inv = diag.recip();
                let ic = tv.rows();
                for (q, &uqk) in seg.iter().enumerate().take(kk) {
                    if uqk == T::ZERO {
                        continue;
                    }
                    for r in 0..ic {
                        let v = tv.get(r, kk) - tv.get(r, q) * uqk;
                        tv.set(r, kk, v);
                    }
                }
                for r in 0..ic {
                    let v = tv.get(r, kk) * inv;
                    tv.set(r, kk, v);
                }
            }
            ComputeOp::LuRowElimStep { seg, row, .. } => {
                let seg = bufs.get(seg).ok_or_else(|| missing(*seg))?.as_slice();
                let kk = *row;
                let mut tv = dst.rect_view_mut().map_err(EngineError::Memory)?;
                if kk >= tv.rows() || seg.len() > tv.rows() - kk - 1 {
                    return Err(short_segment(
                        "LuRowElimStep",
                        seg.len(),
                        tv.rows().saturating_sub(kk + 1),
                    ));
                }
                let jc = tv.cols();
                for (off, &lik) in seg.iter().enumerate() {
                    if lik == T::ZERO {
                        continue;
                    }
                    let i = kk + 1 + off;
                    for c in 0..jc {
                        let v = tv.get(i, c) - lik * tv.get(kk, c);
                        tv.set(i, c, v);
                    }
                }
            }
        }
        Ok(())
    }

    /// Replays only the accounting of `schedule`: the returned [`IoStats`]
    /// equal what [`Engine::execute`] would leave in the machine's counters
    /// (same loads, stores, events, flops, peak residency and per-phase
    /// attribution), computed without data or capacity limits.
    ///
    /// Transfers of groups with no phase label are attributed to
    /// `default_phase` — pass the machine's current phase (usually
    /// `"main"`).
    ///
    /// ```
    /// use symla_memory::{MatrixId, Region};
    /// use symla_sched::{Engine, ScheduleBuilder};
    ///
    /// // Dry runs need no machine: synthetic ids are enough.
    /// let id = MatrixId::synthetic(0);
    /// let mut b = ScheduleBuilder::<f64>::new();
    /// let c = b.load(id, Region::rect(0, 0, 3, 3));
    /// let a = b.load(id, Region::col_segment(3, 0, 3));
    /// b.discard(a);
    /// b.store(c);
    /// let stats = Engine::dry_run(&b.finish(), "main");
    /// assert_eq!(stats.volume.loads, 12);
    /// assert_eq!(stats.volume.stores, 9);
    /// assert_eq!(stats.peak_resident, 12);
    /// assert_eq!(stats.phase("main").loads, 12);
    /// ```
    pub fn dry_run<T: Scalar>(schedule: &Schedule<T>, default_phase: &str) -> IoStats {
        let mut stats = IoStats::new();
        let mut sizes: BTreeMap<BufId, usize> = BTreeMap::new();
        let mut resident = 0usize;
        let mut phase = default_phase.to_string();
        for group in &schedule.groups {
            if let Some(p) = &group.phase {
                phase = p.clone();
            }
            for step in &group.steps {
                match step {
                    Step::Load {
                        region, dst, level, ..
                    } => {
                        let elements = region.len();
                        resident += elements;
                        stats.observe_resident(resident);
                        stats.record_load(elements, &phase);
                        if !level.is_default() {
                            stats.record_level_load(level.raw(), elements);
                        }
                        sizes.insert(*dst, elements);
                    }
                    Step::Alloc { region, dst, .. } => {
                        resident += region.len();
                        stats.observe_resident(resident);
                        sizes.insert(*dst, region.len());
                    }
                    Step::Flops(flops) => stats.record_flops(*flops),
                    Step::Store { buf, level } => {
                        let elements = sizes.remove(buf).unwrap_or(0);
                        resident -= elements;
                        stats.record_store(elements, &phase);
                        if !level.is_default() {
                            stats.record_level_store(level.raw(), elements);
                        }
                    }
                    Step::Discard { buf } => {
                        resident -= sizes.remove(buf).unwrap_or(0);
                    }
                    Step::Compute(_) => {}
                }
            }
        }
        stats
    }

    /// [`Engine::dry_run`] of the **prefetching** replay: models the exact
    /// accounting [`Engine::execute_with`] leaves in a machine of capacity
    /// `capacity` — same volumes, events, flops and per-phase split as the
    /// plain dry run, plus the overlapped/stalled load split
    /// ([`IoStats::prefetched_elements`] / `prefetch_events` /
    /// [`IoStats::stalled_loads`]) and the *prefetch-inflated* peak
    /// residency (which by planner admission never exceeds `capacity`).
    /// This is how the benefit of a lookahead is quantified without timing
    /// noise: the modelled overlap is the load volume removed from the
    /// critical path.
    ///
    /// ```
    /// use symla_memory::{MatrixId, Region};
    /// use symla_sched::{Engine, EngineConfig, ScheduleBuilder};
    ///
    /// let id = MatrixId::synthetic(0);
    /// let mut b = ScheduleBuilder::<f64>::new();
    /// for i in 0..2 {
    ///     b.begin_group();
    ///     let x = b.load(id, Region::rect(2 * i, 0, 2, 2));
    ///     b.store(x);
    /// }
    /// let schedule = b.finish();
    /// let stats = Engine::dry_run_with(
    ///     &schedule, "main", &EngineConfig::with_lookahead(1), Some(8),
    /// );
    /// // Group 1's load was issued while group 0 computed ...
    /// assert_eq!(stats.prefetched_elements, 4);
    /// assert_eq!(stats.stalled_loads(), 4);
    /// // ... at the price of double-buffered residency.
    /// assert_eq!(stats.peak_resident, 8);
    /// assert_eq!(stats.volume.loads, 8); // volumes never change
    /// ```
    pub fn dry_run_with<T: Scalar>(
        schedule: &Schedule<T>,
        default_phase: &str,
        config: &EngineConfig,
        capacity: Option<usize>,
    ) -> IoStats {
        if config.lookahead == 0 {
            return Self::dry_run(schedule, default_phase);
        }
        let plan = PrefetchPlan::plan(schedule, config.lookahead, capacity);
        let phases = effective_phases(schedule, default_phase);
        let mut stats = IoStats::new();
        let mut sizes: BTreeMap<BufId, usize> = BTreeMap::new();
        let mut pre_sizes: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut resident = 0usize;
        for (g, group) in schedule.groups.iter().enumerate() {
            for issue in plan.issues_at(g) {
                let Step::Load { region, level, .. } =
                    &schedule.groups[issue.group].steps[issue.step]
                else {
                    unreachable!("prefetch plans only target load steps");
                };
                let elements = region.len();
                resident += elements;
                stats.observe_resident(resident);
                stats.record_load(elements, &phases[issue.group]);
                if !level.is_default() {
                    stats.record_level_load(level.raw(), elements);
                }
                stats.note_prefetch(elements);
                pre_sizes.insert((issue.group, issue.step), elements);
            }
            for (idx, step) in group.steps.iter().enumerate() {
                match step {
                    Step::Load {
                        region, dst, level, ..
                    } => {
                        if let Some(elements) = pre_sizes.remove(&(g, idx)) {
                            // resident and counted since its issue boundary
                            sizes.insert(*dst, elements);
                            continue;
                        }
                        let elements = region.len();
                        resident += elements;
                        stats.observe_resident(resident);
                        stats.record_load(elements, &phases[g]);
                        if !level.is_default() {
                            stats.record_level_load(level.raw(), elements);
                        }
                        sizes.insert(*dst, elements);
                    }
                    Step::Alloc { region, dst, .. } => {
                        resident += region.len();
                        stats.observe_resident(resident);
                        sizes.insert(*dst, region.len());
                    }
                    Step::Flops(flops) => stats.record_flops(*flops),
                    Step::Store { buf, level } => {
                        let elements = sizes.remove(buf).unwrap_or(0);
                        resident -= elements;
                        stats.record_store(elements, &phases[g]);
                        if !level.is_default() {
                            stats.record_level_store(level.raw(), elements);
                        }
                    }
                    Step::Discard { buf } => {
                        resident -= sizes.remove(buf).unwrap_or(0);
                    }
                    Step::Compute(_) => {}
                }
            }
        }
        stats
    }

    /// Synthesizes the transfer trace of `schedule`: the returned [`Trace`]
    /// equals what a machine with trace recording enabled would record while
    /// executing the schedule.
    ///
    /// ```
    /// use symla_memory::{Direction, MatrixId, Region};
    /// use symla_sched::{Engine, ScheduleBuilder};
    ///
    /// let id = MatrixId::synthetic(7);
    /// let mut b = ScheduleBuilder::<f64>::new();
    /// let buf = b.load(id, Region::rect(0, 0, 2, 4));
    /// b.store(buf);
    /// let trace = Engine::trace(&b.finish(), "main");
    /// assert_eq!(trace.len(), 2);
    /// assert_eq!(trace.events()[0].direction, Direction::Load);
    /// assert_eq!(trace.events()[1].direction, Direction::Store);
    /// assert_eq!(trace.events()[1].resident_after, 0);
    /// ```
    pub fn trace<T: Scalar>(schedule: &Schedule<T>, default_phase: &str) -> Trace {
        let mut trace = Trace::new();
        let mut meta: BTreeMap<BufId, (u64, symla_memory::Region)> = BTreeMap::new();
        let mut resident = 0usize;
        let mut phase = default_phase.to_string();
        for group in &schedule.groups {
            if let Some(p) = &group.phase {
                phase = p.clone();
            }
            for step in &group.steps {
                match step {
                    Step::Load {
                        matrix,
                        region,
                        dst,
                        ..
                    } => {
                        resident += region.len();
                        trace.push(TraceEvent {
                            direction: Direction::Load,
                            matrix: matrix.raw(),
                            region: region.clone(),
                            phase: phase.clone(),
                            resident_after: resident,
                        });
                        meta.insert(*dst, (matrix.raw(), region.clone()));
                    }
                    Step::Alloc {
                        matrix,
                        region,
                        dst,
                    } => {
                        resident += region.len();
                        meta.insert(*dst, (matrix.raw(), region.clone()));
                    }
                    Step::Store { buf, .. } => {
                        if let Some((matrix, region)) = meta.remove(buf) {
                            resident -= region.len();
                            trace.push(TraceEvent {
                                direction: Direction::Store,
                                matrix,
                                region,
                                phase: phase.clone(),
                                resident_after: resident,
                            });
                        }
                    }
                    Step::Discard { buf } => {
                        if let Some((_, region)) = meta.remove(buf) {
                            resident -= region.len();
                        }
                    }
                    Step::Flops(_) | Step::Compute(_) => {}
                }
            }
        }
        trace
    }

    /// [`Engine::trace`] of the **prefetching** replay: the synthesized
    /// stream equals what a trace-recording machine of capacity `capacity`
    /// captures during [`Engine::execute_with`] — prefetched loads appear at
    /// the group boundary where they are issued (with the residency they
    /// observe there), attributed to the phase of their consuming group.
    pub fn trace_with<T: Scalar>(
        schedule: &Schedule<T>,
        default_phase: &str,
        config: &EngineConfig,
        capacity: Option<usize>,
    ) -> Trace {
        if config.lookahead == 0 {
            return Self::trace(schedule, default_phase);
        }
        let plan = PrefetchPlan::plan(schedule, config.lookahead, capacity);
        let phases = effective_phases(schedule, default_phase);
        let mut trace = Trace::new();
        let mut meta: BTreeMap<BufId, (u64, symla_memory::Region)> = BTreeMap::new();
        let mut pre_meta: BTreeMap<(usize, usize), (u64, symla_memory::Region)> = BTreeMap::new();
        let mut resident = 0usize;
        for (g, group) in schedule.groups.iter().enumerate() {
            for issue in plan.issues_at(g) {
                let Step::Load { matrix, region, .. } =
                    &schedule.groups[issue.group].steps[issue.step]
                else {
                    unreachable!("prefetch plans only target load steps");
                };
                resident += region.len();
                trace.push(TraceEvent {
                    direction: Direction::Load,
                    matrix: matrix.raw(),
                    region: region.clone(),
                    phase: phases[issue.group].clone(),
                    resident_after: resident,
                });
                pre_meta.insert((issue.group, issue.step), (matrix.raw(), region.clone()));
            }
            for (idx, step) in group.steps.iter().enumerate() {
                match step {
                    Step::Load {
                        matrix,
                        region,
                        dst,
                        ..
                    } => {
                        if let Some(entry) = pre_meta.remove(&(g, idx)) {
                            // transferred at its issue boundary
                            meta.insert(*dst, entry);
                            continue;
                        }
                        resident += region.len();
                        trace.push(TraceEvent {
                            direction: Direction::Load,
                            matrix: matrix.raw(),
                            region: region.clone(),
                            phase: phases[g].clone(),
                            resident_after: resident,
                        });
                        meta.insert(*dst, (matrix.raw(), region.clone()));
                    }
                    Step::Alloc {
                        matrix,
                        region,
                        dst,
                    } => {
                        resident += region.len();
                        meta.insert(*dst, (matrix.raw(), region.clone()));
                    }
                    Step::Store { buf, .. } => {
                        if let Some((matrix, region)) = meta.remove(buf) {
                            resident -= region.len();
                            trace.push(TraceEvent {
                                direction: Direction::Store,
                                matrix,
                                region,
                                phase: phases[g].clone(),
                                resident_after: resident,
                            });
                        }
                    }
                    Step::Discard { buf } => {
                        if let Some((_, region)) = meta.remove(buf) {
                            resident -= region.len();
                        }
                    }
                    Step::Flops(_) | Step::Compute(_) => {}
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ScheduleBuilder;
    use symla_matrix::kernels::FlopCount;
    use symla_matrix::Matrix;
    use symla_memory::{MachineConfig, MatrixId, OocMachine, Region};

    /// A tiny rank-1 update schedule used by the mode-equivalence tests.
    fn rank1_schedule(id: MatrixId) -> Schedule<f64> {
        let mut b = ScheduleBuilder::new();
        b.begin_group();
        let c = b.load(id, Region::rect(0, 0, 3, 3));
        let x = b.load(id, Region::col_segment(3, 0, 3));
        b.compute(ComputeOp::Ger {
            alpha: 2.0,
            x: BufSlice::whole(x, 3),
            y: BufSlice::whole(x, 3),
            dst: c,
        });
        b.flops(FlopCount::new(9, 9));
        b.discard(x);
        b.store(c);
        b.finish()
    }

    #[test]
    fn execute_dry_run_and_trace_agree() {
        let a = Matrix::<f64>::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let mut machine = OocMachine::new(MachineConfig::with_capacity(16).record_trace(true));
        let id = machine.insert_dense(a.clone());
        let schedule = rank1_schedule(id);

        Engine::execute(&mut machine, &schedule).unwrap();
        let stats = machine.stats().clone();
        assert_eq!(stats, Engine::dry_run(&schedule, "main"));
        assert_eq!(machine.trace().unwrap(), &Engine::trace(&schedule, "main"));
        assert_eq!(stats.volume.loads, 12);
        assert_eq!(stats.volume.stores, 9);
        assert_eq!(stats.peak_resident, 12);
        assert_eq!(stats.flops.mults, 9);

        // the kernel really ran: C[0,0] += 2 * A[0,3]^2
        let out = machine.take_dense(id).unwrap();
        assert_eq!(out[(0, 0)], a[(0, 0)] + 2.0 * a[(0, 3)] * a[(0, 3)]);
    }

    #[test]
    fn phases_are_attributed_per_group() {
        let mut b = ScheduleBuilder::<f64>::new();
        let id = MatrixId::synthetic(0);
        b.set_phase("alpha");
        b.begin_group();
        let x = b.load(id, Region::rect(0, 0, 2, 2));
        b.discard(x);
        b.set_phase("beta");
        b.begin_group();
        let y = b.load(id, Region::rect(0, 0, 5, 1));
        b.store(y);
        let schedule = b.finish();

        let stats = Engine::dry_run(&schedule, "main");
        assert_eq!(stats.phase("alpha").loads, 4);
        assert_eq!(stats.phase("beta").loads, 5);
        assert_eq!(stats.phase("beta").stores, 5);
        assert_eq!(stats.phase("main").total(), 0);
        assert_eq!(stats.peak_resident, 5);
    }

    #[test]
    fn unphased_groups_inherit_the_default_phase() {
        let mut b = ScheduleBuilder::<f64>::new();
        let id = MatrixId::synthetic(0);
        let x = b.load(id, Region::rect(0, 0, 2, 3));
        b.store(x);
        let schedule = b.finish();
        let stats = Engine::dry_run(&schedule, "lbc:trailing");
        assert_eq!(stats.phase("lbc:trailing").loads, 6);
        let trace = Engine::trace(&schedule, "lbc:trailing");
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events()[0].phase, "lbc:trailing");
    }

    #[test]
    fn execute_rejects_malformed_schedules() {
        let mut machine = OocMachine::<f64>::with_capacity(100);
        let id = machine.insert_dense(Matrix::zeros(4, 4));

        // store of a never-loaded buffer
        let mut b = ScheduleBuilder::<f64>::new();
        b.store(99);
        let err = Engine::execute(&mut machine, &b.finish()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidSchedule(_)));
        assert!(err.to_string().contains("99"));

        // buffer left resident at the end
        let mut b = ScheduleBuilder::<f64>::new();
        b.load(id, Region::rect(0, 0, 1, 1));
        let err = Engine::execute(&mut machine, &b.finish()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidSchedule(_)));
    }

    #[test]
    fn failed_execution_releases_resident_buffers() {
        // A schedule that errors mid-flight (second load exceeds capacity
        // while the first buffer is resident) must leave the machine's
        // accounting clean: nothing resident, no leases outstanding.
        let mut machine = OocMachine::<f64>::with_capacity(10);
        let id = machine.insert_dense(Matrix::zeros(4, 4));
        let mut b = ScheduleBuilder::<f64>::new();
        let x = b.load(id, Region::rect(0, 0, 3, 3));
        let y = b.load(id, Region::rect(0, 0, 2, 2)); // 9 + 4 > 10
        b.discard(y);
        b.discard(x);
        let err = Engine::execute(&mut machine, &b.finish()).unwrap_err();
        assert!(matches!(err, EngineError::Memory(_)));
        assert_eq!(machine.resident(), 0);
        assert!(machine.take_dense(id).is_ok(), "no leases left behind");
    }

    #[test]
    fn short_solve_segments_are_rejected_not_panics() {
        let mut machine = OocMachine::<f64>::with_capacity(100);
        let id = machine.insert_dense(Matrix::zeros(6, 6));
        let mut b = ScheduleBuilder::<f64>::new();
        let tile = b.load(id, Region::rect(0, 0, 3, 3));
        let seg = b.load(id, Region::rect(0, 3, 1, 1)); // 1 element, needs 3
        b.compute(ComputeOp::TrsmRightStep {
            seg,
            dst: tile,
            col: 0,
            pivot: 0,
        });
        b.discard(seg);
        b.discard(tile);
        let err = Engine::execute(&mut machine, &b.finish()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidSchedule(_)), "{err}");
        assert_eq!(machine.resident(), 0);
    }

    /// One independent group per diagonal `t x t` block of an `n x n` dense
    /// matrix: load the block, scale it by 2 with a Ger against a loaded
    /// one-column probe, store it back.
    fn diagonal_block_schedule(id: MatrixId, n: usize, t: usize) -> Schedule<f64> {
        let mut b = ScheduleBuilder::new();
        for i0 in (0..n).step_by(t) {
            let tc = t.min(n - i0);
            b.begin_group();
            let c = b.load(id, Region::rect(i0, i0, tc, tc));
            let x = b.load(id, Region::col_segment(i0, i0, tc));
            b.compute(ComputeOp::Ger {
                alpha: 1.0,
                x: BufSlice::whole(x, tc),
                y: BufSlice::whole(x, tc),
                dst: c,
            });
            b.flops(FlopCount::new((tc * tc) as u128, (tc * tc) as u128));
            b.discard(x);
            b.store(c);
        }
        b.finish()
    }

    /// Dry-run accounting of exactly the groups a worker processed.
    fn dry_run_of_groups(schedule: &Schedule<f64>, groups: &[usize]) -> IoStats {
        let picked = Schedule {
            groups: groups.iter().map(|&g| schedule.groups[g].clone()).collect(),
        };
        Engine::dry_run(&picked, "main")
    }

    #[test]
    fn parallel_execution_equals_serial_for_all_worker_counts() {
        let n = 24;
        let a = Matrix::<f64>::from_fn(n, n, |i, j| ((i * n + j) % 13) as f64 - 6.0);
        let schedule = diagonal_block_schedule(MatrixId::synthetic(0), n, 4);
        assert_eq!(schedule.num_groups(), 6);

        // Serial reference execution.
        let mut machine = OocMachine::new(MachineConfig::with_capacity(20));
        let serial_id = machine.insert_dense(a.clone());
        Engine::execute(&mut machine, &schedule).unwrap();
        let expected = machine.take_dense(serial_id).unwrap();
        let dry = Engine::dry_run(&schedule, "main");

        for workers in [1, 2, 4, 8] {
            let shared = SharedSlowMemory::new();
            let id = shared.insert_dense(a.clone());
            let runs = Engine::execute_parallel(
                &shared,
                &schedule,
                workers,
                MachineConfig::with_capacity(20),
                "main",
            )
            .unwrap();
            assert_eq!(runs.len(), workers);

            // Every group ran exactly once.
            let mut all: Vec<usize> = runs.iter().flat_map(|r| r.groups.clone()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..schedule.num_groups()).collect::<Vec<_>>());

            // Summed per-worker accounting equals the serial dry run, and
            // each worker's stats equal the dry run of its own groups.
            assert_eq!(WorkerRun::merged_stats(&runs), dry, "P={workers}");
            for (w, run) in runs.iter().enumerate() {
                assert_eq!(
                    run.stats,
                    dry_run_of_groups(&schedule, &run.groups),
                    "P={workers} worker {w}"
                );
            }

            // The computed result is bitwise-equal to the serial execution.
            let got = shared.take_dense(id).unwrap();
            assert_eq!(got, expected, "P={workers}");
        }
    }

    #[test]
    fn single_worker_reproduces_the_serial_trace() {
        let n = 12;
        let a = Matrix::<f64>::from_fn(n, n, |i, j| (i + 2 * j) as f64);
        let schedule = diagonal_block_schedule(MatrixId::synthetic(0), n, 4);
        let shared = SharedSlowMemory::new();
        shared.insert_dense(a);
        let runs = Engine::execute_parallel(
            &shared,
            &schedule,
            1,
            MachineConfig::with_capacity(20).record_trace(true),
            "main",
        )
        .unwrap();
        // One worker claims the groups in order, so its trace is the serial
        // trace of the whole schedule.
        assert_eq!(
            runs[0].trace.as_ref().unwrap(),
            &Engine::trace(&schedule, "main")
        );
        assert_eq!(runs[0].groups, vec![0, 1, 2]);
    }

    #[test]
    fn more_workers_than_groups_leaves_spare_workers_idle_but_consistent() {
        let n = 8;
        let schedule = diagonal_block_schedule(MatrixId::synthetic(0), n, 4);
        assert_eq!(schedule.num_groups(), 2);
        let shared = SharedSlowMemory::new();
        shared.insert_dense(Matrix::<f64>::identity(n));
        let runs = Engine::execute_parallel(
            &shared,
            &schedule,
            8,
            MachineConfig::with_capacity(20),
            "main",
        )
        .unwrap();
        assert_eq!(runs.len(), 8);
        let busy: usize = runs.iter().filter(|r| !r.groups.is_empty()).count();
        assert!(busy <= 2, "only two groups exist");
        for run in &runs {
            if run.groups.is_empty() {
                assert_eq!(run.stats, IoStats::new(), "idle workers count nothing");
            }
        }
        assert_eq!(
            WorkerRun::merged_stats(&runs),
            Engine::dry_run(&schedule, "main")
        );
    }

    #[test]
    fn an_empty_group_and_an_empty_schedule_execute_trivially() {
        let shared = SharedSlowMemory::<f64>::new();
        shared.insert_dense(Matrix::zeros(2, 2));

        // A hand-built schedule holding one empty group (the builder drops
        // empty groups, so construct it directly).
        let schedule = Schedule {
            groups: vec![TaskGroup::default()],
        };
        let runs =
            Engine::execute_parallel(&shared, &schedule, 4, MachineConfig::unlimited(), "main")
                .unwrap();
        let done: usize = runs.iter().map(|r| r.groups.len()).sum();
        assert_eq!(done, 1, "the empty group still counts as processed");
        assert_eq!(WorkerRun::merged_stats(&runs), IoStats::new());

        let empty = Schedule::<f64>::default();
        let runs = Engine::execute_parallel(&shared, &empty, 3, MachineConfig::unlimited(), "main")
            .unwrap();
        assert!(runs.iter().all(|r| r.groups.is_empty()));
    }

    #[test]
    fn zero_workers_are_rejected_without_fabricated_indices() {
        let shared = SharedSlowMemory::<f64>::new();
        let err = Engine::execute_parallel(
            &shared,
            &Schedule::default(),
            0,
            MachineConfig::unlimited(),
            "main",
        )
        .unwrap_err();
        assert!(matches!(err.error, EngineError::InvalidArgument(_)));
        // Regression: the invalid-argument rejection used to claim worker 0
        // failed on group 0 — indices that never existed. No worker ran and
        // no group was attempted, and the error says so.
        assert_eq!(err.worker, None);
        assert_eq!(err.group, None);
        assert!(err.runs.is_empty());
        assert!(err.to_string().contains("rejected"), "{err}");
        assert!(!err.to_string().contains("worker 0"), "{err}");
    }

    #[test]
    fn failing_group_aborts_propagates_and_keeps_other_workers_consistent() {
        let n = 24;
        let a = Matrix::<f64>::from_fn(n, n, |i, j| (i * n + j + 1) as f64);
        let id = MatrixId::synthetic(0);
        let mut schedule = diagonal_block_schedule(id, n, 4);
        // Corrupt group 3: its compute references a buffer that is never
        // loaded, so replay fails mid-group with two buffers resident.
        let poisoned_buf = 9999;
        schedule.groups[3].steps.insert(
            2,
            Step::Compute(ComputeOp::Ger {
                alpha: 1.0,
                x: BufSlice::whole(poisoned_buf, 4),
                y: BufSlice::whole(poisoned_buf, 4),
                dst: poisoned_buf,
            }),
        );

        let shared = SharedSlowMemory::new();
        let sid = shared.insert_dense(a.clone());
        let err = Engine::execute_parallel(
            &shared,
            &schedule,
            2,
            MachineConfig::with_capacity(20),
            "main",
        )
        .unwrap_err();

        // The error names the failing group and propagates the cause.
        assert_eq!(err.group, Some(3));
        assert!(matches!(err.error, EngineError::InvalidSchedule(_)));
        assert!(err.to_string().contains("task group 3"), "{err}");
        assert!(std::error::Error::source(&err).is_some());
        assert_eq!(err.runs.len(), 2);

        // Completed groups are fully accounted on their workers: each run's
        // stats equal the dry run of its completed groups, plus — for the
        // failing worker only — the partial loads of group 3.
        let failing_worker = err.worker.expect("a worker replayed the poisoned group");
        let failing = &err.runs[failing_worker];
        assert!(!failing.groups.contains(&3));
        let mut expected = dry_run_of_groups(&schedule, &failing.groups);
        // group 3 loaded its 4x4 block and its 4-element probe before dying
        expected.record_load(16, "main");
        expected.record_load(4, "main");
        expected.observe_resident(20);
        assert_eq!(failing.stats.volume, expected.volume);
        assert_eq!(failing.stats.load_events, expected.load_events);
        for (w, run) in err.runs.iter().enumerate() {
            if w != failing_worker {
                assert_eq!(
                    run.stats,
                    dry_run_of_groups(&schedule, &run.groups),
                    "worker {w}"
                );
            }
        }

        // The failed group's buffers were released: no leases are left, the
        // matrix can be taken out, and only completed groups touched it.
        let got = shared.take_dense(sid).unwrap();
        let done: Vec<usize> = err.runs.iter().flat_map(|r| r.groups.clone()).collect();
        for g in 0..schedule.num_groups() {
            let i0 = g * 4;
            let untouched = a[(i0, i0)];
            if done.contains(&g) {
                assert_ne!(got[(i0, i0)], untouched, "group {g} should have landed");
            } else {
                assert_eq!(got[(i0, i0)], untouched, "group {g} must not have landed");
            }
        }
    }

    #[test]
    fn parallel_groups_must_be_self_contained() {
        // A buffer loaded in one group and stored in the next is legal in
        // serial mode but rejected by the parallel path.
        let id = MatrixId::synthetic(0);
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let buf = b.load(id, Region::rect(0, 0, 2, 2));
        b.begin_group();
        b.store(buf);
        let schedule = b.finish();

        let shared = SharedSlowMemory::new();
        shared.insert_dense(Matrix::<f64>::zeros(4, 4));
        let err =
            Engine::execute_parallel(&shared, &schedule, 1, MachineConfig::unlimited(), "main")
                .unwrap_err();
        assert!(matches!(err.error, EngineError::InvalidSchedule(_)));
        assert!(err.to_string().contains("left resident"), "{err}");

        // The serial path still accepts it.
        let mut machine = OocMachine::<f64>::with_capacity(16);
        let mid = machine.insert_dense(Matrix::zeros(4, 4));
        let schedule2 = {
            let mut b = ScheduleBuilder::<f64>::new();
            b.begin_group();
            let buf = b.load(mid, Region::rect(0, 0, 2, 2));
            b.begin_group();
            b.store(buf);
            b.finish()
        };
        Engine::execute(&mut machine, &schedule2).unwrap();
    }

    #[test]
    fn prefetching_execute_matches_its_dry_run_and_trace() {
        let n = 24;
        let a = Matrix::<f64>::from_fn(n, n, |i, j| ((i * n + j) % 11) as f64 - 5.0);
        let schedule = diagonal_block_schedule(MatrixId::synthetic(0), n, 4);

        // Reference: plain replay.
        let mut plain = OocMachine::new(MachineConfig::with_capacity(40).record_trace(true));
        let plain_id = plain.insert_dense(a.clone());
        Engine::execute(&mut plain, &schedule).unwrap();
        let expected = plain.take_dense(plain_id).unwrap();

        for lookahead in [1usize, 2, 5] {
            let config = EngineConfig::with_lookahead(lookahead);
            let mut machine = OocMachine::new(MachineConfig::with_capacity(40).record_trace(true));
            let id = machine.insert_dense(a.clone());
            Engine::execute_with(&mut machine, &schedule, &config).unwrap();

            // execute == dry-run == trace, at the same config and capacity.
            let dry = Engine::dry_run_with(&schedule, "main", &config, Some(40));
            assert_eq!(machine.stats(), &dry, "lookahead {lookahead}");
            let synthesized = Engine::trace_with(&schedule, "main", &config, Some(40));
            assert_eq!(
                machine.trace().unwrap(),
                &synthesized,
                "lookahead {lookahead}"
            );

            // Overlap is real, volumes and phases unchanged, capacity held.
            let plain_dry = Engine::dry_run(&schedule, "main");
            assert!(dry.prefetched_elements > 0, "lookahead {lookahead}");
            assert_eq!(dry.volume, plain_dry.volume);
            assert_eq!(dry.load_events, plain_dry.load_events);
            assert_eq!(dry.per_phase, plain_dry.per_phase);
            assert!(dry.peak_resident <= 40);
            assert!(dry.peak_resident >= plain_dry.peak_resident);

            // The computed result is bitwise-equal to the plain replay.
            assert_eq!(machine.take_dense(id).unwrap(), expected);
        }

        // Lookahead 0 is exactly the plain mode.
        assert_eq!(
            Engine::dry_run_with(&schedule, "main", &EngineConfig::default(), Some(40)),
            Engine::dry_run(&schedule, "main")
        );
    }

    #[test]
    fn prefetch_respects_a_tight_capacity() {
        // Capacity exactly one group's footprint: no slack, no prefetch,
        // and the replay still succeeds.
        let schedule = diagonal_block_schedule(MatrixId::synthetic(0), 12, 4);
        let dry = Engine::dry_run(&schedule, "main");
        let cap = dry.peak_resident;
        let config = EngineConfig::with_lookahead(1);
        let mut machine = OocMachine::new(MachineConfig::with_capacity(cap));
        machine.insert_dense(Matrix::<f64>::identity(12));
        Engine::execute_with(&mut machine, &schedule, &config).unwrap();
        assert_eq!(machine.stats().prefetched_elements, 0);
        assert_eq!(machine.stats().peak_resident, dry.peak_resident);
    }

    #[test]
    fn prefetching_phase_attribution_is_unchanged() {
        let id = MatrixId::synthetic(0);
        let mut b = ScheduleBuilder::<f64>::new();
        b.set_phase("alpha");
        b.begin_group();
        let x = b.load(id, Region::rect(0, 0, 2, 2));
        b.discard(x);
        b.set_phase("beta");
        b.begin_group();
        let y = b.load(id, Region::rect(4, 4, 2, 2));
        b.discard(y);
        let schedule = b.finish();
        let config = EngineConfig::with_lookahead(1);
        let stats = Engine::dry_run_with(&schedule, "main", &config, Some(8));
        // Group 1's load was prefetched at group 0's boundary but stays
        // attributed to its consuming phase.
        assert_eq!(stats.prefetched_elements, 4);
        assert_eq!(stats.phase("alpha").loads, 4);
        assert_eq!(stats.phase("beta").loads, 4);
        assert_eq!(stats.peak_resident, 8);
    }

    #[test]
    fn parallel_prefetch_keeps_results_volumes_and_capacity() {
        let n = 24;
        let a = Matrix::<f64>::from_fn(n, n, |i, j| ((i * 3 + j * 7) % 9) as f64 - 4.0);
        let schedule = diagonal_block_schedule(MatrixId::synthetic(0), n, 4);
        let dry = Engine::dry_run(&schedule, "main");

        // Serial reference.
        let mut machine = OocMachine::new(MachineConfig::with_capacity(40));
        let serial_id = machine.insert_dense(a.clone());
        Engine::execute(&mut machine, &schedule).unwrap();
        let expected = machine.take_dense(serial_id).unwrap();

        for workers in [1usize, 2, 4] {
            for lookahead in [1usize, 2] {
                let shared = SharedSlowMemory::new();
                let id = shared.insert_dense(a.clone());
                let runs = Engine::execute_parallel_with(
                    &shared,
                    &schedule,
                    workers,
                    MachineConfig::with_capacity(40),
                    "main",
                    &EngineConfig::with_lookahead(lookahead),
                )
                .unwrap();
                let ctx = format!("P={workers} L={lookahead}");

                let merged = WorkerRun::merged_stats(&runs);
                assert_eq!(merged.volume, dry.volume, "{ctx}");
                assert_eq!(merged.load_events, dry.load_events, "{ctx}");
                assert_eq!(merged.flops, dry.flops, "{ctx}");
                for (w, run) in runs.iter().enumerate() {
                    assert!(run.stats.peak_resident <= 40, "{ctx} worker {w}");
                }
                // A single pipelined worker genuinely overlaps.
                if workers == 1 {
                    assert!(merged.prefetched_elements > 0, "{ctx}");
                }
                assert!(WorkerRun::aggregate_peak(&runs) >= merged.peak_resident);

                let got = shared.take_dense(id).unwrap();
                assert_eq!(got, expected, "{ctx}");
            }
        }
    }

    #[test]
    fn capacity_violations_surface_as_memory_errors() {
        let mut machine = OocMachine::<f64>::with_capacity(4);
        let id = machine.insert_dense(Matrix::zeros(4, 4));
        let mut b = ScheduleBuilder::<f64>::new();
        let x = b.load(id, Region::rect(0, 0, 3, 3));
        b.discard(x);
        let err = Engine::execute(&mut machine, &b.finish()).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Memory(MemoryError::CapacityExceeded { .. })
        ));
        assert!(std::error::Error::source(&err).is_some());
    }
}
