//! The generic out-of-core execution engine.
//!
//! [`Engine`] replays a [`Schedule`] built from the IR of [`crate::ir`] in
//! three modes:
//!
//! * [`Engine::execute`] — runs the schedule for real against an
//!   [`OocMachine`]: every load/store is a counted, capacity-checked machine
//!   transfer and every compute step runs its block kernel on the resident
//!   buffers. All eight out-of-core algorithms of the workspace execute
//!   through this single function.
//! * [`Engine::dry_run`] — replays only the accounting: loads, stores,
//!   events, flops, per-phase attribution and the peak-resident watermark,
//!   without a machine or data. A dry run of a schedule produces exactly the
//!   [`IoStats`] an execution of the same schedule produces.
//! * [`Engine::trace`] — synthesizes the [`Trace`] event stream the machine
//!   would record, again without executing anything; used for schedule
//!   inspection and bound verification.
//!
//! The invariant tying the modes together (checked by the cross-crate
//! equivalence tests): for any schedule `s` and machine `m`,
//! `execute(&mut m, &s)` leaves `m.stats()` equal to `dry_run(&s)` and
//! `m.trace()` equal to `trace(&s)`.

use crate::ir::{BufId, BufSlice, ComputeOp, Schedule, Step};
use std::collections::BTreeMap;
use std::fmt;
use symla_matrix::kernels::views::{
    cholesky_packed_view_in_place, ger_view, lu_view_in_place, spr_lower_view,
    triangle_pairs_update,
};
use symla_matrix::{MatrixError, Scalar};
use symla_memory::{Direction, FastBuf, IoStats, MemoryError, OocMachine, Trace, TraceEvent};

/// Errors raised while replaying a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// An error from the memory machine (capacity exceeded, bad region, ...).
    Memory(MemoryError),
    /// A numerical error from a block kernel (non-SPD pivot, ...).
    Matrix(MatrixError),
    /// The schedule is malformed (e.g. a step references a buffer that was
    /// never loaded or was already released).
    InvalidSchedule(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Memory(e) => write!(f, "memory model error: {e}"),
            EngineError::Matrix(e) => write!(f, "kernel error: {e}"),
            EngineError::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Memory(e) => Some(e),
            EngineError::Matrix(e) => Some(e),
            EngineError::InvalidSchedule(_) => None,
        }
    }
}

impl From<MemoryError> for EngineError {
    fn from(e: MemoryError) -> Self {
        EngineError::Memory(e)
    }
}

impl From<MatrixError> for EngineError {
    fn from(e: MatrixError) -> Self {
        EngineError::Matrix(e)
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

/// The schedule replayer. See the module docs for the three modes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Engine;

fn missing(buf: BufId) -> EngineError {
    EngineError::InvalidSchedule(format!("step references unknown or released buffer {buf}"))
}

fn short_segment(op: &str, got: usize, needed: usize) -> EngineError {
    EngineError::InvalidSchedule(format!(
        "{op}: segment buffer has {got} element(s), step needs {needed} \
         (column/row index out of range for the destination tile)"
    ))
}

fn slice_of<'a, T: Scalar>(bufs: &'a BTreeMap<BufId, FastBuf<T>>, s: &BufSlice) -> Result<&'a [T]> {
    let buf = bufs.get(&s.buf).ok_or_else(|| missing(s.buf))?;
    buf.as_slice().get(s.start..s.start + s.len).ok_or_else(|| {
        EngineError::InvalidSchedule(format!(
            "slice {}..+{} exceeds buffer {} of {} elements",
            s.start,
            s.len,
            s.buf,
            buf.len()
        ))
    })
}

impl Engine {
    /// Replays `schedule` against `machine`, running every block kernel on
    /// real data. Transfers are counted and capacity-checked by the machine
    /// exactly as the hand-rolled executors counted them.
    ///
    /// On error, buffers the failed schedule still held are released back to
    /// the machine (without store traffic), so its residency accounting and
    /// leases stay consistent and the matrices can still be taken out.
    pub fn execute<T: Scalar>(machine: &mut OocMachine<T>, schedule: &Schedule<T>) -> Result<()> {
        let mut bufs: BTreeMap<BufId, FastBuf<T>> = BTreeMap::new();
        let outcome = Self::replay(machine, schedule, &mut bufs);
        for (_, buf) in std::mem::take(&mut bufs) {
            // Release leaked buffers even when the replay failed; a discard
            // can only fail for foreign buffers, which cannot be in `bufs`.
            let _ = machine.discard(buf);
        }
        outcome
    }

    fn replay<T: Scalar>(
        machine: &mut OocMachine<T>,
        schedule: &Schedule<T>,
        bufs: &mut BTreeMap<BufId, FastBuf<T>>,
    ) -> Result<()> {
        for group in &schedule.groups {
            if let Some(phase) = &group.phase {
                machine.set_phase(phase);
            }
            for step in &group.steps {
                match step {
                    Step::Load {
                        matrix,
                        region,
                        dst,
                    } => {
                        let buf = machine.load(*matrix, region.clone())?;
                        bufs.insert(*dst, buf);
                    }
                    Step::Alloc {
                        matrix,
                        region,
                        dst,
                    } => {
                        let buf = machine.allocate_zeroed(*matrix, region.clone())?;
                        bufs.insert(*dst, buf);
                    }
                    Step::Flops(flops) => machine.record_flops(*flops),
                    Step::Store { buf } => {
                        let b = bufs.remove(buf).ok_or_else(|| missing(*buf))?;
                        machine.store(b)?;
                    }
                    Step::Discard { buf } => {
                        let b = bufs.remove(buf).ok_or_else(|| missing(*buf))?;
                        machine.discard(b)?;
                    }
                    Step::Compute(op) => Self::compute(bufs, op)?,
                }
            }
        }
        if !bufs.is_empty() {
            return Err(EngineError::InvalidSchedule(format!(
                "{} buffer(s) left resident at end of schedule",
                bufs.len()
            )));
        }
        Ok(())
    }

    /// Runs one compute step on the resident buffers.
    ///
    /// The destination buffer is taken out of the table for the duration of
    /// the kernel so operand slices (which may alias each other, but never
    /// the destination) can be borrowed immutably.
    fn compute<T: Scalar>(bufs: &mut BTreeMap<BufId, FastBuf<T>>, op: &ComputeOp<T>) -> Result<()> {
        let dst_id = match op {
            ComputeOp::Ger { dst, .. }
            | ComputeOp::SprLower { dst, .. }
            | ComputeOp::TrianglePairs { dst, .. }
            | ComputeOp::CholeskyInPlace { dst, .. }
            | ComputeOp::LuInPlace { dst, .. }
            | ComputeOp::TrsmRightStep { dst, .. }
            | ComputeOp::LuColSolveStep { dst, .. }
            | ComputeOp::LuRowElimStep { dst, .. } => *dst,
        };
        let mut dst = bufs.remove(&dst_id).ok_or_else(|| missing(dst_id))?;
        let outcome = Self::compute_on(bufs, op, &mut dst);
        bufs.insert(dst_id, dst);
        outcome
    }

    fn compute_on<T: Scalar>(
        bufs: &BTreeMap<BufId, FastBuf<T>>,
        op: &ComputeOp<T>,
        dst: &mut FastBuf<T>,
    ) -> Result<()> {
        match op {
            ComputeOp::Ger { alpha, x, y, .. } => {
                let xs = slice_of(bufs, x)?;
                let ys = slice_of(bufs, y)?;
                let mut view = dst.rect_view_mut().map_err(EngineError::Memory)?;
                ger_view(*alpha, xs, ys, &mut view)?;
            }
            ComputeOp::SprLower { alpha, x, .. } => {
                let xs = slice_of(bufs, x)?;
                let mut view = dst.packed_view_mut().map_err(EngineError::Memory)?;
                spr_lower_view(*alpha, xs, &mut view)?;
            }
            ComputeOp::TrianglePairs { alpha, x, .. } => {
                let xs = slice_of(bufs, x)?;
                triangle_pairs_update(*alpha, xs, dst.as_mut_slice())?;
            }
            ComputeOp::CholeskyInPlace { pivot_base, .. } => {
                let mut view = dst.packed_view_mut().map_err(EngineError::Memory)?;
                cholesky_packed_view_in_place(&mut view).map_err(|e| match e {
                    MatrixError::NotPositiveDefinite { pivot, value } => {
                        EngineError::Matrix(MatrixError::NotPositiveDefinite {
                            pivot: pivot + pivot_base,
                            value,
                        })
                    }
                    other => EngineError::Matrix(other),
                })?;
            }
            ComputeOp::LuInPlace { pivot_base, .. } => {
                let mut view = dst.rect_view_mut().map_err(EngineError::Memory)?;
                lu_view_in_place(&mut view).map_err(|e| match e {
                    MatrixError::SingularPivot { pivot } => {
                        EngineError::Matrix(MatrixError::SingularPivot {
                            pivot: pivot + pivot_base,
                        })
                    }
                    other => EngineError::Matrix(other),
                })?;
            }
            ComputeOp::TrsmRightStep {
                seg, col, pivot, ..
            } => {
                let seg = bufs.get(seg).ok_or_else(|| missing(*seg))?.as_slice();
                let mut xv = dst.rect_view_mut().map_err(EngineError::Memory)?;
                let (rc, cc) = (xv.rows(), xv.cols());
                let kk = *col;
                if kk >= cc || seg.len() < cc - kk {
                    return Err(short_segment(
                        "TrsmRightStep",
                        seg.len(),
                        cc.saturating_sub(kk),
                    ));
                }
                let diag = seg[0];
                if diag == T::ZERO || !diag.is_finite_scalar() {
                    return Err(EngineError::Matrix(MatrixError::SingularPivot {
                        pivot: *pivot,
                    }));
                }
                let inv = diag.recip();
                for r in 0..rc {
                    let v = xv.get(r, kk) * inv;
                    xv.set(r, kk, v);
                }
                for j in (kk + 1)..cc {
                    let ljk = seg[j - kk];
                    if ljk == T::ZERO {
                        continue;
                    }
                    for r in 0..rc {
                        let v = xv.get(r, j) - xv.get(r, kk) * ljk;
                        xv.set(r, j, v);
                    }
                }
            }
            ComputeOp::LuColSolveStep {
                seg, col, pivot, ..
            } => {
                let seg = bufs.get(seg).ok_or_else(|| missing(*seg))?.as_slice();
                let kk = *col;
                let mut tv = dst.rect_view_mut().map_err(EngineError::Memory)?;
                if kk >= tv.cols() || seg.len() < kk + 1 {
                    return Err(short_segment("LuColSolveStep", seg.len(), kk + 1));
                }
                let diag = seg[kk];
                if diag == T::ZERO || !diag.is_finite_scalar() {
                    return Err(EngineError::Matrix(MatrixError::SingularPivot {
                        pivot: *pivot,
                    }));
                }
                let inv = diag.recip();
                let ic = tv.rows();
                for (q, &uqk) in seg.iter().enumerate().take(kk) {
                    if uqk == T::ZERO {
                        continue;
                    }
                    for r in 0..ic {
                        let v = tv.get(r, kk) - tv.get(r, q) * uqk;
                        tv.set(r, kk, v);
                    }
                }
                for r in 0..ic {
                    let v = tv.get(r, kk) * inv;
                    tv.set(r, kk, v);
                }
            }
            ComputeOp::LuRowElimStep { seg, row, .. } => {
                let seg = bufs.get(seg).ok_or_else(|| missing(*seg))?.as_slice();
                let kk = *row;
                let mut tv = dst.rect_view_mut().map_err(EngineError::Memory)?;
                if kk >= tv.rows() || seg.len() > tv.rows() - kk - 1 {
                    return Err(short_segment(
                        "LuRowElimStep",
                        seg.len(),
                        tv.rows().saturating_sub(kk + 1),
                    ));
                }
                let jc = tv.cols();
                for (off, &lik) in seg.iter().enumerate() {
                    if lik == T::ZERO {
                        continue;
                    }
                    let i = kk + 1 + off;
                    for c in 0..jc {
                        let v = tv.get(i, c) - lik * tv.get(kk, c);
                        tv.set(i, c, v);
                    }
                }
            }
        }
        Ok(())
    }

    /// Replays only the accounting of `schedule`: the returned [`IoStats`]
    /// equal what [`Engine::execute`] would leave in the machine's counters
    /// (same loads, stores, events, flops, peak residency and per-phase
    /// attribution), computed without data or capacity limits.
    ///
    /// Transfers of groups with no phase label are attributed to
    /// `default_phase` — pass the machine's current phase (usually
    /// `"main"`).
    pub fn dry_run<T: Scalar>(schedule: &Schedule<T>, default_phase: &str) -> IoStats {
        let mut stats = IoStats::new();
        let mut sizes: BTreeMap<BufId, usize> = BTreeMap::new();
        let mut resident = 0usize;
        let mut phase = default_phase.to_string();
        for group in &schedule.groups {
            if let Some(p) = &group.phase {
                phase = p.clone();
            }
            for step in &group.steps {
                match step {
                    Step::Load { region, dst, .. } => {
                        let elements = region.len();
                        resident += elements;
                        stats.observe_resident(resident);
                        stats.record_load(elements, &phase);
                        sizes.insert(*dst, elements);
                    }
                    Step::Alloc { region, dst, .. } => {
                        resident += region.len();
                        stats.observe_resident(resident);
                        sizes.insert(*dst, region.len());
                    }
                    Step::Flops(flops) => stats.record_flops(*flops),
                    Step::Store { buf } => {
                        let elements = sizes.remove(buf).unwrap_or(0);
                        resident -= elements;
                        stats.record_store(elements, &phase);
                    }
                    Step::Discard { buf } => {
                        resident -= sizes.remove(buf).unwrap_or(0);
                    }
                    Step::Compute(_) => {}
                }
            }
        }
        stats
    }

    /// Synthesizes the transfer trace of `schedule`: the returned [`Trace`]
    /// equals what a machine with trace recording enabled would record while
    /// executing the schedule.
    pub fn trace<T: Scalar>(schedule: &Schedule<T>, default_phase: &str) -> Trace {
        let mut trace = Trace::new();
        let mut meta: BTreeMap<BufId, (u64, symla_memory::Region)> = BTreeMap::new();
        let mut resident = 0usize;
        let mut phase = default_phase.to_string();
        for group in &schedule.groups {
            if let Some(p) = &group.phase {
                phase = p.clone();
            }
            for step in &group.steps {
                match step {
                    Step::Load {
                        matrix,
                        region,
                        dst,
                    } => {
                        resident += region.len();
                        trace.push(TraceEvent {
                            direction: Direction::Load,
                            matrix: matrix.raw(),
                            region: region.clone(),
                            phase: phase.clone(),
                            resident_after: resident,
                        });
                        meta.insert(*dst, (matrix.raw(), region.clone()));
                    }
                    Step::Alloc {
                        matrix,
                        region,
                        dst,
                    } => {
                        resident += region.len();
                        meta.insert(*dst, (matrix.raw(), region.clone()));
                    }
                    Step::Store { buf } => {
                        if let Some((matrix, region)) = meta.remove(buf) {
                            resident -= region.len();
                            trace.push(TraceEvent {
                                direction: Direction::Store,
                                matrix,
                                region,
                                phase: phase.clone(),
                                resident_after: resident,
                            });
                        }
                    }
                    Step::Discard { buf } => {
                        if let Some((_, region)) = meta.remove(buf) {
                            resident -= region.len();
                        }
                    }
                    Step::Flops(_) | Step::Compute(_) => {}
                }
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ScheduleBuilder;
    use symla_matrix::kernels::FlopCount;
    use symla_matrix::Matrix;
    use symla_memory::{MachineConfig, MatrixId, Region};

    /// A tiny rank-1 update schedule used by the mode-equivalence tests.
    fn rank1_schedule(id: MatrixId) -> Schedule<f64> {
        let mut b = ScheduleBuilder::new();
        b.begin_group();
        let c = b.load(id, Region::rect(0, 0, 3, 3));
        let x = b.load(id, Region::col_segment(3, 0, 3));
        b.compute(ComputeOp::Ger {
            alpha: 2.0,
            x: BufSlice::whole(x, 3),
            y: BufSlice::whole(x, 3),
            dst: c,
        });
        b.flops(FlopCount::new(9, 9));
        b.discard(x);
        b.store(c);
        b.finish()
    }

    #[test]
    fn execute_dry_run_and_trace_agree() {
        let a = Matrix::<f64>::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let mut machine = OocMachine::new(MachineConfig::with_capacity(16).record_trace(true));
        let id = machine.insert_dense(a.clone());
        let schedule = rank1_schedule(id);

        Engine::execute(&mut machine, &schedule).unwrap();
        let stats = machine.stats().clone();
        assert_eq!(stats, Engine::dry_run(&schedule, "main"));
        assert_eq!(machine.trace().unwrap(), &Engine::trace(&schedule, "main"));
        assert_eq!(stats.volume.loads, 12);
        assert_eq!(stats.volume.stores, 9);
        assert_eq!(stats.peak_resident, 12);
        assert_eq!(stats.flops.mults, 9);

        // the kernel really ran: C[0,0] += 2 * A[0,3]^2
        let out = machine.take_dense(id).unwrap();
        assert_eq!(out[(0, 0)], a[(0, 0)] + 2.0 * a[(0, 3)] * a[(0, 3)]);
    }

    #[test]
    fn phases_are_attributed_per_group() {
        let mut b = ScheduleBuilder::<f64>::new();
        let id = MatrixId::synthetic(0);
        b.set_phase("alpha");
        b.begin_group();
        let x = b.load(id, Region::rect(0, 0, 2, 2));
        b.discard(x);
        b.set_phase("beta");
        b.begin_group();
        let y = b.load(id, Region::rect(0, 0, 5, 1));
        b.store(y);
        let schedule = b.finish();

        let stats = Engine::dry_run(&schedule, "main");
        assert_eq!(stats.phase("alpha").loads, 4);
        assert_eq!(stats.phase("beta").loads, 5);
        assert_eq!(stats.phase("beta").stores, 5);
        assert_eq!(stats.phase("main").total(), 0);
        assert_eq!(stats.peak_resident, 5);
    }

    #[test]
    fn unphased_groups_inherit_the_default_phase() {
        let mut b = ScheduleBuilder::<f64>::new();
        let id = MatrixId::synthetic(0);
        let x = b.load(id, Region::rect(0, 0, 2, 3));
        b.store(x);
        let schedule = b.finish();
        let stats = Engine::dry_run(&schedule, "lbc:trailing");
        assert_eq!(stats.phase("lbc:trailing").loads, 6);
        let trace = Engine::trace(&schedule, "lbc:trailing");
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.events()[0].phase, "lbc:trailing");
    }

    #[test]
    fn execute_rejects_malformed_schedules() {
        let mut machine = OocMachine::<f64>::with_capacity(100);
        let id = machine.insert_dense(Matrix::zeros(4, 4));

        // store of a never-loaded buffer
        let mut b = ScheduleBuilder::<f64>::new();
        b.store(99);
        let err = Engine::execute(&mut machine, &b.finish()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidSchedule(_)));
        assert!(err.to_string().contains("99"));

        // buffer left resident at the end
        let mut b = ScheduleBuilder::<f64>::new();
        b.load(id, Region::rect(0, 0, 1, 1));
        let err = Engine::execute(&mut machine, &b.finish()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidSchedule(_)));
    }

    #[test]
    fn failed_execution_releases_resident_buffers() {
        // A schedule that errors mid-flight (second load exceeds capacity
        // while the first buffer is resident) must leave the machine's
        // accounting clean: nothing resident, no leases outstanding.
        let mut machine = OocMachine::<f64>::with_capacity(10);
        let id = machine.insert_dense(Matrix::zeros(4, 4));
        let mut b = ScheduleBuilder::<f64>::new();
        let x = b.load(id, Region::rect(0, 0, 3, 3));
        let y = b.load(id, Region::rect(0, 0, 2, 2)); // 9 + 4 > 10
        b.discard(y);
        b.discard(x);
        let err = Engine::execute(&mut machine, &b.finish()).unwrap_err();
        assert!(matches!(err, EngineError::Memory(_)));
        assert_eq!(machine.resident(), 0);
        assert!(machine.take_dense(id).is_ok(), "no leases left behind");
    }

    #[test]
    fn short_solve_segments_are_rejected_not_panics() {
        let mut machine = OocMachine::<f64>::with_capacity(100);
        let id = machine.insert_dense(Matrix::zeros(6, 6));
        let mut b = ScheduleBuilder::<f64>::new();
        let tile = b.load(id, Region::rect(0, 0, 3, 3));
        let seg = b.load(id, Region::rect(0, 3, 1, 1)); // 1 element, needs 3
        b.compute(ComputeOp::TrsmRightStep {
            seg,
            dst: tile,
            col: 0,
            pivot: 0,
        });
        b.discard(seg);
        b.discard(tile);
        let err = Engine::execute(&mut machine, &b.finish()).unwrap_err();
        assert!(matches!(err, EngineError::InvalidSchedule(_)), "{err}");
        assert_eq!(machine.resident(), 0);
    }

    #[test]
    fn capacity_violations_surface_as_memory_errors() {
        let mut machine = OocMachine::<f64>::with_capacity(4);
        let id = machine.insert_dense(Matrix::zeros(4, 4));
        let mut b = ScheduleBuilder::<f64>::new();
        let x = b.load(id, Region::rect(0, 0, 3, 3));
        b.discard(x);
        let err = Engine::execute(&mut machine, &b.finish()).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Memory(MemoryError::CapacityExceeded { .. })
        ));
        assert!(std::error::Error::source(&err).is_some());
    }
}
