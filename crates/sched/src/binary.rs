//! Binary serialization of schedules and prefetch plans.
//!
//! The text form ([`Schedule::dump`] / [`Schedule::parse`]) is the
//! human-auditable serialization; this module is its compact binary twin,
//! specified against it: `Schedule::from_bytes(&s.to_bytes()) == s` for
//! exactly the schedules whose text round-trip holds, and both forms share
//! one version story: a schedule encodes with the lowest version able to
//! express it ([`Schedule::text_version`] — 1 for plain two-level
//! schedules, byte-identical to what older builds wrote; 2 when leveled
//! transfers are present), and decoders accept everything up to
//! [`FORMAT_VERSION`].
//!
//! The encoding is a tag-length-value layout:
//!
//! ```text
//! magic   b"SYPB"                      4 bytes
//! version u16 LE  (≤ FORMAT_VERSION)   2 bytes
//! scalar  u8      (size_of::<T>())     1 byte
//! flags   u8      (bit 0: prefetch plan present)
//! [tag 0x01] [u64 LE length] schedule payload
//! [tag 0x02] [u64 LE length] prefetch-plan payload   (only if flag set)
//! ```
//!
//! Within the schedule payload every step is one tag byte plus fixed-width
//! little-endian operands (`u64` for indices, IEEE-754 `f64` bits for
//! scalars — the same widening the text form uses, lossless for `f32` and
//! `f64`). Decoding is total: every read is bounds-checked and every
//! malformed input returns a typed [`BinaryError`]; no input can panic the
//! decoder. This is what the plan cache (`symla-plancache`) stores on disk.
//!
//! ```
//! use symla_memory::{MatrixId, Region};
//! use symla_sched::{Schedule, ScheduleBuilder};
//!
//! let mut b = ScheduleBuilder::<f64>::new();
//! let x = b.load(MatrixId::synthetic(0), Region::rect(0, 0, 2, 2));
//! b.store(x);
//! let schedule = b.finish();
//! let bytes = schedule.to_bytes();
//! assert_eq!(Schedule::<f64>::from_bytes(&bytes).unwrap(), schedule);
//! ```

use crate::ir::{BufSlice, ComputeOp, Schedule, Step, TaskGroup};
use crate::prefetch::{PrefetchIssue, PrefetchPlan};
use std::fmt;
use symla_matrix::kernels::FlopCount;
use symla_matrix::Scalar;
use symla_memory::{Level, MatrixId, Region};

/// Newest version of the schedule serialization formats (text **and**
/// binary) this build understands. Version 2 added leveled transfers
/// (memory-hierarchy [`Level`] annotations on
/// load/store steps); encoders still emit version 1 for schedules without
/// them, and decoders reject anything newer than this constant.
pub const FORMAT_VERSION: u16 = 2;

/// Magic bytes opening every binary-serialized plan.
pub const MAGIC: [u8; 4] = *b"SYPB";

const SECTION_SCHEDULE: u8 = 0x01;
const SECTION_PREFETCH: u8 = 0x02;

const FLAG_PREFETCH: u8 = 0b0000_0001;

/// Typed decoding error: every way a byte buffer can fail to be a plan.
///
/// Offsets are byte positions into the input, for debugging corrupt cache
/// files. Decoding never panics; it returns one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// The buffer ended before a read of `needed` bytes at `offset`.
    Truncated {
        /// Byte position of the read.
        offset: usize,
        /// Bytes the read required.
        needed: usize,
    },
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The header carries a version newer than [`FORMAT_VERSION`].
    UnsupportedVersion(u16),
    /// The plan was encoded for a scalar of a different width.
    ScalarWidthMismatch {
        /// Width this decoder's scalar type has.
        expected: u8,
        /// Width recorded in the header.
        found: u8,
    },
    /// Structurally invalid content (unknown tag, bad UTF-8, length
    /// mismatch, trailing bytes, ...).
    Corrupt {
        /// Byte position the problem was detected at.
        offset: usize,
        /// Human-readable reason.
        message: String,
    },
}

impl fmt::Display for BinaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinaryError::Truncated { offset, needed } => {
                write!(
                    f,
                    "truncated plan: {needed} byte(s) missing at offset {offset}"
                )
            }
            BinaryError::BadMagic(found) => {
                write!(f, "bad magic {found:02x?} (expected {MAGIC:02x?})")
            }
            BinaryError::UnsupportedVersion(v) => write!(
                f,
                "plan format version {v} is newer than supported version {FORMAT_VERSION}"
            ),
            BinaryError::ScalarWidthMismatch { expected, found } => write!(
                f,
                "plan encoded for {found}-byte scalars, decoder expects {expected}-byte"
            ),
            BinaryError::Corrupt { offset, message } => {
                write!(f, "corrupt plan at offset {offset}: {message}")
            }
        }
    }
}

impl std::error::Error for BinaryError {}

type Result<T> = std::result::Result<T, BinaryError>;

// ---------------------------------------------------------------------------
// Stable hashing
// ---------------------------------------------------------------------------

/// A stable 64-bit streaming hasher (FNV-1a) for content addresses.
///
/// Unlike `std::hash::DefaultHasher`, the digest is identical across
/// processes, platforms and runs — it can name files on disk. The plan
/// cache derives its cache keys with this.
#[derive(Debug, Clone)]
pub struct StableHasher(u64);

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a `usize` widened to `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Absorbs a boolean as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write(&[u8::from(v)]);
    }

    /// Absorbs a string, length-prefixed so concatenations cannot collide.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write(s.as_bytes());
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot stable hash of a byte slice.
pub fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.write(bytes);
    h.finish()
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Self { out: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u128(&mut self, v: u128) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.out.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.out.extend_from_slice(s.as_bytes());
    }

    fn rows(&mut self, rows: &[usize]) {
        self.usize(rows.len());
        for &r in rows {
            self.usize(r);
        }
    }

    fn region(&mut self, region: &Region) {
        match region {
            Region::Rect {
                row0,
                col0,
                rows,
                cols,
            } => {
                self.u8(1);
                self.usize(*row0);
                self.usize(*col0);
                self.usize(*rows);
                self.usize(*cols);
            }
            Region::Rows { rows, col0, cols } => {
                self.u8(2);
                self.rows(rows);
                self.usize(*col0);
                self.usize(*cols);
            }
            Region::SymRect {
                row0,
                col0,
                rows,
                cols,
            } => {
                self.u8(3);
                self.usize(*row0);
                self.usize(*col0);
                self.usize(*rows);
                self.usize(*cols);
            }
            Region::SymLowerTriangle { start, size } => {
                self.u8(4);
                self.usize(*start);
                self.usize(*size);
            }
            Region::SymPairs { rows } => {
                self.u8(5);
                self.rows(rows);
            }
            Region::SymRows { rows, col0, cols } => {
                self.u8(6);
                self.rows(rows);
                self.usize(*col0);
                self.usize(*cols);
            }
        }
    }

    fn slice(&mut self, s: &BufSlice) {
        self.usize(s.buf);
        self.usize(s.start);
        self.usize(s.len);
    }

    fn compute<T: Scalar>(&mut self, op: &ComputeOp<T>) {
        match op {
            ComputeOp::Ger { alpha, x, y, dst } => {
                self.u8(1);
                self.f64(alpha.to_f64());
                self.slice(x);
                self.slice(y);
                self.usize(*dst);
            }
            ComputeOp::SprLower { alpha, x, dst } => {
                self.u8(2);
                self.f64(alpha.to_f64());
                self.slice(x);
                self.usize(*dst);
            }
            ComputeOp::TrianglePairs { alpha, x, dst } => {
                self.u8(3);
                self.f64(alpha.to_f64());
                self.slice(x);
                self.usize(*dst);
            }
            ComputeOp::CholeskyInPlace { dst, pivot_base } => {
                self.u8(4);
                self.usize(*dst);
                self.usize(*pivot_base);
            }
            ComputeOp::LuInPlace { dst, pivot_base } => {
                self.u8(5);
                self.usize(*dst);
                self.usize(*pivot_base);
            }
            ComputeOp::TrsmRightStep {
                seg,
                dst,
                col,
                pivot,
            } => {
                self.u8(6);
                self.usize(*seg);
                self.usize(*dst);
                self.usize(*col);
                self.usize(*pivot);
            }
            ComputeOp::LuColSolveStep {
                seg,
                dst,
                col,
                pivot,
            } => {
                self.u8(7);
                self.usize(*seg);
                self.usize(*dst);
                self.usize(*col);
                self.usize(*pivot);
            }
            ComputeOp::LuRowElimStep { seg, dst, row } => {
                self.u8(8);
                self.usize(*seg);
                self.usize(*dst);
                self.usize(*row);
            }
        }
    }

    fn step<T: Scalar>(&mut self, step: &Step<T>) {
        match step {
            // Default-level transfers keep the version-1 tags so two-level
            // schedules encode byte-identically to what older builds wrote.
            Step::Load {
                matrix,
                region,
                dst,
                level,
            } => {
                if level.is_default() {
                    self.u8(1);
                } else {
                    self.u8(7);
                }
                self.u64(matrix.raw());
                self.region(region);
                self.usize(*dst);
                if !level.is_default() {
                    self.u8(level.raw());
                }
            }
            Step::Alloc {
                matrix,
                region,
                dst,
            } => {
                self.u8(2);
                self.u64(matrix.raw());
                self.region(region);
                self.usize(*dst);
            }
            Step::Store { buf, level } => {
                if level.is_default() {
                    self.u8(3);
                } else {
                    self.u8(8);
                }
                self.usize(*buf);
                if !level.is_default() {
                    self.u8(level.raw());
                }
            }
            Step::Discard { buf } => {
                self.u8(4);
                self.usize(*buf);
            }
            Step::Flops(fl) => {
                self.u8(5);
                self.u128(fl.mults);
                self.u128(fl.adds);
            }
            Step::Compute(op) => {
                self.u8(6);
                self.compute(op);
            }
        }
    }
}

fn encode_schedule<T: Scalar>(schedule: &Schedule<T>) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(schedule.groups.len());
    for group in &schedule.groups {
        match &group.phase {
            Some(p) => {
                w.u8(1);
                w.str(p);
            }
            None => w.u8(0),
        }
        w.usize(group.steps.len());
        for step in &group.steps {
            w.step(step);
        }
    }
    w.out
}

fn encode_prefetch(plan: &PrefetchPlan) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(plan.issues.len());
    for boundary in &plan.issues {
        w.usize(boundary.len());
        for issue in boundary {
            w.usize(issue.group);
            w.usize(issue.step);
        }
    }
    w.u64(plan.planned_elements);
    w.u64(plan.planned_events);
    w.out
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(BinaryError::Truncated {
                offset: self.pos,
                needed: n,
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn corrupt(&self, message: impl Into<String>) -> BinaryError {
        BinaryError::Corrupt {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.corrupt(format!("index {v} exceeds usize")))
    }

    /// A `usize` used as an element count: additionally bounded by the
    /// remaining input so a corrupt length cannot trigger a huge
    /// pre-allocation (every counted element is at least one byte).
    fn count(&mut self) -> Result<usize> {
        let v = self.usize()?;
        if v > self.buf.len() - self.pos {
            return Err(BinaryError::Truncated {
                offset: self.pos,
                needed: v,
            });
        }
        Ok(v)
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.count()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| BinaryError::Corrupt {
            offset: self.pos - len,
            message: "phase label is not UTF-8".to_string(),
        })
    }

    fn rows(&mut self) -> Result<Vec<usize>> {
        let len = self.count()?;
        (0..len).map(|_| self.usize()).collect()
    }

    fn region(&mut self) -> Result<Region> {
        let tag = self.u8()?;
        Ok(match tag {
            1 => Region::Rect {
                row0: self.usize()?,
                col0: self.usize()?,
                rows: self.usize()?,
                cols: self.usize()?,
            },
            2 => Region::Rows {
                rows: self.rows()?,
                col0: self.usize()?,
                cols: self.usize()?,
            },
            3 => Region::SymRect {
                row0: self.usize()?,
                col0: self.usize()?,
                rows: self.usize()?,
                cols: self.usize()?,
            },
            4 => Region::SymLowerTriangle {
                start: self.usize()?,
                size: self.usize()?,
            },
            5 => Region::SymPairs { rows: self.rows()? },
            6 => Region::SymRows {
                rows: self.rows()?,
                col0: self.usize()?,
                cols: self.usize()?,
            },
            other => return Err(self.corrupt(format!("unknown region tag {other}"))),
        })
    }

    fn slice(&mut self) -> Result<BufSlice> {
        Ok(BufSlice {
            buf: self.usize()?,
            start: self.usize()?,
            len: self.usize()?,
        })
    }

    fn scalar<T: Scalar>(&mut self) -> Result<T> {
        Ok(T::from_f64(self.f64()?))
    }

    fn compute<T: Scalar>(&mut self) -> Result<ComputeOp<T>> {
        let tag = self.u8()?;
        Ok(match tag {
            1 => ComputeOp::Ger {
                alpha: self.scalar()?,
                x: self.slice()?,
                y: self.slice()?,
                dst: self.usize()?,
            },
            2 => ComputeOp::SprLower {
                alpha: self.scalar()?,
                x: self.slice()?,
                dst: self.usize()?,
            },
            3 => ComputeOp::TrianglePairs {
                alpha: self.scalar()?,
                x: self.slice()?,
                dst: self.usize()?,
            },
            4 => ComputeOp::CholeskyInPlace {
                dst: self.usize()?,
                pivot_base: self.usize()?,
            },
            5 => ComputeOp::LuInPlace {
                dst: self.usize()?,
                pivot_base: self.usize()?,
            },
            6 => ComputeOp::TrsmRightStep {
                seg: self.usize()?,
                dst: self.usize()?,
                col: self.usize()?,
                pivot: self.usize()?,
            },
            7 => ComputeOp::LuColSolveStep {
                seg: self.usize()?,
                dst: self.usize()?,
                col: self.usize()?,
                pivot: self.usize()?,
            },
            8 => ComputeOp::LuRowElimStep {
                seg: self.usize()?,
                dst: self.usize()?,
                row: self.usize()?,
            },
            other => return Err(self.corrupt(format!("unknown compute tag {other}"))),
        })
    }

    fn step<T: Scalar>(&mut self) -> Result<Step<T>> {
        let tag = self.u8()?;
        Ok(match tag {
            1 => Step::Load {
                matrix: MatrixId::synthetic(self.u64()?),
                region: self.region()?,
                dst: self.usize()?,
                level: Level::default(),
            },
            2 => Step::Alloc {
                matrix: MatrixId::synthetic(self.u64()?),
                region: self.region()?,
                dst: self.usize()?,
            },
            3 => Step::Store {
                buf: self.usize()?,
                level: Level::default(),
            },
            4 => Step::Discard { buf: self.usize()? },
            5 => Step::Flops(FlopCount::new(self.u128()?, self.u128()?)),
            6 => Step::Compute(self.compute()?),
            7 => Step::Load {
                matrix: MatrixId::synthetic(self.u64()?),
                region: self.region()?,
                dst: self.usize()?,
                level: Level::new(self.u8()?),
            },
            8 => Step::Store {
                buf: self.usize()?,
                level: Level::new(self.u8()?),
            },
            other => return Err(self.corrupt(format!("unknown step tag {other}"))),
        })
    }
}

fn decode_schedule<T: Scalar>(bytes: &[u8]) -> Result<Schedule<T>> {
    let mut r = Reader::new(bytes);
    let num_groups = r.count()?;
    let mut groups = Vec::with_capacity(num_groups);
    for _ in 0..num_groups {
        let phase = match r.u8()? {
            0 => None,
            1 => Some(r.str()?),
            other => return Err(r.corrupt(format!("bad phase marker {other}"))),
        };
        let num_steps = r.count()?;
        let mut steps = Vec::with_capacity(num_steps);
        for _ in 0..num_steps {
            steps.push(r.step::<T>()?);
        }
        groups.push(TaskGroup { phase, steps });
    }
    if r.pos != bytes.len() {
        return Err(r.corrupt(format!(
            "{} trailing byte(s) after schedule payload",
            bytes.len() - r.pos
        )));
    }
    Ok(Schedule { groups })
}

fn decode_prefetch(bytes: &[u8]) -> Result<PrefetchPlan> {
    let mut r = Reader::new(bytes);
    let boundaries = r.count()?;
    let mut issues = Vec::with_capacity(boundaries);
    for _ in 0..boundaries {
        let n = r.count()?;
        let mut at = Vec::with_capacity(n);
        for _ in 0..n {
            at.push(PrefetchIssue {
                group: r.usize()?,
                step: r.usize()?,
            });
        }
        issues.push(at);
    }
    let planned_elements = r.u64()?;
    let planned_events = r.u64()?;
    if r.pos != bytes.len() {
        return Err(r.corrupt(format!(
            "{} trailing byte(s) after prefetch payload",
            bytes.len() - r.pos
        )));
    }
    Ok(PrefetchPlan::from_parts(
        issues,
        planned_elements,
        planned_events,
    ))
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

fn encode_container(sections: &[(u8, Vec<u8>)], scalar_width: u8, version: u16) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        8 + sections
            .iter()
            .map(|(_, payload)| 9 + payload.len())
            .sum::<usize>(),
    );
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.push(scalar_width);
    let flags = if sections.iter().any(|(t, _)| *t == SECTION_PREFETCH) {
        FLAG_PREFETCH
    } else {
        0
    };
    out.push(flags);
    for (tag, payload) in sections {
        out.push(*tag);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// Decodes the container framing, returning the schedule payload and the
/// optional prefetch payload.
fn decode_container(bytes: &[u8], scalar_width: u8) -> Result<(&[u8], Option<&[u8]>)> {
    let mut r = Reader::new(bytes);
    let magic = r.take(4)?;
    if magic != MAGIC {
        return Err(BinaryError::BadMagic(magic.try_into().unwrap()));
    }
    let version = r.u16()?;
    if version > FORMAT_VERSION {
        return Err(BinaryError::UnsupportedVersion(version));
    }
    let width = r.u8()?;
    if width != scalar_width {
        return Err(BinaryError::ScalarWidthMismatch {
            expected: scalar_width,
            found: width,
        });
    }
    let flags = r.u8()?;

    let mut section = |expected: u8| -> Result<&[u8]> {
        let tag = r.u8()?;
        if tag != expected {
            return Err(BinaryError::Corrupt {
                offset: r.pos - 1,
                message: format!("expected section tag {expected:#04x}, found {tag:#04x}"),
            });
        }
        let len = r.count()?;
        r.take(len)
    };

    let schedule = section(SECTION_SCHEDULE)?;
    let prefetch = if flags & FLAG_PREFETCH != 0 {
        Some(section(SECTION_PREFETCH)?)
    } else {
        None
    };
    if r.pos != bytes.len() {
        return Err(BinaryError::Corrupt {
            offset: r.pos,
            message: format!(
                "{} trailing byte(s) after last section",
                bytes.len() - r.pos
            ),
        });
    }
    Ok((schedule, prefetch))
}

impl<T: Scalar> Schedule<T> {
    /// Serializes the schedule to the compact binary form.
    ///
    /// Deterministic: equal schedules produce byte-identical encodings, so
    /// the bytes (or their [`stable_hash`]) can content-address a plan.
    pub fn to_bytes(&self) -> Vec<u8> {
        encode_container(
            &[(SECTION_SCHEDULE, encode_schedule(self))],
            std::mem::size_of::<T>() as u8,
            self.text_version(),
        )
    }

    /// Serializes the schedule together with a prefetch plan, so a
    /// compiled-and-planned artifact round-trips as one unit (this is the
    /// on-disk form of the plan cache).
    pub fn to_bytes_with_plan(&self, plan: &PrefetchPlan) -> Vec<u8> {
        encode_container(
            &[
                (SECTION_SCHEDULE, encode_schedule(self)),
                (SECTION_PREFETCH, encode_prefetch(plan)),
            ],
            std::mem::size_of::<T>() as u8,
            self.text_version(),
        )
    }

    /// Decodes a schedule from [`Schedule::to_bytes`] (a trailing prefetch
    /// section, if present, is decoded and dropped).
    pub fn from_bytes(bytes: &[u8]) -> std::result::Result<Self, BinaryError> {
        Self::from_bytes_with_plan(bytes).map(|(schedule, _)| schedule)
    }

    /// Decodes a schedule plus the optional prefetch plan encoded with it.
    pub fn from_bytes_with_plan(
        bytes: &[u8],
    ) -> std::result::Result<(Self, Option<PrefetchPlan>), BinaryError> {
        let (sched_payload, plan_payload) =
            decode_container(bytes, std::mem::size_of::<T>() as u8)?;
        let schedule = decode_schedule::<T>(sched_payload)?;
        let plan = plan_payload.map(decode_prefetch).transpose()?;
        Ok((schedule, plan))
    }

    /// Stable content hash of the binary encoding: two schedules hash
    /// equal iff their serialized forms are byte-identical.
    pub fn content_hash(&self) -> u64 {
        stable_hash(&self.to_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ScheduleBuilder;

    fn sample_schedule() -> Schedule<f64> {
        let m = MatrixId::synthetic(2);
        let mut b = ScheduleBuilder::<f64>::new();
        b.set_phase("update");
        b.begin_group();
        let c = b.load(m, Region::rect(0, 0, 3, 3));
        let x = b.load(
            m,
            Region::Rows {
                rows: vec![0, 2, 5],
                col0: 1,
                cols: 2,
            },
        );
        b.compute(ComputeOp::Ger {
            alpha: -0.5,
            x: BufSlice::new(x, 0, 3),
            y: BufSlice::new(x, 3, 3),
            dst: c,
        });
        b.flops(FlopCount::new(9, 9));
        b.discard(x);
        b.store(c);
        b.begin_group();
        let tri = b.load(m, Region::SymLowerTriangle { start: 1, size: 2 });
        b.compute(ComputeOp::CholeskyInPlace {
            dst: tri,
            pivot_base: 1,
        });
        b.store(tri);
        b.finish()
    }

    #[test]
    fn round_trip_preserves_schedule() {
        let schedule = sample_schedule();
        let bytes = schedule.to_bytes();
        assert_eq!(Schedule::<f64>::from_bytes(&bytes).unwrap(), schedule);
        // determinism: encoding is a pure function of the schedule
        assert_eq!(schedule.to_bytes(), bytes);
        assert_eq!(schedule.content_hash(), stable_hash(&bytes));
        // empty schedules round-trip
        let empty = Schedule::<f64>::default();
        assert_eq!(
            Schedule::<f64>::from_bytes(&empty.to_bytes()).unwrap(),
            empty
        );
    }

    #[test]
    fn round_trip_with_prefetch_plan() {
        let schedule = sample_schedule();
        let plan = PrefetchPlan::plan(&schedule, 1, Some(64));
        let bytes = schedule.to_bytes_with_plan(&plan);
        let (decoded, decoded_plan) = Schedule::<f64>::from_bytes_with_plan(&bytes).unwrap();
        assert_eq!(decoded, schedule);
        assert_eq!(decoded_plan.as_ref(), Some(&plan));
        // from_bytes tolerates (and drops) the plan section
        assert_eq!(Schedule::<f64>::from_bytes(&bytes).unwrap(), schedule);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let schedule = sample_schedule();
        let plan = PrefetchPlan::plan(&schedule, 1, Some(64));
        let bytes = schedule.to_bytes_with_plan(&plan);
        for len in 0..bytes.len() {
            let err = Schedule::<f64>::from_bytes_with_plan(&bytes[..len])
                .expect_err("every prefix must fail to decode");
            // must be a typed error, not a panic; most prefixes truncate
            let _ = err.to_string();
        }
    }

    #[test]
    fn rejects_bad_magic_and_future_version() {
        let schedule = sample_schedule();
        let mut bytes = schedule.to_bytes();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Schedule::<f64>::from_bytes(&bad),
            Err(BinaryError::BadMagic(_))
        ));
        bytes[4] = 0xFF; // version low byte
        assert!(matches!(
            Schedule::<f64>::from_bytes(&bytes),
            Err(BinaryError::UnsupportedVersion(_))
        ));
    }

    #[test]
    fn rejects_wrong_scalar_width_and_trailing_bytes() {
        let schedule = sample_schedule();
        let bytes = schedule.to_bytes();
        assert!(matches!(
            Schedule::<f32>::from_bytes(&bytes),
            Err(BinaryError::ScalarWidthMismatch {
                expected: 4,
                found: 8
            })
        ));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            Schedule::<f64>::from_bytes(&trailing),
            Err(BinaryError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_unknown_tags() {
        // Corrupt the first step tag inside the schedule payload. The
        // payload starts after magic(4) + version(2) + width(1) + flags(1)
        // + tag(1) + len(8) = 17 bytes; the first 8 payload bytes are the
        // group count, the next byte the phase marker.
        let schedule = sample_schedule();
        let mut bytes = schedule.to_bytes();
        let phase_marker = 17 + 8;
        assert_eq!(bytes[phase_marker], 1, "sample has a phase label");
        bytes[phase_marker] = 9;
        assert!(matches!(
            Schedule::<f64>::from_bytes(&bytes),
            Err(BinaryError::Corrupt { .. })
        ));
    }

    #[test]
    fn leveled_schedules_encode_as_version_2_and_round_trip() {
        let m = MatrixId::synthetic(0);
        let mut b = ScheduleBuilder::<f64>::new();
        let x = b.load_from(m, Region::rect(0, 0, 2, 2), Level::new(3));
        let y = b.load(m, Region::col_segment(0, 0, 2));
        b.discard(y);
        b.store_to(x, Level::new(2));
        let leveled = b.finish();

        let bytes = leveled.to_bytes();
        // container version is 2 for leveled schedules...
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 2);
        assert_eq!(Schedule::<f64>::from_bytes(&bytes).unwrap(), leveled);

        // ...and stays 1 for plain two-level schedules (old readers still
        // decode what we write)
        let plain = sample_schedule();
        let bytes = plain.to_bytes();
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), 1);
        assert_eq!(Schedule::<f64>::from_bytes(&bytes).unwrap(), plain);

        // the plan section composes with leveled payloads
        let plan = PrefetchPlan::plan(&leveled, 1, Some(64));
        let (decoded, decoded_plan) =
            Schedule::<f64>::from_bytes_with_plan(&leveled.to_bytes_with_plan(&plan)).unwrap();
        assert_eq!(decoded, leveled);
        assert_eq!(decoded_plan.as_ref(), Some(&plan));
    }

    #[test]
    fn stable_hasher_is_stable() {
        let mut h = StableHasher::new();
        h.write_str("tbs");
        h.write_u64(64);
        h.write_bool(true);
        // FNV-1a is fully deterministic: pin the digest so any accidental
        // change to the hashing scheme (which would orphan every on-disk
        // cache entry) fails loudly.
        let again = {
            let mut h = StableHasher::new();
            h.write_str("tbs");
            h.write_u64(64);
            h.write_bool(true);
            h.finish()
        };
        assert_eq!(h.finish(), again);
        assert_ne!(stable_hash(b"a"), stable_hash(b"b"));
        assert_eq!(stable_hash(b""), 0xcbf2_9ce4_8422_2325);
    }
}
