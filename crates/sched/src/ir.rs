//! The schedule intermediate representation (IR).
//!
//! An out-of-core algorithm in this workspace is expressed as a [`Schedule`]:
//! a sequence of [`TaskGroup`]s, each a self-contained unit of work whose
//! [`Step`]s move regions between slow and fast memory ([`Step::Load`] /
//! [`Step::Alloc`] / [`Step::Store`] / [`Step::Discard`]) and run block
//! kernels on the resident buffers ([`Step::Compute`]). The algorithms of
//! `symla-baselines` and `symla-core` are *schedule builders* that emit this
//! IR; the generic [`crate::engine::Engine`] then replays a schedule in one
//! of five modes (execute, execute-parallel, dry-run, trace, and the
//! prefetching `*_with` variants).
//!
//! Schedules serialize to a compact one-line-per-step text form
//! ([`Schedule::dump`]) and parse back losslessly ([`Schedule::parse`]), so
//! experiment runs can be replayed from disk without rebuilding.
//!
//! Separating "what moves when" (the IR) from "how it runs" (the engine)
//! makes every schedule:
//!
//! * **dry-runnable** — I/O and flop accounting without touching data, which
//!   subsumes per-algorithm cost bookkeeping;
//! * **traceable** — the exact transfer stream can be synthesized for bound
//!   verification without executing kernels;
//! * **distributable** — a [`TaskGroup`] only references buffers it created,
//!   so groups are the unit of placement for multi-worker execution
//!   ([`crate::engine::Engine::execute_parallel`] distributes independent
//!   groups over the workers of a shared slow memory through a
//!   work-stealing queue; `symla_core::parallel` builds its partitions on
//!   exactly this).
//!
//! Buffers are named by [`BufId`]s issued by the [`ScheduleBuilder`]. A
//! buffer is created by exactly one `Load`/`Alloc` step and consumed by
//! exactly one `Store`/`Discard` step of the same group.

use std::fmt;
use symla_matrix::kernels::FlopCount;
use symla_matrix::Scalar;
use symla_memory::{Level, MatrixId, Region};

/// Identifier of a fast-memory buffer within a schedule.
pub type BufId = usize;

/// Prefix of the version line opening every text dump
/// (`symla-schedule text v{FORMAT_VERSION}`).
pub(crate) const TEXT_HEADER_PREFIX: &str = "symla-schedule text v";

/// A contiguous slice of a fast-memory buffer, used as a kernel operand
/// (e.g. one tile-row segment of a loaded `A` gather).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufSlice {
    /// The buffer the slice lives in.
    pub buf: BufId,
    /// First element of the slice.
    pub start: usize,
    /// Number of elements.
    pub len: usize,
}

impl BufSlice {
    /// A slice covering `len` elements of `buf` from `start`.
    pub fn new(buf: BufId, start: usize, len: usize) -> Self {
        Self { buf, start, len }
    }

    /// A slice covering the whole of a buffer of `len` elements.
    pub fn whole(buf: BufId, len: usize) -> Self {
        Self { buf, start: 0, len }
    }
}

/// A block kernel applied to resident fast-memory buffers.
///
/// Each variant mirrors one of the in-core view kernels of
/// `symla_matrix::kernels::views` (or one streaming solve step of the
/// left-looking baselines). Compute steps never touch slow memory.
#[derive(Debug, Clone, PartialEq)]
pub enum ComputeOp<T: Scalar> {
    /// Rank-1 update `dst += alpha · x · yᵀ` on a rectangular buffer.
    Ger {
        /// Scaling of the product.
        alpha: T,
        /// Column operand.
        x: BufSlice,
        /// Row operand.
        y: BufSlice,
        /// Rectangular destination buffer.
        dst: BufId,
    },
    /// Symmetric rank-1 update `dst += alpha · x · xᵀ` on a packed lower
    /// triangle buffer.
    SprLower {
        /// Scaling of the product.
        alpha: T,
        /// The vector operand.
        x: BufSlice,
        /// Packed lower-triangle destination buffer.
        dst: BufId,
    },
    /// Strict-lower triangle-block update of TBS:
    /// `dst[(u,v)] += alpha · x[u] · x[v]` for `u > v`.
    TrianglePairs {
        /// Scaling of the product.
        alpha: T,
        /// One column of `A` restricted to the block's row set.
        x: BufSlice,
        /// Pair buffer (layout of [`Region::SymPairs`]).
        dst: BufId,
    },
    /// In-place Cholesky factorization of a packed lower-triangle buffer.
    CholeskyInPlace {
        /// The packed diagonal-block buffer.
        dst: BufId,
        /// Added to in-tile pivot indices when reporting a non-SPD pivot.
        pivot_base: usize,
    },
    /// In-place LU factorization (no pivoting) of a rectangular buffer.
    LuInPlace {
        /// The square tile buffer.
        dst: BufId,
        /// Added to in-tile pivot indices when reporting a singular pivot.
        pivot_base: usize,
    },
    /// One streamed column step of the right triangular solve
    /// `X ← X · L⁻ᵀ`: with `seg` holding column `col` of the diagonal block
    /// of `L` from its diagonal element down, divides `dst[:, col]` by
    /// `seg[0]` and subtracts `dst[:, col] · seg[j - col]` from every later
    /// column `j`.
    TrsmRightStep {
        /// The streamed `L` column segment.
        seg: BufId,
        /// The panel tile being solved.
        dst: BufId,
        /// In-tile column index being finalized.
        col: usize,
        /// Pivot index reported if `seg[0]` is zero or non-finite.
        pivot: usize,
    },
    /// One streamed column step of the LU sub-diagonal solve
    /// `X · U₁₁ = tile`: with `seg` holding rows `0..=col` of column `col`
    /// of `U₁₁`, eliminates the contributions of columns `q < col` and
    /// divides by the diagonal `seg[col]`.
    LuColSolveStep {
        /// The streamed `U` column segment.
        seg: BufId,
        /// The tile being solved.
        dst: BufId,
        /// In-tile column index being finalized.
        col: usize,
        /// Pivot index reported if the diagonal is zero or non-finite.
        pivot: usize,
    },
    /// One streamed column step of the LU super-diagonal solve
    /// `L₁₁ · X = tile` (unit diagonal): with `seg` holding the strictly
    /// sub-diagonal part of column `row` of `L₁₁`, eliminates row `row` from
    /// every row below it.
    LuRowElimStep {
        /// The streamed `L` column segment (may be empty for the last row).
        seg: BufId,
        /// The tile being solved.
        dst: BufId,
        /// In-tile row index whose value is final.
        row: usize,
    },
}

impl<T: Scalar> ComputeOp<T> {
    /// The kernel's schedule-dump mnemonic (`"ger"`, `"spr"`, …) — the same
    /// token the textual IR uses, reused by tracing observers to name
    /// compute events.
    pub fn kind(&self) -> &'static str {
        match self {
            ComputeOp::Ger { .. } => "ger",
            ComputeOp::SprLower { .. } => "spr",
            ComputeOp::TrianglePairs { .. } => "tripairs",
            ComputeOp::CholeskyInPlace { .. } => "chol",
            ComputeOp::LuInPlace { .. } => "lu",
            ComputeOp::TrsmRightStep { .. } => "trsmstep",
            ComputeOp::LuColSolveStep { .. } => "lucol",
            ComputeOp::LuRowElimStep { .. } => "lurow",
        }
    }
}

/// One primitive action of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum Step<T: Scalar> {
    /// Transfer a region from slow memory into a new fast-memory buffer
    /// (counted as load traffic).
    Load {
        /// Source matrix.
        matrix: MatrixId,
        /// Region transferred.
        region: Region,
        /// Buffer created by this step.
        dst: BufId,
        /// Memory tier the region is read from. [`Level::SLOW`] (the
        /// default) is the classic two-level slow memory; deeper tiers
        /// stage through every intermediate level.
        level: Level,
    },
    /// Reserve fast-memory space for a region without reading it (no load
    /// traffic); used for outputs that are fully overwritten.
    Alloc {
        /// Matrix the buffer will be stored back to.
        matrix: MatrixId,
        /// Region the buffer mirrors.
        region: Region,
        /// Buffer created by this step.
        dst: BufId,
    },
    /// Run a block kernel on resident buffers.
    Compute(ComputeOp<T>),
    /// Attribute arithmetic work to the schedule (kept as an explicit step so
    /// dry runs account flops exactly like executions).
    Flops(FlopCount),
    /// Write a buffer back to slow memory (counted as store traffic) and
    /// release its fast-memory space.
    Store {
        /// The buffer consumed.
        buf: BufId,
        /// Memory tier the buffer is written to ([`Level::SLOW`] by
        /// default).
        level: Level,
    },
    /// Release a buffer without writing it back (no store traffic).
    Discard {
        /// The buffer consumed.
        buf: BufId,
    },
}

/// A self-contained unit of work: a sequence of steps that creates, uses and
/// releases its own buffers.
///
/// A group never references a buffer created by another group, so groups are
/// the granularity of placement for multi-worker execution. For the update
/// kernels (SYRK / GEMM) the groups' output regions are disjoint and any
/// assignment of whole groups to workers is valid; the left-looking
/// factorizations (Cholesky / LU) additionally order their groups through
/// slow memory, so those must replay in sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskGroup<T: Scalar> {
    /// Phase label the group's traffic is attributed to. `None` leaves the
    /// machine's current phase untouched (so a caller like LBC can attribute
    /// a whole sub-schedule to one phase).
    pub phase: Option<String>,
    /// The steps, in program order.
    pub steps: Vec<Step<T>>,
}

impl<T: Scalar> TaskGroup<T> {
    /// Elements this group loads from slow memory.
    pub fn loaded_elements(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Load { region, .. } => region.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Elements this group stores back to slow memory.
    pub fn stored_elements(&self) -> u64 {
        let mut sizes = std::collections::BTreeMap::new();
        let mut stored = 0u64;
        for step in &self.steps {
            match step {
                Step::Load { region, dst, .. } | Step::Alloc { region, dst, .. } => {
                    sizes.insert(*dst, region.len() as u64);
                }
                Step::Store { buf, .. } => stored += sizes.remove(buf).unwrap_or(0),
                _ => {}
            }
        }
        stored
    }
}

/// A complete schedule: an ordered sequence of task groups.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule<T: Scalar> {
    /// The task groups, in sequential execution order.
    pub groups: Vec<TaskGroup<T>>,
}

impl<T: Scalar> Schedule<T> {
    /// Number of task groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total number of steps over all groups.
    pub fn num_steps(&self) -> usize {
        self.groups.iter().map(|g| g.steps.len()).sum()
    }

    /// Whether any transfer step targets a non-default memory tier.
    ///
    /// Leveled schedules dump with text header version 2 and encode with
    /// binary container version 2; plain two-level schedules keep the
    /// version-1 forms byte-identical to what older builds wrote.
    pub fn is_leveled(&self) -> bool {
        self.groups.iter().flat_map(|g| &g.steps).any(|s| {
            matches!(s,
                Step::Load { level, .. } | Step::Store { level, .. } if !level.is_default())
        })
    }

    /// The text-dump version this schedule serializes with: 2 when leveled
    /// transfers are present, 1 otherwise.
    pub fn text_version(&self) -> u16 {
        if self.is_leveled() {
            2
        } else {
            1
        }
    }

    /// Returns a copy with every transfer re-pointed at `level`: all `Load`
    /// and `Store` steps name the given tier, everything else (groups,
    /// phases, computes, allocs, discards) is unchanged. Re-leveling to
    /// [`Level::default`] collapses a leveled schedule back to the classic
    /// two-level form; the autotuner uses this to score one schedule across
    /// the staging tiers of a hierarchy.
    pub fn with_transfer_level(&self, level: Level) -> Self {
        let mut out = self.clone();
        for group in &mut out.groups {
            for step in &mut group.steps {
                match step {
                    Step::Load { level: l, .. } | Step::Store { level: l, .. } => *l = level,
                    _ => {}
                }
            }
        }
        out
    }
}

impl<T: Scalar> fmt::Display for Schedule<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule: {} group(s), {} step(s)",
            self.num_groups(),
            self.num_steps()
        )
    }
}

impl fmt::Display for BufSlice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}[{}..+{}]", self.buf, self.start, self.len)
    }
}

impl<T: Scalar> fmt::Display for ComputeOp<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeOp::Ger { alpha, x, y, dst } => {
                write!(f, "ger      alpha={alpha} x={x} y={y} -> b{dst}")
            }
            ComputeOp::SprLower { alpha, x, dst } => {
                write!(f, "spr      alpha={alpha} x={x} -> b{dst}")
            }
            ComputeOp::TrianglePairs { alpha, x, dst } => {
                write!(f, "tripairs alpha={alpha} x={x} -> b{dst}")
            }
            ComputeOp::CholeskyInPlace { dst, pivot_base } => {
                write!(f, "chol     b{dst} (pivot base {pivot_base})")
            }
            ComputeOp::LuInPlace { dst, pivot_base } => {
                write!(f, "lu       b{dst} (pivot base {pivot_base})")
            }
            ComputeOp::TrsmRightStep {
                seg,
                dst,
                col,
                pivot,
            } => write!(f, "trsmstep seg=b{seg} col={col} pivot={pivot} -> b{dst}"),
            ComputeOp::LuColSolveStep {
                seg,
                dst,
                col,
                pivot,
            } => write!(f, "lucol    seg=b{seg} col={col} pivot={pivot} -> b{dst}"),
            ComputeOp::LuRowElimStep { seg, dst, row } => {
                write!(f, "lurow    seg=b{seg} row={row} -> b{dst}")
            }
        }
    }
}

impl<T: Scalar> fmt::Display for Step<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Load {
                matrix,
                region,
                dst,
                level,
            } => {
                write!(f, "load     m{} {region} -> b{dst}", matrix.raw())?;
                if !level.is_default() {
                    write!(f, " @{level}")?;
                }
                Ok(())
            }
            Step::Alloc {
                matrix,
                region,
                dst,
            } => write!(f, "alloc    m{} {region} -> b{dst}", matrix.raw()),
            Step::Compute(op) => write!(f, "{op}"),
            Step::Flops(fl) => write!(f, "flops    mults={} adds={}", fl.mults, fl.adds),
            Step::Store { buf, level } => {
                write!(f, "store    b{buf}")?;
                if !level.is_default() {
                    write!(f, " @{level}")?;
                }
                Ok(())
            }
            Step::Discard { buf } => write!(f, "discard  b{buf}"),
        }
    }
}

impl<T: Scalar> Schedule<T> {
    /// Compact textual dump: a version header line, a header per task group
    /// and one line per step, stable enough to diff optimized-vs-seed
    /// schedules by eye (and locked by a golden-file test).
    /// [`Schedule::parse`] is its exact inverse, so the dump doubles as the
    /// on-disk schedule serialization. The version line carries
    /// [`Schedule::text_version`]: plain two-level schedules keep emitting
    /// `v1` byte-identically to older builds (golden files stay valid),
    /// while schedules with leveled transfers ([`Schedule::is_leveled`])
    /// emit `v2` and annotate those steps with an ` @l{n}` suffix.
    ///
    /// ```
    /// use symla_memory::{MatrixId, Region};
    /// use symla_sched::ScheduleBuilder;
    ///
    /// let mut b = ScheduleBuilder::<f64>::new();
    /// let x = b.load(MatrixId::synthetic(0), Region::rect(0, 0, 2, 2));
    /// b.store(x);
    /// let text = b.finish().dump();
    /// assert!(text.starts_with("symla-schedule text v1\n"));
    /// assert!(text.contains("load     m0 Rect[0..+2, 0..+2] -> b0"));
    /// assert!(text.contains("store    b0"));
    /// ```
    pub fn dump(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{TEXT_HEADER_PREFIX}{}", self.text_version());
        let _ = writeln!(out, "{self}");
        for (g, group) in self.groups.iter().enumerate() {
            match &group.phase {
                Some(p) => {
                    let _ = writeln!(out, "group {g} phase={p}");
                }
                None => {
                    let _ = writeln!(out, "group {g}");
                }
            }
            for step in &group.steps {
                let _ = writeln!(out, "  {step}");
            }
        }
        out
    }

    /// Parses the text form produced by [`Schedule::dump`] back into a
    /// schedule: `Schedule::parse(&s.dump()) == Ok(s)` for every schedule
    /// (the second slice of the ROADMAP's serialization item — dumped
    /// experiment schedules can now be replayed and distributed without
    /// rebuilding them).
    ///
    /// The leading `symla-schedule text v{N}` version line is optional on
    /// input: headerless dumps written before the version header existed
    /// still parse. A version newer than
    /// [`crate::binary::FORMAT_VERSION`] is rejected with a typed error,
    /// mirroring the binary decoder.
    ///
    /// ```
    /// use symla_memory::{MatrixId, Region};
    /// use symla_sched::{Schedule, ScheduleBuilder};
    ///
    /// let mut b = ScheduleBuilder::<f64>::new();
    /// let x = b.load(MatrixId::synthetic(0), Region::rect(0, 0, 2, 2));
    /// b.store(x);
    /// let schedule = b.finish();
    /// assert_eq!(Schedule::parse(&schedule.dump()).unwrap(), schedule);
    /// // legacy dumps without the version line still parse
    /// let headerless = schedule.dump().lines().skip(1).collect::<Vec<_>>().join("\n");
    /// assert_eq!(Schedule::parse(&headerless).unwrap(), schedule);
    /// ```
    pub fn parse(text: &str) -> std::result::Result<Self, ScheduleParseError> {
        let mut lines = text.lines().enumerate().peekable();
        if let Some((_, first)) = lines.peek() {
            if let Some(version_text) = first.strip_prefix(TEXT_HEADER_PREFIX) {
                let (idx, _) = lines.next().expect("peeked line exists");
                let version: u16 = version_text.trim().parse().map_err(|_| {
                    ScheduleParseError::new(idx + 1, format!("bad version `{version_text}`"))
                })?;
                if version > crate::binary::FORMAT_VERSION {
                    return Err(ScheduleParseError::new(
                        idx + 1,
                        format!(
                            "dump version {version} is newer than supported version {}",
                            crate::binary::FORMAT_VERSION
                        ),
                    ));
                }
            }
        }
        let (header_line, header) = lines
            .next()
            .ok_or_else(|| ScheduleParseError::new(0, "empty dump"))?;
        let (want_groups, want_steps) = parse::header(header).ok_or_else(|| {
            ScheduleParseError::new(header_line + 1, format!("bad header `{header}`"))
        })?;

        let mut groups: Vec<TaskGroup<T>> = Vec::new();
        for (idx, line) in lines {
            let err = |msg: String| ScheduleParseError::new(idx + 1, msg);
            if let Some(rest) = line.strip_prefix("group ") {
                let (index_text, phase) = match rest.split_once(" phase=") {
                    Some((i, p)) => (i, Some(p.to_string())),
                    None => (rest, None),
                };
                let index: usize = index_text
                    .trim()
                    .parse()
                    .map_err(|_| err(format!("bad group index `{index_text}`")))?;
                if index != groups.len() {
                    return Err(err(format!(
                        "group {index} out of order (expected {})",
                        groups.len()
                    )));
                }
                groups.push(TaskGroup {
                    phase,
                    steps: Vec::new(),
                });
            } else if let Some(step_text) = line.strip_prefix("  ") {
                let group = groups
                    .last_mut()
                    .ok_or_else(|| err("step before any group header".to_string()))?;
                group.steps.push(parse::step::<T>(step_text).map_err(&err)?);
            } else if !line.trim().is_empty() {
                return Err(err(format!("unrecognized line `{line}`")));
            }
        }

        let schedule = Schedule { groups };
        if schedule.num_groups() != want_groups || schedule.num_steps() != want_steps {
            return Err(ScheduleParseError::new(
                header_line + 1,
                format!(
                    "header claims {want_groups} group(s) / {want_steps} step(s), \
                     body has {} / {}",
                    schedule.num_groups(),
                    schedule.num_steps()
                ),
            ));
        }
        Ok(schedule)
    }
}

/// Error returned by [`Schedule::parse`], carrying the 1-based line number
/// the parse failed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleParseError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// Human-readable reason.
    pub message: String,
}

impl ScheduleParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ScheduleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ScheduleParseError {}

/// Line-level parsers for [`Schedule::parse`], inverting the `Display`
/// impls of [`Step`], [`ComputeOp`], [`BufSlice`] and
/// [`Region`](symla_memory::Region) exactly.
mod parse {
    use super::{BufId, BufSlice, ComputeOp, Step};
    use symla_matrix::kernels::FlopCount;
    use symla_matrix::Scalar;
    use symla_memory::{Level, MatrixId, Region};

    type Result<T> = std::result::Result<T, String>;

    /// Parses `schedule: N group(s), M step(s)`.
    pub(super) fn header(line: &str) -> Option<(usize, usize)> {
        let rest = line.strip_prefix("schedule: ")?;
        let (groups, steps) = rest.split_once(", ")?;
        Some((
            groups.strip_suffix(" group(s)")?.parse().ok()?,
            steps.strip_suffix(" step(s)")?.parse().ok()?,
        ))
    }

    /// Parses `b{id}`.
    fn buf(text: &str) -> Result<BufId> {
        text.strip_prefix('b')
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| format!("bad buffer `{text}`"))
    }

    /// Parses `b{id}[{start}..+{len}]`.
    fn slice(text: &str) -> Result<BufSlice> {
        let err = || format!("bad buffer slice `{text}`");
        let (b, range) = text.split_once('[').ok_or_else(err)?;
        let (start, len) = range
            .strip_suffix(']')
            .and_then(|r| r.split_once("..+"))
            .ok_or_else(err)?;
        Ok(BufSlice {
            buf: buf(b)?,
            start: start.parse().map_err(|_| err())?,
            len: len.parse().map_err(|_| err())?,
        })
    }

    /// Parses an ` @l{n}` level token.
    fn level_token(text: &str) -> Result<Level> {
        text.strip_prefix("@l")
            .and_then(|t| t.parse::<u8>().ok())
            .map(Level::new)
            .ok_or_else(|| format!("bad level `{text}`"))
    }

    /// Splits an optional trailing ` @l{n}` level annotation off a step's
    /// operand text (the v2 leveled-transfer suffix).
    fn split_level(rest: &str) -> Result<(&str, Level)> {
        match rest.rsplit_once(' ') {
            Some((left, last)) if last.starts_with("@l") => Ok((left, level_token(last)?)),
            _ => Ok((rest, Level::default())),
        }
    }

    /// Strips `key=` from a token.
    fn kv<'a>(token: &'a str, key: &str) -> Result<&'a str> {
        token
            .strip_prefix(key)
            .and_then(|t| t.strip_prefix('='))
            .ok_or_else(|| format!("expected `{key}=...`, got `{token}`"))
    }

    /// Parses a scalar through its `f64` text form (the `Display` of `f32`
    /// and `f64` round-trips through shortest-decimal output).
    fn scalar<T: Scalar>(text: &str) -> Result<T> {
        text.parse::<f64>()
            .map(T::from_f64)
            .map_err(|_| format!("bad scalar `{text}`"))
    }

    /// Parses `m{id} {region} -> b{dst}` (the operand form of load/alloc).
    fn transfer(rest: &str) -> Result<(MatrixId, Region, BufId)> {
        let err = || format!("bad transfer operands `{rest}`");
        let (left, dst) = rest.rsplit_once(" -> ").ok_or_else(err)?;
        let (matrix, region) = left.split_once(' ').ok_or_else(err)?;
        let id: u64 = matrix
            .strip_prefix('m')
            .and_then(|m| m.parse().ok())
            .ok_or_else(err)?;
        let region: Region = region.parse().map_err(|e| format!("{e}"))?;
        Ok((MatrixId::synthetic(id), region, buf(dst)?))
    }

    /// Parses the last token of a `... -> b{dst}` line plus the preceding
    /// key=value tokens.
    fn arrow_dst<'a>(tokens: &[&'a str]) -> Result<(BufId, Vec<&'a str>)> {
        match tokens {
            [init @ .., "->", dst] => Ok((buf(dst)?, init.to_vec())),
            _ => Err("missing `-> b{dst}` tail".to_string()),
        }
    }

    /// Parses one (already unindented) step line.
    pub(super) fn step<T: Scalar>(line: &str) -> Result<Step<T>> {
        let line = line.trim_end();
        let (op, rest) = line
            .split_once(' ')
            .ok_or_else(|| format!("bad step `{line}`"))?;
        let rest = rest.trim_start();
        let tokens: Vec<&str> = rest.split_whitespace().collect();
        match op {
            "load" => {
                let (operands, level) = split_level(rest)?;
                let (matrix, region, dst) = transfer(operands)?;
                Ok(Step::Load {
                    matrix,
                    region,
                    dst,
                    level,
                })
            }
            "alloc" => {
                let (matrix, region, dst) = transfer(rest)?;
                Ok(Step::Alloc {
                    matrix,
                    region,
                    dst,
                })
            }
            "store" => match tokens.as_slice() {
                [b] => Ok(Step::Store {
                    buf: buf(b)?,
                    level: Level::default(),
                }),
                [b, lvl] => Ok(Step::Store {
                    buf: buf(b)?,
                    level: level_token(lvl)?,
                }),
                _ => Err(format!("bad store operands `{rest}`")),
            },
            "discard" => Ok(Step::Discard { buf: buf(rest)? }),
            "flops" => match tokens.as_slice() {
                [mults, adds] => Ok(Step::Flops(FlopCount::new(
                    kv(mults, "mults")?
                        .parse()
                        .map_err(|_| format!("bad flop count `{mults}`"))?,
                    kv(adds, "adds")?
                        .parse()
                        .map_err(|_| format!("bad flop count `{adds}`"))?,
                ))),
                _ => Err(format!("bad flops operands `{rest}`")),
            },
            "ger" => {
                let (dst, init) = arrow_dst(&tokens)?;
                match init.as_slice() {
                    [alpha, x, y] => Ok(Step::Compute(ComputeOp::Ger {
                        alpha: scalar(kv(alpha, "alpha")?)?,
                        x: slice(kv(x, "x")?)?,
                        y: slice(kv(y, "y")?)?,
                        dst,
                    })),
                    _ => Err(format!("bad ger operands `{rest}`")),
                }
            }
            "spr" | "tripairs" => {
                let (dst, init) = arrow_dst(&tokens)?;
                match init.as_slice() {
                    [alpha, x] => {
                        let alpha = scalar(kv(alpha, "alpha")?)?;
                        let x = slice(kv(x, "x")?)?;
                        Ok(Step::Compute(if op == "spr" {
                            ComputeOp::SprLower { alpha, x, dst }
                        } else {
                            ComputeOp::TrianglePairs { alpha, x, dst }
                        }))
                    }
                    _ => Err(format!("bad {op} operands `{rest}`")),
                }
            }
            "chol" | "lu" => match tokens.as_slice() {
                [dst, "(pivot", "base", base] => {
                    let dst = buf(dst)?;
                    let pivot_base = base
                        .strip_suffix(')')
                        .and_then(|b| b.parse().ok())
                        .ok_or_else(|| format!("bad pivot base `{base}`"))?;
                    Ok(Step::Compute(if op == "chol" {
                        ComputeOp::CholeskyInPlace { dst, pivot_base }
                    } else {
                        ComputeOp::LuInPlace { dst, pivot_base }
                    }))
                }
                _ => Err(format!("bad {op} operands `{rest}`")),
            },
            "trsmstep" | "lucol" => {
                let (dst, init) = arrow_dst(&tokens)?;
                match init.as_slice() {
                    [seg, col, pivot] => {
                        let seg = buf(kv(seg, "seg")?)?;
                        let col = kv(col, "col")?
                            .parse()
                            .map_err(|_| format!("bad column `{col}`"))?;
                        let pivot = kv(pivot, "pivot")?
                            .parse()
                            .map_err(|_| format!("bad pivot `{pivot}`"))?;
                        Ok(Step::Compute(if op == "trsmstep" {
                            ComputeOp::TrsmRightStep {
                                seg,
                                dst,
                                col,
                                pivot,
                            }
                        } else {
                            ComputeOp::LuColSolveStep {
                                seg,
                                dst,
                                col,
                                pivot,
                            }
                        }))
                    }
                    _ => Err(format!("bad {op} operands `{rest}`")),
                }
            }
            "lurow" => {
                let (dst, init) = arrow_dst(&tokens)?;
                match init.as_slice() {
                    [seg, row] => Ok(Step::Compute(ComputeOp::LuRowElimStep {
                        seg: buf(kv(seg, "seg")?)?,
                        dst,
                        row: kv(row, "row")?
                            .parse()
                            .map_err(|_| format!("bad row `{row}`"))?,
                    })),
                    _ => Err(format!("bad lurow operands `{rest}`")),
                }
            }
            other => Err(format!("unknown step `{other}`")),
        }
    }
}

/// Incremental constructor for [`Schedule`]s.
///
/// Builders mirror the shape of the original executor loops: where the seed
/// code called `machine.load(...)`, a builder calls [`ScheduleBuilder::load`]
/// and receives a [`BufId`] to thread through the compute steps. Buffer ids
/// are unique across the whole schedule.
#[derive(Debug)]
pub struct ScheduleBuilder<T: Scalar> {
    groups: Vec<TaskGroup<T>>,
    current: TaskGroup<T>,
    started: bool,
    phase: Option<String>,
    next_buf: BufId,
}

impl<T: Scalar> Default for ScheduleBuilder<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> ScheduleBuilder<T> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            groups: Vec::new(),
            current: TaskGroup::default(),
            started: false,
            phase: None,
            next_buf: 0,
        }
    }

    /// Sets the phase label assigned to task groups begun from now on.
    pub fn set_phase(&mut self, phase: &str) {
        self.phase = Some(phase.to_string());
    }

    /// Closes the current group (if it has steps) and begins a new one
    /// carrying the current phase label.
    pub fn begin_group(&mut self) {
        self.flush_group();
        self.started = true;
    }

    fn flush_group(&mut self) {
        if !self.current.steps.is_empty() {
            self.groups.push(std::mem::take(&mut self.current));
        }
        self.current.phase = self.phase.clone();
    }

    fn push(&mut self, step: Step<T>) {
        if !self.started {
            self.begin_group();
        }
        self.current.steps.push(step);
    }

    /// Emits a load step from the default slow tier and returns the id of
    /// the created buffer.
    pub fn load(&mut self, matrix: MatrixId, region: Region) -> BufId {
        self.load_from(matrix, region, Level::default())
    }

    /// Emits a load step from an explicit memory tier and returns the id of
    /// the created buffer. `Level::default()` is exactly [`Self::load`].
    pub fn load_from(&mut self, matrix: MatrixId, region: Region, level: Level) -> BufId {
        let dst = self.next_buf;
        self.next_buf += 1;
        self.push(Step::Load {
            matrix,
            region,
            dst,
            level,
        });
        dst
    }

    /// Emits an allocate-without-reading step and returns the buffer id.
    pub fn alloc(&mut self, matrix: MatrixId, region: Region) -> BufId {
        let dst = self.next_buf;
        self.next_buf += 1;
        self.push(Step::Alloc {
            matrix,
            region,
            dst,
        });
        dst
    }

    /// Emits a compute step.
    pub fn compute(&mut self, op: ComputeOp<T>) {
        self.push(Step::Compute(op));
    }

    /// Emits a flop-accounting step.
    pub fn flops(&mut self, flops: FlopCount) {
        self.push(Step::Flops(flops));
    }

    /// Emits a store step consuming `buf`, writing to the default slow tier.
    pub fn store(&mut self, buf: BufId) {
        self.store_to(buf, Level::default());
    }

    /// Emits a store step consuming `buf`, writing to an explicit memory
    /// tier. `Level::default()` is exactly [`Self::store`].
    pub fn store_to(&mut self, buf: BufId, level: Level) {
        self.push(Step::Store { buf, level });
    }

    /// Emits a discard step consuming `buf`.
    pub fn discard(&mut self, buf: BufId) {
        self.push(Step::Discard { buf });
    }

    /// Finishes the build and returns the schedule.
    pub fn finish(mut self) -> Schedule<T> {
        self.flush_group();
        Schedule {
            groups: self.groups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_groups_and_buffer_ids() {
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let m = MatrixId::synthetic(0);
        let c = b.load(m, Region::rect(0, 0, 2, 2));
        let x = b.load(m, Region::col_segment(0, 0, 2));
        b.compute(ComputeOp::Ger {
            alpha: 1.0,
            x: BufSlice::whole(x, 2),
            y: BufSlice::whole(x, 2),
            dst: c,
        });
        b.flops(FlopCount::new(4, 4));
        b.discard(x);
        b.store(c);

        b.set_phase("p2");
        b.begin_group();
        let d = b.load(m, Region::rect(2, 2, 1, 1));
        b.discard(d);

        let schedule = b.finish();
        assert_eq!(schedule.num_groups(), 2);
        assert_eq!(schedule.num_steps(), 8);
        assert_eq!(schedule.groups[0].phase, None);
        assert_eq!(schedule.groups[1].phase.as_deref(), Some("p2"));
        assert_ne!(c, x);
        assert_ne!(d, c);
        assert_ne!(d, x);
        assert!(schedule.to_string().contains("2 group(s)"));
    }

    #[test]
    fn group_volume_helpers() {
        let mut b = ScheduleBuilder::<f64>::new();
        let m = MatrixId::synthetic(1);
        let c = b.load(m, Region::rect(0, 0, 3, 3));
        let z = b.alloc(m, Region::rect(3, 0, 1, 3));
        let x = b.load(m, Region::col_segment(0, 0, 3));
        b.discard(x);
        b.store(c);
        b.store(z);
        let schedule = b.finish();
        let group = &schedule.groups[0];
        assert_eq!(group.loaded_elements(), 12);
        assert_eq!(group.stored_elements(), 12);
    }

    /// A schedule exercising every step and compute-op variant, every
    /// region kind and a phase label, for the dump/parse round trip.
    fn kitchen_sink_schedule() -> Schedule<f64> {
        let m = MatrixId::synthetic(3);
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let c = b.load(m, Region::rect(0, 0, 3, 3));
        let x = b.load(
            m,
            Region::Rows {
                rows: vec![1, 4, 6],
                col0: 0,
                cols: 2,
            },
        );
        b.compute(ComputeOp::Ger {
            alpha: -1.5,
            x: BufSlice::new(x, 0, 3),
            y: BufSlice::new(x, 3, 3),
            dst: c,
        });
        b.flops(FlopCount::new(9, 9));
        b.discard(x);
        b.store(c);

        b.set_phase("solve");
        b.begin_group();
        let tri = b.load(m, Region::SymLowerTriangle { start: 2, size: 3 });
        b.compute(ComputeOp::CholeskyInPlace {
            dst: tri,
            pivot_base: 2,
        });
        let pairs = b.alloc(
            m,
            Region::SymPairs {
                rows: vec![0, 2, 5],
            },
        );
        b.compute(ComputeOp::TrianglePairs {
            alpha: 0.25,
            x: BufSlice::whole(tri, 3),
            dst: pairs,
        });
        b.compute(ComputeOp::SprLower {
            alpha: 2.0,
            x: BufSlice::whole(pairs, 3),
            dst: tri,
        });
        b.store(pairs);
        b.store(tri);

        b.begin_group();
        let tile = b.load(m, Region::sym_rect(5, 0, 2, 2));
        let seg = b.load(
            m,
            Region::SymRows {
                rows: vec![6, 7],
                col0: 0,
                cols: 1,
            },
        );
        b.compute(ComputeOp::TrsmRightStep {
            seg,
            dst: tile,
            col: 0,
            pivot: 4,
        });
        b.compute(ComputeOp::LuColSolveStep {
            seg,
            dst: tile,
            col: 1,
            pivot: 5,
        });
        b.compute(ComputeOp::LuRowElimStep {
            seg,
            dst: tile,
            row: 0,
        });
        b.compute(ComputeOp::LuInPlace {
            dst: tile,
            pivot_base: 1,
        });
        b.discard(seg);
        b.store(tile);
        b.finish()
    }

    #[test]
    fn parse_inverts_dump_for_every_step_kind() {
        let schedule = kitchen_sink_schedule();
        let dump = schedule.dump();
        let parsed = Schedule::<f64>::parse(&dump).unwrap_or_else(|e| panic!("{e}\n{dump}"));
        assert_eq!(parsed, schedule);
        // and the round trip is a fixed point of dump
        assert_eq!(parsed.dump(), dump);
        // empty schedules round-trip too
        let empty = Schedule::<f64>::default();
        assert_eq!(Schedule::<f64>::parse(&empty.dump()).unwrap(), empty);
    }

    #[test]
    fn parse_rejects_malformed_dumps() {
        let schedule = kitchen_sink_schedule();
        let dump = schedule.dump();

        // header/body mismatch (the schedule header sits on line 2, after
        // the version line)
        let truncated: String = dump.lines().take(4).collect::<Vec<_>>().join("\n");
        let err = Schedule::<f64>::parse(&truncated).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("header claims"), "{err}");

        // a step before any group header
        let bad = "schedule: 0 group(s), 1 step(s)\n  store    b0\n";
        assert!(Schedule::<f64>::parse(bad).is_err());

        // garbage step
        let bad = "schedule: 1 group(s), 1 step(s)\ngroup 0\n  teleport b0\n";
        let err = Schedule::<f64>::parse(bad).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("teleport"));

        // bad header
        assert!(Schedule::<f64>::parse("schedules: a, b\n").is_err());
        assert!(Schedule::<f64>::parse("").is_err());

        // out-of-order group index
        let bad = "schedule: 1 group(s), 0 step(s)\ngroup 1\n";
        assert!(Schedule::<f64>::parse(bad).is_err());
    }

    #[test]
    fn parse_versioned_and_legacy_headers() {
        let schedule = kitchen_sink_schedule();
        let dump = schedule.dump();
        assert!(dump.starts_with("symla-schedule text v1\n"), "{dump}");

        // A pre-version-header dump (no first line) still parses.
        let legacy: String = dump
            .lines()
            .skip(1)
            .map(|l| format!("{l}\n"))
            .collect::<String>();
        assert_eq!(Schedule::<f64>::parse(&legacy).unwrap(), schedule);

        // A future version is rejected with the line number of the header.
        let future = format!("symla-schedule text v9999\n{legacy}");
        let err = Schedule::<f64>::parse(&future).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("newer than supported"), "{err}");

        // A malformed version number is rejected, not silently skipped.
        let garbled = format!("symla-schedule text vX\n{legacy}");
        assert!(Schedule::<f64>::parse(&garbled).is_err());
    }

    #[test]
    fn leveled_steps_round_trip_with_a_v2_header() {
        let m = MatrixId::synthetic(0);
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let x = b.load_from(m, Region::rect(0, 0, 2, 2), Level::new(3));
        let y = b.load(m, Region::col_segment(0, 0, 2));
        b.discard(y);
        b.store_to(x, Level::new(2));
        let schedule = b.finish();

        assert!(schedule.is_leveled());
        assert_eq!(schedule.text_version(), 2);
        let dump = schedule.dump();
        assert!(dump.starts_with("symla-schedule text v2\n"), "{dump}");
        assert!(
            dump.contains("load     m0 Rect[0..+2, 0..+2] -> b0 @l3"),
            "{dump}"
        );
        assert!(dump.contains("store    b0 @l2"), "{dump}");
        // the default-level load carries no suffix
        assert!(
            dump.contains("load     m0 Rect[0..+2, 0..+1] -> b1\n"),
            "{dump}"
        );

        let parsed = Schedule::<f64>::parse(&dump).unwrap_or_else(|e| panic!("{e}\n{dump}"));
        assert_eq!(parsed, schedule);
        assert_eq!(parsed.dump(), dump);

        // a garbled level annotation is rejected, not silently defaulted
        let bad = "schedule: 1 group(s), 1 step(s)\ngroup 0\n  store    b0 @lX\n";
        let err = Schedule::<f64>::parse(bad).unwrap_err();
        assert!(err.message.contains("bad level"), "{err}");
    }

    #[test]
    fn default_level_schedules_keep_the_v1_dump() {
        // builder `load`/`store` and explicit default-level `load_from`/
        // `store_to` produce identical, version-1 dumps
        let m = MatrixId::synthetic(0);
        let mut a = ScheduleBuilder::<f64>::new();
        let x = a.load(m, Region::rect(0, 0, 2, 2));
        a.store(x);
        let mut b = ScheduleBuilder::<f64>::new();
        let y = b.load_from(m, Region::rect(0, 0, 2, 2), Level::default());
        b.store_to(y, Level::default());
        let (a, b) = (a.finish(), b.finish());
        assert_eq!(a, b);
        assert!(!a.is_leveled());
        assert_eq!(a.text_version(), 1);
        assert!(a.dump().starts_with("symla-schedule text v1\n"));
        assert_eq!(a.dump(), b.dump());
    }

    #[test]
    fn empty_groups_are_dropped() {
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        b.begin_group();
        let schedule = b.finish();
        assert_eq!(schedule.num_groups(), 0);
        assert_eq!(Schedule::<f64>::default().num_steps(), 0);
    }
}
