//! The schedule intermediate representation (IR).
//!
//! An out-of-core algorithm in this workspace is expressed as a [`Schedule`]:
//! a sequence of [`TaskGroup`]s, each a self-contained unit of work whose
//! [`Step`]s move regions between slow and fast memory ([`Step::Load`] /
//! [`Step::Alloc`] / [`Step::Store`] / [`Step::Discard`]) and run block
//! kernels on the resident buffers ([`Step::Compute`]). The algorithms of
//! `symla-baselines` and `symla-core` are *schedule builders* that emit this
//! IR; the generic [`crate::engine::Engine`] then replays a schedule in one
//! of four modes (execute, execute-parallel, dry-run, trace).
//!
//! Separating "what moves when" (the IR) from "how it runs" (the engine)
//! makes every schedule:
//!
//! * **dry-runnable** — I/O and flop accounting without touching data, which
//!   subsumes per-algorithm cost bookkeeping;
//! * **traceable** — the exact transfer stream can be synthesized for bound
//!   verification without executing kernels;
//! * **distributable** — a [`TaskGroup`] only references buffers it created,
//!   so groups are the unit of placement for multi-worker execution
//!   ([`crate::engine::Engine::execute_parallel`] distributes independent
//!   groups over the workers of a shared slow memory through a
//!   work-stealing queue; `symla_core::parallel` builds its partitions on
//!   exactly this).
//!
//! Buffers are named by [`BufId`]s issued by the [`ScheduleBuilder`]. A
//! buffer is created by exactly one `Load`/`Alloc` step and consumed by
//! exactly one `Store`/`Discard` step of the same group.

use std::fmt;
use symla_matrix::kernels::FlopCount;
use symla_matrix::Scalar;
use symla_memory::{MatrixId, Region};

/// Identifier of a fast-memory buffer within a schedule.
pub type BufId = usize;

/// A contiguous slice of a fast-memory buffer, used as a kernel operand
/// (e.g. one tile-row segment of a loaded `A` gather).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufSlice {
    /// The buffer the slice lives in.
    pub buf: BufId,
    /// First element of the slice.
    pub start: usize,
    /// Number of elements.
    pub len: usize,
}

impl BufSlice {
    /// A slice covering `len` elements of `buf` from `start`.
    pub fn new(buf: BufId, start: usize, len: usize) -> Self {
        Self { buf, start, len }
    }

    /// A slice covering the whole of a buffer of `len` elements.
    pub fn whole(buf: BufId, len: usize) -> Self {
        Self { buf, start: 0, len }
    }
}

/// A block kernel applied to resident fast-memory buffers.
///
/// Each variant mirrors one of the in-core view kernels of
/// `symla_matrix::kernels::views` (or one streaming solve step of the
/// left-looking baselines). Compute steps never touch slow memory.
#[derive(Debug, Clone, PartialEq)]
pub enum ComputeOp<T: Scalar> {
    /// Rank-1 update `dst += alpha · x · yᵀ` on a rectangular buffer.
    Ger {
        /// Scaling of the product.
        alpha: T,
        /// Column operand.
        x: BufSlice,
        /// Row operand.
        y: BufSlice,
        /// Rectangular destination buffer.
        dst: BufId,
    },
    /// Symmetric rank-1 update `dst += alpha · x · xᵀ` on a packed lower
    /// triangle buffer.
    SprLower {
        /// Scaling of the product.
        alpha: T,
        /// The vector operand.
        x: BufSlice,
        /// Packed lower-triangle destination buffer.
        dst: BufId,
    },
    /// Strict-lower triangle-block update of TBS:
    /// `dst[(u,v)] += alpha · x[u] · x[v]` for `u > v`.
    TrianglePairs {
        /// Scaling of the product.
        alpha: T,
        /// One column of `A` restricted to the block's row set.
        x: BufSlice,
        /// Pair buffer (layout of [`Region::SymPairs`]).
        dst: BufId,
    },
    /// In-place Cholesky factorization of a packed lower-triangle buffer.
    CholeskyInPlace {
        /// The packed diagonal-block buffer.
        dst: BufId,
        /// Added to in-tile pivot indices when reporting a non-SPD pivot.
        pivot_base: usize,
    },
    /// In-place LU factorization (no pivoting) of a rectangular buffer.
    LuInPlace {
        /// The square tile buffer.
        dst: BufId,
        /// Added to in-tile pivot indices when reporting a singular pivot.
        pivot_base: usize,
    },
    /// One streamed column step of the right triangular solve
    /// `X ← X · L⁻ᵀ`: with `seg` holding column `col` of the diagonal block
    /// of `L` from its diagonal element down, divides `dst[:, col]` by
    /// `seg[0]` and subtracts `dst[:, col] · seg[j - col]` from every later
    /// column `j`.
    TrsmRightStep {
        /// The streamed `L` column segment.
        seg: BufId,
        /// The panel tile being solved.
        dst: BufId,
        /// In-tile column index being finalized.
        col: usize,
        /// Pivot index reported if `seg[0]` is zero or non-finite.
        pivot: usize,
    },
    /// One streamed column step of the LU sub-diagonal solve
    /// `X · U₁₁ = tile`: with `seg` holding rows `0..=col` of column `col`
    /// of `U₁₁`, eliminates the contributions of columns `q < col` and
    /// divides by the diagonal `seg[col]`.
    LuColSolveStep {
        /// The streamed `U` column segment.
        seg: BufId,
        /// The tile being solved.
        dst: BufId,
        /// In-tile column index being finalized.
        col: usize,
        /// Pivot index reported if the diagonal is zero or non-finite.
        pivot: usize,
    },
    /// One streamed column step of the LU super-diagonal solve
    /// `L₁₁ · X = tile` (unit diagonal): with `seg` holding the strictly
    /// sub-diagonal part of column `row` of `L₁₁`, eliminates row `row` from
    /// every row below it.
    LuRowElimStep {
        /// The streamed `L` column segment (may be empty for the last row).
        seg: BufId,
        /// The tile being solved.
        dst: BufId,
        /// In-tile row index whose value is final.
        row: usize,
    },
}

/// One primitive action of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum Step<T: Scalar> {
    /// Transfer a region from slow memory into a new fast-memory buffer
    /// (counted as load traffic).
    Load {
        /// Source matrix.
        matrix: MatrixId,
        /// Region transferred.
        region: Region,
        /// Buffer created by this step.
        dst: BufId,
    },
    /// Reserve fast-memory space for a region without reading it (no load
    /// traffic); used for outputs that are fully overwritten.
    Alloc {
        /// Matrix the buffer will be stored back to.
        matrix: MatrixId,
        /// Region the buffer mirrors.
        region: Region,
        /// Buffer created by this step.
        dst: BufId,
    },
    /// Run a block kernel on resident buffers.
    Compute(ComputeOp<T>),
    /// Attribute arithmetic work to the schedule (kept as an explicit step so
    /// dry runs account flops exactly like executions).
    Flops(FlopCount),
    /// Write a buffer back to slow memory (counted as store traffic) and
    /// release its fast-memory space.
    Store {
        /// The buffer consumed.
        buf: BufId,
    },
    /// Release a buffer without writing it back (no store traffic).
    Discard {
        /// The buffer consumed.
        buf: BufId,
    },
}

/// A self-contained unit of work: a sequence of steps that creates, uses and
/// releases its own buffers.
///
/// A group never references a buffer created by another group, so groups are
/// the granularity of placement for multi-worker execution. For the update
/// kernels (SYRK / GEMM) the groups' output regions are disjoint and any
/// assignment of whole groups to workers is valid; the left-looking
/// factorizations (Cholesky / LU) additionally order their groups through
/// slow memory, so those must replay in sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskGroup<T: Scalar> {
    /// Phase label the group's traffic is attributed to. `None` leaves the
    /// machine's current phase untouched (so a caller like LBC can attribute
    /// a whole sub-schedule to one phase).
    pub phase: Option<String>,
    /// The steps, in program order.
    pub steps: Vec<Step<T>>,
}

impl<T: Scalar> TaskGroup<T> {
    /// Elements this group loads from slow memory.
    pub fn loaded_elements(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| match s {
                Step::Load { region, .. } => region.len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Elements this group stores back to slow memory.
    pub fn stored_elements(&self) -> u64 {
        let mut sizes = std::collections::BTreeMap::new();
        let mut stored = 0u64;
        for step in &self.steps {
            match step {
                Step::Load { region, dst, .. } | Step::Alloc { region, dst, .. } => {
                    sizes.insert(*dst, region.len() as u64);
                }
                Step::Store { buf } => stored += sizes.remove(buf).unwrap_or(0),
                _ => {}
            }
        }
        stored
    }
}

/// A complete schedule: an ordered sequence of task groups.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule<T: Scalar> {
    /// The task groups, in sequential execution order.
    pub groups: Vec<TaskGroup<T>>,
}

impl<T: Scalar> Schedule<T> {
    /// Number of task groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Total number of steps over all groups.
    pub fn num_steps(&self) -> usize {
        self.groups.iter().map(|g| g.steps.len()).sum()
    }
}

impl<T: Scalar> fmt::Display for Schedule<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "schedule: {} group(s), {} step(s)",
            self.num_groups(),
            self.num_steps()
        )
    }
}

impl fmt::Display for BufSlice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}[{}..+{}]", self.buf, self.start, self.len)
    }
}

impl<T: Scalar> fmt::Display for ComputeOp<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeOp::Ger { alpha, x, y, dst } => {
                write!(f, "ger      alpha={alpha} x={x} y={y} -> b{dst}")
            }
            ComputeOp::SprLower { alpha, x, dst } => {
                write!(f, "spr      alpha={alpha} x={x} -> b{dst}")
            }
            ComputeOp::TrianglePairs { alpha, x, dst } => {
                write!(f, "tripairs alpha={alpha} x={x} -> b{dst}")
            }
            ComputeOp::CholeskyInPlace { dst, pivot_base } => {
                write!(f, "chol     b{dst} (pivot base {pivot_base})")
            }
            ComputeOp::LuInPlace { dst, pivot_base } => {
                write!(f, "lu       b{dst} (pivot base {pivot_base})")
            }
            ComputeOp::TrsmRightStep {
                seg,
                dst,
                col,
                pivot,
            } => write!(f, "trsmstep seg=b{seg} col={col} pivot={pivot} -> b{dst}"),
            ComputeOp::LuColSolveStep {
                seg,
                dst,
                col,
                pivot,
            } => write!(f, "lucol    seg=b{seg} col={col} pivot={pivot} -> b{dst}"),
            ComputeOp::LuRowElimStep { seg, dst, row } => {
                write!(f, "lurow    seg=b{seg} row={row} -> b{dst}")
            }
        }
    }
}

impl<T: Scalar> fmt::Display for Step<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Load {
                matrix,
                region,
                dst,
            } => write!(f, "load     m{} {region} -> b{dst}", matrix.raw()),
            Step::Alloc {
                matrix,
                region,
                dst,
            } => write!(f, "alloc    m{} {region} -> b{dst}", matrix.raw()),
            Step::Compute(op) => write!(f, "{op}"),
            Step::Flops(fl) => write!(f, "flops    mults={} adds={}", fl.mults, fl.adds),
            Step::Store { buf } => write!(f, "store    b{buf}"),
            Step::Discard { buf } => write!(f, "discard  b{buf}"),
        }
    }
}

impl<T: Scalar> Schedule<T> {
    /// Compact textual dump: a header per task group and one line per step,
    /// stable enough to diff optimized-vs-seed schedules by eye (and locked
    /// by a golden-file test). The first slice of the planned on-disk
    /// schedule serialization.
    ///
    /// ```
    /// use symla_memory::{MatrixId, Region};
    /// use symla_sched::ScheduleBuilder;
    ///
    /// let mut b = ScheduleBuilder::<f64>::new();
    /// let x = b.load(MatrixId::synthetic(0), Region::rect(0, 0, 2, 2));
    /// b.store(x);
    /// let text = b.finish().dump();
    /// assert!(text.contains("load     m0 Rect[0..+2, 0..+2] -> b0"));
    /// assert!(text.contains("store    b0"));
    /// ```
    pub fn dump(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{self}");
        for (g, group) in self.groups.iter().enumerate() {
            match &group.phase {
                Some(p) => {
                    let _ = writeln!(out, "group {g} phase={p}");
                }
                None => {
                    let _ = writeln!(out, "group {g}");
                }
            }
            for step in &group.steps {
                let _ = writeln!(out, "  {step}");
            }
        }
        out
    }
}

/// Incremental constructor for [`Schedule`]s.
///
/// Builders mirror the shape of the original executor loops: where the seed
/// code called `machine.load(...)`, a builder calls [`ScheduleBuilder::load`]
/// and receives a [`BufId`] to thread through the compute steps. Buffer ids
/// are unique across the whole schedule.
#[derive(Debug)]
pub struct ScheduleBuilder<T: Scalar> {
    groups: Vec<TaskGroup<T>>,
    current: TaskGroup<T>,
    started: bool,
    phase: Option<String>,
    next_buf: BufId,
}

impl<T: Scalar> Default for ScheduleBuilder<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> ScheduleBuilder<T> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            groups: Vec::new(),
            current: TaskGroup::default(),
            started: false,
            phase: None,
            next_buf: 0,
        }
    }

    /// Sets the phase label assigned to task groups begun from now on.
    pub fn set_phase(&mut self, phase: &str) {
        self.phase = Some(phase.to_string());
    }

    /// Closes the current group (if it has steps) and begins a new one
    /// carrying the current phase label.
    pub fn begin_group(&mut self) {
        self.flush_group();
        self.started = true;
    }

    fn flush_group(&mut self) {
        if !self.current.steps.is_empty() {
            self.groups.push(std::mem::take(&mut self.current));
        }
        self.current.phase = self.phase.clone();
    }

    fn push(&mut self, step: Step<T>) {
        if !self.started {
            self.begin_group();
        }
        self.current.steps.push(step);
    }

    /// Emits a load step and returns the id of the created buffer.
    pub fn load(&mut self, matrix: MatrixId, region: Region) -> BufId {
        let dst = self.next_buf;
        self.next_buf += 1;
        self.push(Step::Load {
            matrix,
            region,
            dst,
        });
        dst
    }

    /// Emits an allocate-without-reading step and returns the buffer id.
    pub fn alloc(&mut self, matrix: MatrixId, region: Region) -> BufId {
        let dst = self.next_buf;
        self.next_buf += 1;
        self.push(Step::Alloc {
            matrix,
            region,
            dst,
        });
        dst
    }

    /// Emits a compute step.
    pub fn compute(&mut self, op: ComputeOp<T>) {
        self.push(Step::Compute(op));
    }

    /// Emits a flop-accounting step.
    pub fn flops(&mut self, flops: FlopCount) {
        self.push(Step::Flops(flops));
    }

    /// Emits a store step consuming `buf`.
    pub fn store(&mut self, buf: BufId) {
        self.push(Step::Store { buf });
    }

    /// Emits a discard step consuming `buf`.
    pub fn discard(&mut self, buf: BufId) {
        self.push(Step::Discard { buf });
    }

    /// Finishes the build and returns the schedule.
    pub fn finish(mut self) -> Schedule<T> {
        self.flush_group();
        Schedule {
            groups: self.groups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_groups_and_buffer_ids() {
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let m = MatrixId::synthetic(0);
        let c = b.load(m, Region::rect(0, 0, 2, 2));
        let x = b.load(m, Region::col_segment(0, 0, 2));
        b.compute(ComputeOp::Ger {
            alpha: 1.0,
            x: BufSlice::whole(x, 2),
            y: BufSlice::whole(x, 2),
            dst: c,
        });
        b.flops(FlopCount::new(4, 4));
        b.discard(x);
        b.store(c);

        b.set_phase("p2");
        b.begin_group();
        let d = b.load(m, Region::rect(2, 2, 1, 1));
        b.discard(d);

        let schedule = b.finish();
        assert_eq!(schedule.num_groups(), 2);
        assert_eq!(schedule.num_steps(), 8);
        assert_eq!(schedule.groups[0].phase, None);
        assert_eq!(schedule.groups[1].phase.as_deref(), Some("p2"));
        assert_ne!(c, x);
        assert_ne!(d, c);
        assert_ne!(d, x);
        assert!(schedule.to_string().contains("2 group(s)"));
    }

    #[test]
    fn group_volume_helpers() {
        let mut b = ScheduleBuilder::<f64>::new();
        let m = MatrixId::synthetic(1);
        let c = b.load(m, Region::rect(0, 0, 3, 3));
        let z = b.alloc(m, Region::rect(3, 0, 1, 3));
        let x = b.load(m, Region::col_segment(0, 0, 3));
        b.discard(x);
        b.store(c);
        b.store(z);
        let schedule = b.finish();
        let group = &schedule.groups[0];
        assert_eq!(group.loaded_elements(), 12);
        assert_eq!(group.stored_elements(), 12);
    }

    #[test]
    fn empty_groups_are_dropped() {
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        b.begin_group();
        let schedule = b.finish();
        assert_eq!(schedule.num_groups(), 0);
        assert_eq!(Schedule::<f64>::default().num_steps(), 0);
    }
}
