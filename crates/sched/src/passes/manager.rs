//! The pass manager: chains passes, accounts every one of them, and
//! fail-closes on semantic drift.
//!
//! [`PassManager::optimize`] runs each registered pass in order and records
//! a [`StageOutcome`] per pass: the pass's own [`PassReport`] plus the
//! **engine-measured** dry-run [`IoStats`] before and after — so a claimed
//! saving is always backed by the same accounting an execution would
//! produce. With verification enabled (the default for the stock
//! pipelines), the seed schedule's symbolic effects are captured first and
//! the final schedule is checked against them; any divergence aborts the
//! pipeline with [`PassError::VerificationFailed`](super::PassError) before
//! a wrong schedule can reach an engine.

use super::verify::{diff_effects, schedule_effects};
use super::{Pass, PassError, PassReport, Result};
use crate::engine::Engine;
use crate::ir::Schedule;
use std::fmt;
use symla_matrix::Scalar;
use symla_memory::IoStats;

/// Dry-run accounting of one pass: report plus before/after stats.
#[derive(Debug, Clone)]
pub struct StageOutcome {
    /// What the pass says it did.
    pub report: PassReport,
    /// Dry-run stats of the schedule the pass received.
    pub before: IoStats,
    /// Dry-run stats of the schedule the pass produced.
    pub after: IoStats,
}

impl StageOutcome {
    /// Load volume saved by this pass (elements; negative = regression).
    pub fn loads_saved(&self) -> i64 {
        self.before.volume.loads as i64 - self.after.volume.loads as i64
    }

    /// Store volume saved by this pass (elements).
    pub fn stores_saved(&self) -> i64 {
        self.before.volume.stores as i64 - self.after.volume.stores as i64
    }

    /// Transfer events saved by this pass (load + store events).
    pub fn events_saved(&self) -> i64 {
        (self.before.load_events + self.before.store_events) as i64
            - (self.after.load_events + self.after.store_events) as i64
    }
}

impl fmt::Display for StageOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} loads {:>10} -> {:>10}  events {:>6} -> {:>6}  peak {:>8} -> {:>8}",
            self.report.pass,
            self.before.volume.loads,
            self.after.volume.loads,
            self.before.load_events + self.before.store_events,
            self.after.load_events + self.after.store_events,
            self.before.peak_resident,
            self.after.peak_resident,
        )
    }
}

/// The result of an optimization pipeline run.
#[derive(Debug, Clone)]
pub struct Optimized<T: Scalar> {
    /// The optimized schedule, ready for any engine mode.
    pub schedule: Schedule<T>,
    /// One outcome per pass, in execution order.
    pub stages: Vec<StageOutcome>,
    /// Dry-run stats of the seed schedule.
    pub seed_stats: IoStats,
    /// Dry-run stats of the final schedule.
    pub final_stats: IoStats,
}

impl<T: Scalar> Optimized<T> {
    /// Total load volume saved over the seed (elements).
    pub fn loads_saved(&self) -> i64 {
        self.seed_stats.volume.loads as i64 - self.final_stats.volume.loads as i64
    }

    /// Total store volume saved over the seed (elements).
    pub fn stores_saved(&self) -> i64 {
        self.seed_stats.volume.stores as i64 - self.final_stats.volume.stores as i64
    }

    /// Total transfer events saved over the seed.
    pub fn events_saved(&self) -> i64 {
        (self.seed_stats.load_events + self.seed_stats.store_events) as i64
            - (self.final_stats.load_events + self.final_stats.store_events) as i64
    }

    /// Whether any transfer metric (volume or events, either direction)
    /// regressed relative to the seed — the property the CI smoke test
    /// enforces per pass and per pipeline.
    pub fn regressed(&self) -> bool {
        self.final_stats.volume.loads > self.seed_stats.volume.loads
            || self.final_stats.volume.stores > self.seed_stats.volume.stores
            || self.final_stats.load_events > self.seed_stats.load_events
            || self.final_stats.store_events > self.seed_stats.store_events
    }
}

/// Chains [`Pass`]es over a schedule with per-pass dry-run accounting.
///
/// Build one by hand with [`PassManager::with_pass`] or from a declarative
/// [`super::PassPipeline`]. See the [module docs](self).
pub struct PassManager<T: Scalar> {
    passes: Vec<Box<dyn Pass<T>>>,
    verify: bool,
}

impl<T: Scalar> Default for PassManager<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Scalar> fmt::Debug for PassManager<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .field("verify", &self.verify)
            .finish()
    }
}

impl<T: Scalar> PassManager<T> {
    /// An empty manager with verification enabled.
    pub fn new() -> Self {
        Self {
            passes: Vec::new(),
            verify: true,
        }
    }

    /// Appends a pass to the chain.
    pub fn with_pass(mut self, pass: Box<dyn Pass<T>>) -> Self {
        self.passes.push(pass);
        self
    }

    /// Enables or disables end-of-pipeline verification.
    pub fn with_verification(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Names of the registered passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs the pass chain over `schedule`.
    ///
    /// `default_phase` is the phase unlabelled traffic is attributed to in
    /// the dry-run accounting (pass the machine's phase, usually `"main"`).
    pub fn optimize(&self, schedule: &Schedule<T>, default_phase: &str) -> Result<Optimized<T>> {
        let reference = if self.verify {
            Some(schedule_effects(schedule)?)
        } else {
            None
        };
        let seed_stats = Engine::dry_run(schedule, default_phase);
        let mut current = schedule.clone();
        let mut stages = Vec::with_capacity(self.passes.len());
        let mut before = seed_stats.clone();
        for pass in &self.passes {
            let (next, report) = pass.run(current)?;
            let after = Engine::dry_run(&next, default_phase);
            stages.push(StageOutcome {
                report,
                before: before.clone(),
                after: after.clone(),
            });
            before = after;
            current = next;
        }
        if let Some(reference) = reference {
            let effects = schedule_effects(&current)?;
            if let Some(msg) = diff_effects(&reference, &effects) {
                return Err(PassError::VerificationFailed(msg));
            }
        }
        // `before` is the last stage's `after` (or the seed stats for an
        // empty chain) — no extra dry run needed.
        Ok(Optimized {
            schedule: current,
            stages,
            seed_stats,
            final_stats: before,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BufSlice, ComputeOp, ScheduleBuilder};
    use crate::passes::{PassPipeline, Verify};
    use symla_memory::{MatrixId, Region};

    fn redundant_schedule() -> Schedule<f64> {
        let id = MatrixId::synthetic(9);
        let mut b = ScheduleBuilder::<f64>::new();
        let c = b.load(id, Region::rect(0, 0, 2, 2));
        let x = b.load(id, Region::col_segment(4, 0, 2));
        let y = b.load(id, Region::col_segment(4, 0, 2));
        b.compute(ComputeOp::Ger {
            alpha: 1.0,
            x: BufSlice::whole(x, 2),
            y: BufSlice::whole(y, 2),
            dst: c,
        });
        b.discard(x);
        b.discard(y);
        b.store(c);
        b.finish()
    }

    #[test]
    fn manager_records_per_pass_deltas() {
        let seed = redundant_schedule();
        let manager: PassManager<f64> = PassPipeline::standard().manager();
        assert_eq!(manager.pass_names(), vec!["merge-loads", "dead-store"]);
        let opt = manager.optimize(&seed, "main").unwrap();
        assert_eq!(opt.stages.len(), 2);
        assert_eq!(opt.stages[0].loads_saved(), 2);
        assert_eq!(opt.stages[1].loads_saved(), 0);
        assert_eq!(opt.loads_saved(), 2);
        assert!(!opt.regressed());
        assert!(opt.stages[0].to_string().contains("merge-loads"));
        // chained before/after line up
        assert_eq!(opt.stages[0].after, opt.stages[1].before);
        assert_eq!(opt.stages[1].after, opt.final_stats);
        assert_eq!(opt.seed_stats, opt.stages[0].before);
    }

    #[test]
    fn empty_pipeline_is_identity() {
        let seed = redundant_schedule();
        let manager: PassManager<f64> = PassPipeline::none().manager();
        let opt = manager.optimize(&seed, "main").unwrap();
        assert!(opt.stages.is_empty());
        assert_eq!(opt.schedule, seed);
        assert_eq!(opt.loads_saved(), 0);
    }

    /// A deliberately broken pass for the fail-closed test.
    struct DropEverything;
    impl Pass<f64> for DropEverything {
        fn name(&self) -> &'static str {
            "drop-everything"
        }
        fn run(&self, _s: Schedule<f64>) -> Result<(Schedule<f64>, PassReport)> {
            Ok((Schedule::default(), PassReport::new("drop-everything")))
        }
    }

    #[test]
    fn verification_fails_closed_on_a_broken_pass() {
        let seed = redundant_schedule();
        let manager = PassManager::new().with_pass(Box::new(DropEverything));
        let err = manager.optimize(&seed, "main").unwrap_err();
        assert!(matches!(err, PassError::VerificationFailed(_)), "{err}");
        // without verification the broken schedule would sail through
        let manager = PassManager::new()
            .with_pass(Box::new(DropEverything))
            .with_verification(false);
        assert!(manager.optimize(&seed, "main").is_ok());
    }

    #[test]
    fn explicit_verify_pass_composes() {
        let seed = redundant_schedule();
        let manager: PassManager<f64> = PassManager::new()
            .with_pass(Box::new(crate::passes::MergeLoads::default()))
            .with_pass(Box::new(Verify::against(&seed).unwrap()));
        let opt = manager.optimize(&seed, "main").unwrap();
        assert_eq!(opt.stages.len(), 2);
        assert!(opt.stages[1].report.is_noop());
    }
}
