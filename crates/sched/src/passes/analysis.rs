//! Shared step-stream analyses used by the optimization passes: buffer
//! usage tables, element-level region overlap, and residency profiles.

use super::{PassError, Result};
use crate::ir::{BufId, BufSlice, ComputeOp, Step};
use std::collections::{HashMap, HashSet};
use symla_matrix::Scalar;
use symla_memory::{MatrixId, Region};

/// How a buffer leaves fast memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ConsumeKind {
    /// Written back to slow memory.
    Store,
    /// Released without writing.
    Discard,
}

/// How a buffer entered fast memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OriginKind {
    /// Read from slow memory.
    Load,
    /// Allocated zeroed.
    Alloc,
}

/// Everything a pass needs to know about one buffer of a step stream.
#[derive(Debug, Clone)]
pub(crate) struct BufInfo {
    /// Index of the creating `Load`/`Alloc` step.
    pub created: usize,
    /// Load or Alloc.
    pub origin: OriginKind,
    /// Matrix the buffer mirrors.
    pub matrix: MatrixId,
    /// Region the buffer mirrors.
    pub region: Region,
    /// Index and kind of the consuming `Store`/`Discard` step, if any.
    pub consumed: Option<(usize, ConsumeKind)>,
    /// Indices of compute steps writing into the buffer (`dst`).
    pub dirtied_at: Vec<usize>,
    /// Indices of compute steps reading the buffer through a `BufSlice`.
    pub slice_uses: Vec<usize>,
    /// Indices of compute steps reading the buffer whole (solver `seg`s).
    pub whole_uses: Vec<usize>,
}

impl BufInfo {
    /// Whether the buffer is ever written by a compute step.
    pub fn is_dirty(&self) -> bool {
        !self.dirtied_at.is_empty()
    }
}

/// Destination buffer of a compute op.
pub(crate) fn op_dst<T: Scalar>(op: &ComputeOp<T>) -> BufId {
    match op {
        ComputeOp::Ger { dst, .. }
        | ComputeOp::SprLower { dst, .. }
        | ComputeOp::TrianglePairs { dst, .. }
        | ComputeOp::CholeskyInPlace { dst, .. }
        | ComputeOp::LuInPlace { dst, .. }
        | ComputeOp::TrsmRightStep { dst, .. }
        | ComputeOp::LuColSolveStep { dst, .. }
        | ComputeOp::LuRowElimStep { dst, .. } => *dst,
    }
}

/// Slice operands of a compute op.
pub(crate) fn op_slices<T: Scalar>(op: &ComputeOp<T>) -> Vec<BufSlice> {
    match op {
        ComputeOp::Ger { x, y, .. } => vec![*x, *y],
        ComputeOp::SprLower { x, .. } | ComputeOp::TrianglePairs { x, .. } => vec![*x],
        _ => Vec::new(),
    }
}

/// Whole-buffer operands of a compute op (the streamed solver segments).
pub(crate) fn op_whole_operands<T: Scalar>(op: &ComputeOp<T>) -> Vec<BufId> {
    match op {
        ComputeOp::TrsmRightStep { seg, .. }
        | ComputeOp::LuColSolveStep { seg, .. }
        | ComputeOp::LuRowElimStep { seg, .. } => vec![*seg],
        _ => Vec::new(),
    }
}

/// Rewrites every buffer reference in `op` through `f`: a `Some((new, off))`
/// result renames the reference, shifting slice starts by `off`.
/// Whole-buffer references (`dst`, solver `seg`s) only accept `off == 0`
/// (callers guarantee this by excluding whole-referenced buffers from
/// offsetting transformations).
pub(crate) fn remap_op<T: Scalar>(
    op: &mut ComputeOp<T>,
    f: impl Fn(BufId) -> Option<(BufId, usize)>,
) {
    let fix_slice = |s: &mut BufSlice| {
        if let Some((new, off)) = f(s.buf) {
            s.buf = new;
            s.start += off;
        }
    };
    let fix_whole = |b: &mut BufId| {
        if let Some((new, off)) = f(*b) {
            debug_assert_eq!(off, 0, "whole-buffer reference cannot be offset");
            *b = new;
        }
    };
    match op {
        ComputeOp::Ger { x, y, dst, .. } => {
            fix_slice(x);
            fix_slice(y);
            fix_whole(dst);
        }
        ComputeOp::SprLower { x, dst, .. } | ComputeOp::TrianglePairs { x, dst, .. } => {
            fix_slice(x);
            fix_whole(dst);
        }
        ComputeOp::CholeskyInPlace { dst, .. } | ComputeOp::LuInPlace { dst, .. } => {
            fix_whole(dst);
        }
        ComputeOp::TrsmRightStep { seg, dst, .. }
        | ComputeOp::LuColSolveStep { seg, dst, .. }
        | ComputeOp::LuRowElimStep { seg, dst, .. } => {
            fix_whole(seg);
            fix_whole(dst);
        }
    }
}

/// Builds the buffer table of a step stream. Buffers referenced but never
/// created in the stream (legal in serial schedules whose buffers straddle
/// task groups) are *not* in the table; passes must leave them untouched.
/// Errors on double-creation or double-consumption.
pub(crate) fn buffer_table<'a, T: Scalar>(
    steps: impl IntoIterator<Item = &'a Step<T>>,
) -> Result<HashMap<BufId, BufInfo>> {
    let mut table: HashMap<BufId, BufInfo> = HashMap::new();
    for (i, step) in steps.into_iter().enumerate() {
        match step {
            Step::Load {
                matrix,
                region,
                dst,
                ..
            }
            | Step::Alloc {
                matrix,
                region,
                dst,
            } => {
                let origin = if matches!(step, Step::Load { .. }) {
                    OriginKind::Load
                } else {
                    OriginKind::Alloc
                };
                if table.contains_key(dst) {
                    return Err(PassError::Invalid(format!(
                        "buffer {dst} created twice (step {i})"
                    )));
                }
                table.insert(
                    *dst,
                    BufInfo {
                        created: i,
                        origin,
                        matrix: *matrix,
                        region: region.clone(),
                        consumed: None,
                        dirtied_at: Vec::new(),
                        slice_uses: Vec::new(),
                        whole_uses: Vec::new(),
                    },
                );
            }
            Step::Store { buf, .. } | Step::Discard { buf } => {
                let kind = if matches!(step, Step::Store { .. }) {
                    ConsumeKind::Store
                } else {
                    ConsumeKind::Discard
                };
                if let Some(info) = table.get_mut(buf) {
                    if info.consumed.is_some() {
                        return Err(PassError::Invalid(format!(
                            "buffer {buf} consumed twice (step {i})"
                        )));
                    }
                    info.consumed = Some((i, kind));
                }
            }
            Step::Compute(op) => {
                let dst = op_dst(op);
                if let Some(info) = table.get_mut(&dst) {
                    info.dirtied_at.push(i);
                }
                for s in op_slices(op) {
                    if let Some(info) = table.get_mut(&s.buf) {
                        info.slice_uses.push(i);
                    }
                }
                for b in op_whole_operands(op) {
                    if let Some(info) = table.get_mut(&b) {
                        info.whole_uses.push(i);
                    }
                }
            }
            Step::Flops(_) => {}
        }
    }
    Ok(table)
}

/// Residency (elements resident in fast memory) *after* each step of the
/// stream, starting from `resident_in` elements already resident. Buffers
/// not created in the stream contribute nothing on consumption.
pub(crate) fn residency_profile<T: Scalar>(steps: &[Step<T>], resident_in: usize) -> Vec<usize> {
    let mut sizes: HashMap<BufId, usize> = HashMap::new();
    let mut resident = resident_in;
    let mut out = Vec::with_capacity(steps.len());
    for step in steps {
        match step {
            Step::Load { region, dst, .. } | Step::Alloc { region, dst, .. } => {
                resident += region.len();
                sizes.insert(*dst, region.len());
            }
            Step::Store { buf, .. } | Step::Discard { buf } => {
                resident -= sizes.remove(buf).unwrap_or(0);
            }
            _ => {}
        }
        out.push(resident);
    }
    out
}

/// Per-matrix element sets, the currency of overlap and dependence checks.
#[derive(Debug, Clone, Default)]
pub(crate) struct CellSet {
    /// Cells per matrix id.
    pub cells: HashMap<MatrixId, HashSet<(usize, usize)>>,
}

impl CellSet {
    /// Inserts all cells of `region` of `matrix`.
    pub fn insert_region(&mut self, matrix: MatrixId, region: &Region) {
        self.cells.entry(matrix).or_default().extend(region.cells());
    }

    /// Whether any cell of `region` of `matrix` is in the set.
    pub fn overlaps_region(&self, matrix: MatrixId, region: &Region) -> bool {
        match self.cells.get(&matrix) {
            None => false,
            Some(set) => region.cells().iter().any(|c| set.contains(c)),
        }
    }

    /// Whether the two sets share any cell of any matrix.
    pub fn overlaps(&self, other: &CellSet) -> bool {
        self.shared_cells(other) > 0
    }

    /// Number of cells shared with `other` (the locality objective of the
    /// reorder pass).
    pub fn shared_cells(&self, other: &CellSet) -> usize {
        let mut shared = 0;
        for (m, set) in &self.cells {
            if let Some(os) = other.cells.get(m) {
                // iterate the smaller set
                let (a, b) = if set.len() <= os.len() {
                    (set, os)
                } else {
                    (os, set)
                };
                shared += a.iter().filter(|c| b.contains(*c)).count();
            }
        }
        shared
    }

    /// Merges `other` into `self`.
    pub fn union_with(&mut self, other: &CellSet) {
        for (m, set) in &other.cells {
            self.cells
                .entry(*m)
                .or_default()
                .extend(set.iter().copied());
        }
    }
}
