//! Schedule-optimization passes: IR-to-IR rewrites that reduce slow↔fast
//! traffic while provably preserving what a schedule computes.
//!
//! The schedule [`crate::ir`] makes the I/O stream of an out-of-core
//! algorithm a first-class artifact, so — like a compiler — we can *rewrite*
//! it. A [`Pass`] consumes a [`Schedule`] and returns a transformed schedule
//! plus a machine-readable [`PassReport`] of what it removed, merged or
//! moved. The [`PassManager`] chains passes and records
//! the per-pass dry-run [`IoStats`](symla_memory::IoStats) delta, so every
//! claimed saving is backed by the engine's own accounting.
//!
//! The concrete passes:
//!
//! * [`MergeLoads`] — redundant-load elimination
//!   (drop a `Load` whose region is already resident in the group, or revive
//!   a clean buffer whose `Discard` can be deferred within a residency
//!   budget) and coalescing of adjacent loads of contiguous regions of the
//!   same matrix into one transfer;
//! * [`DeadStoreElimination`] — turn
//!   stores into discards when the stored region is fully overwritten before
//!   being read again, or when a never-modified buffer would write back
//!   unchanged data; drop `Alloc`/`Discard` pairs that are never used;
//! * [`ReorderLocality`] — greedily order
//!   independent [`TaskGroup`](crate::ir::TaskGroup)s so that consecutive
//!   groups share as much of their data footprint as possible, and
//!   optionally fuse overlapping neighbours so [`MergeLoads`] can carry that
//!   residency across the former group boundary;
//! * [`Verify`] — assert that an optimized schedule is
//!   semantically equivalent to its seed by symbolically executing both
//!   (a per-element dataflow hash) and comparing the final slow-memory
//!   state, without touching any data.
//!
//! Every pass preserves three invariants, checked by the equivalence tests:
//! executing the optimized schedule leaves slow memory **bitwise identical**
//! to the seed execution, flop accounting is unchanged, and the dry-run
//! transfer volume and event counts never increase. Peak residency never
//! exceeds `max(seed peak, budget)`.
//!
//! ```
//! use symla_memory::{MatrixId, Region};
//! use symla_sched::passes::{PassManager, PassPipeline};
//! use symla_sched::{Engine, ScheduleBuilder};
//!
//! // A schedule that loads the same region twice while it is resident.
//! let id = MatrixId::synthetic(0);
//! let mut b = ScheduleBuilder::<f64>::new();
//! let x = b.load(id, Region::rect(0, 0, 4, 1));
//! let y = b.load(id, Region::rect(0, 0, 4, 1)); // redundant
//! b.discard(y);
//! b.discard(x);
//! let seed = b.finish();
//!
//! let manager: PassManager<f64> = PassPipeline::standard().manager();
//! let optimized = manager.optimize(&seed, "main").unwrap();
//! assert_eq!(optimized.seed_stats.volume.loads, 8);
//! assert_eq!(optimized.final_stats.volume.loads, 4);
//! ```

pub mod dead_store;
pub mod manager;
pub mod merge_loads;
pub mod reorder;
pub mod verify;

pub(crate) mod analysis;

pub use dead_store::DeadStoreElimination;
pub use manager::{Optimized, PassManager, StageOutcome};
pub use merge_loads::MergeLoads;
pub use reorder::ReorderLocality;
pub use verify::{schedule_effects, ScheduleEffects, Verify};

use crate::ir::Schedule;
use std::fmt;
use symla_matrix::Scalar;

/// Errors raised while analyzing or rewriting a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassError {
    /// The input schedule is malformed (buffer created twice, consumed
    /// twice, referenced while not resident, slice out of bounds, ...).
    Invalid(String),
    /// The optimized schedule is not semantically equivalent to the seed.
    VerificationFailed(String),
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::Invalid(msg) => write!(f, "invalid schedule: {msg}"),
            PassError::VerificationFailed(msg) => write!(f, "verification failed: {msg}"),
        }
    }
}

impl std::error::Error for PassError {}

/// Result alias for pass operations.
pub type Result<T> = std::result::Result<T, PassError>;

/// Machine-readable summary of what one pass did to a schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassReport {
    /// Name of the pass that produced this report.
    pub pass: String,
    /// Elements of load traffic eliminated outright (redundant loads).
    pub loads_eliminated: u64,
    /// Load transfer events removed by coalescing contiguous regions (the
    /// element volume of merged loads is unchanged).
    pub load_events_merged: u64,
    /// Elements of store traffic eliminated (dead stores).
    pub stores_eliminated: u64,
    /// Store transfer events removed.
    pub store_events_eliminated: u64,
    /// IR steps removed from the schedule.
    pub steps_removed: u64,
    /// Task groups whose position changed.
    pub groups_moved: u64,
    /// Task group fusions performed (each fusion merges two groups).
    pub groups_fused: u64,
}

impl PassReport {
    /// An empty report for the named pass.
    pub fn new(pass: &str) -> Self {
        Self {
            pass: pass.to_string(),
            ..Self::default()
        }
    }

    /// Whether the pass changed nothing.
    pub fn is_noop(&self) -> bool {
        self.loads_eliminated == 0
            && self.load_events_merged == 0
            && self.stores_eliminated == 0
            && self.store_events_eliminated == 0
            && self.steps_removed == 0
            && self.groups_moved == 0
            && self.groups_fused == 0
    }
}

impl fmt::Display for PassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: -{} load elts, -{} load events (merged), -{} store elts, \
             -{} store events, -{} steps, {} groups moved, {} fused",
            self.pass,
            self.loads_eliminated,
            self.load_events_merged,
            self.stores_eliminated,
            self.store_events_eliminated,
            self.steps_removed,
            self.groups_moved,
            self.groups_fused
        )
    }
}

/// A schedule-to-schedule rewrite with a machine-readable effect report.
///
/// Passes must preserve the computation: the [`Verify`] pass (and the
/// equivalence tests) hold them to bitwise-identical execution results and
/// unchanged flop accounting.
pub trait Pass<T: Scalar> {
    /// Short stable name of the pass (used in reports).
    fn name(&self) -> &'static str;

    /// Rewrites `schedule`, returning the transformed schedule and a report
    /// of the steps removed/merged/moved.
    fn run(&self, schedule: Schedule<T>) -> Result<(Schedule<T>, PassReport)>;
}

/// Declarative pass-pipeline configuration: the `optimize` knob of the
/// high-level API (`symla_core::api`) and the A/B experiment harness.
///
/// A pipeline is turned into a concrete [`PassManager`] with
/// [`PassPipeline::manager`]. The two stock pipelines:
///
/// * [`PassPipeline::standard`] — merge loads + dead-store elimination, no
///   residency budget (peak stays within the seed's peak), verification on;
/// * [`PassPipeline::locality`] — group reordering with fusion first, then
///   merge loads with an explicit fast-memory budget (this is what lets
///   residency carry across former group boundaries), then dead stores.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassPipeline {
    /// Run [`ReorderLocality`] first.
    pub reorder: bool,
    /// Let the reorder pass fuse overlapping neighbour groups.
    pub fuse: bool,
    /// Run [`MergeLoads`].
    pub merge_loads: bool,
    /// Run [`DeadStoreElimination`].
    pub dead_store: bool,
    /// Fast-memory residency budget (elements) the passes may use when
    /// extending buffer lifetimes. `None` caps residency at the seed
    /// schedule's own peak.
    pub budget: Option<usize>,
    /// Verify seed/optimized equivalence after the pipeline ran.
    pub verify: bool,
}

impl PassPipeline {
    /// The empty pipeline: no passes, no verification.
    pub fn none() -> Self {
        Self::default()
    }

    /// Merge loads + dead stores, verified, within the seed's own peak
    /// residency.
    pub fn standard() -> Self {
        Self {
            merge_loads: true,
            dead_store: true,
            verify: true,
            ..Self::default()
        }
    }

    /// Locality reordering with group fusion, then load merging against the
    /// given fast-memory budget, then dead stores; verified.
    pub fn locality(budget: Option<usize>) -> Self {
        Self {
            reorder: true,
            fuse: true,
            merge_loads: true,
            dead_store: true,
            budget,
            verify: true,
        }
    }

    /// Overrides the residency budget.
    pub fn with_budget(mut self, budget: Option<usize>) -> Self {
        self.budget = budget;
        self
    }

    /// Enables or disables post-pipeline verification.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Whether the pipeline contains no passes at all.
    pub fn is_noop(&self) -> bool {
        !self.reorder && !self.merge_loads && !self.dead_store
    }

    /// Canonical byte encoding of the configuration: a flags byte (one bit
    /// per knob) followed by the optional budget. Injective — distinct
    /// pipelines encode to distinct bytes — and stable across processes and
    /// platforms; the plan-cache key and the autotuner's space fingerprint
    /// both embed it.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let flags = u8::from(self.reorder)
            | u8::from(self.fuse) << 1
            | u8::from(self.merge_loads) << 2
            | u8::from(self.dead_store) << 3
            | u8::from(self.verify) << 4;
        let mut out = vec![flags];
        match self.budget {
            None => out.push(0),
            Some(b) => {
                out.push(1);
                out.extend_from_slice(&(b as u64).to_le_bytes());
            }
        }
        out
    }

    /// Builds the concrete [`PassManager`] this configuration describes.
    pub fn manager<T: Scalar>(&self) -> PassManager<T> {
        let mut m = PassManager::new().with_verification(self.verify);
        if self.reorder {
            m = m.with_pass(Box::new(ReorderLocality { fuse: self.fuse }));
        }
        if self.merge_loads {
            m = m.with_pass(Box::new(MergeLoads {
                budget: self.budget,
            }));
        }
        if self.dead_store {
            m = m.with_pass(Box::new(DeadStoreElimination));
        }
        m
    }
}
