//! Dead-store elimination.
//!
//! Three rewrites, all of which reduce store traffic (or residency) without
//! changing what the schedule leaves in slow memory:
//!
//! 1. **Overwritten stores** — a `Store` whose region is completely
//!    re-stored later with no intervening load of any of its elements never
//!    becomes observable: it is turned into a `Discard` (the buffer is still
//!    released at the same point, so residency is unchanged).
//! 2. **Clean write-backs** — a buffer that was loaded, never computed into
//!    and stored back to its own region (with no other store overlapping the
//!    region in between) writes back exactly what slow memory already holds;
//!    the store becomes a `Discard`.
//! 3. **Unused allocations** — an `Alloc` whose buffer is never referenced
//!    by any compute step and is released by a `Discard` is removed together
//!    with its discard (this also lowers peak residency).
//!
//! The pass works on the whole schedule (stores in one task group can be
//! killed by stores in a later group); the rewrites themselves never move a
//! step, so group structure, phases and parallel validity are preserved.

use super::analysis::{buffer_table, ConsumeKind, OriginKind};
use super::{Pass, PassReport, Result};
use crate::ir::{Schedule, Step};
use std::collections::{HashMap, HashSet};
use symla_matrix::Scalar;
use symla_memory::MatrixId;

/// The dead-store elimination pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeadStoreElimination;

type Cell = (usize, usize);

impl<T: Scalar> Pass<T> for DeadStoreElimination {
    fn name(&self) -> &'static str {
        "dead-store"
    }

    fn run(&self, mut schedule: Schedule<T>) -> Result<(Schedule<T>, PassReport)> {
        let mut report = PassReport::new("dead-store");

        // Flatten to (group, step) coordinates over the whole schedule.
        let coords: Vec<(usize, usize)> = schedule
            .groups
            .iter()
            .enumerate()
            .flat_map(|(g, grp)| (0..grp.steps.len()).map(move |i| (g, i)))
            .collect();
        let flat: Vec<&Step<T>> = schedule
            .groups
            .iter()
            .flat_map(|g| g.steps.iter())
            .collect();
        let table = buffer_table(flat.iter().copied())?;

        // ---- rule 1: overwritten stores (backward sweep) ----
        // `shadowed[m]` holds the cells whose next access going forward from
        // the current position is a store.
        let mut shadowed: HashMap<MatrixId, HashSet<Cell>> = HashMap::new();
        let mut dead: HashSet<usize> = HashSet::new();
        for (pos, step) in flat.iter().enumerate().rev() {
            match step {
                Step::Load { matrix, region, .. } => {
                    if let Some(set) = shadowed.get_mut(matrix) {
                        for c in region.cells() {
                            set.remove(&c);
                        }
                    }
                }
                Step::Store { buf, .. } => {
                    if let Some(info) = table.get(buf) {
                        let set = shadowed.entry(info.matrix).or_default();
                        let cells = info.region.cells();
                        if !cells.is_empty() && cells.iter().all(|c| set.contains(c)) {
                            dead.insert(pos);
                        }
                        set.extend(cells);
                    }
                }
                _ => {}
            }
        }

        // ---- rule 2: clean write-backs (forward sweep) ----
        // store events per matrix seen so far, as (position, cells)
        let mut stores_seen: HashMap<MatrixId, Vec<(usize, HashSet<Cell>)>> = HashMap::new();
        for (pos, step) in flat.iter().enumerate() {
            if let Step::Store { buf, .. } = step {
                if let Some(info) = table.get(buf) {
                    let cells: HashSet<Cell> = info.region.cells().into_iter().collect();
                    if info.origin == OriginKind::Load && !info.is_dirty() && !dead.contains(&pos) {
                        let overwritten_since_load = stores_seen
                            .get(&info.matrix)
                            .map(|v| {
                                v.iter()
                                    .any(|(p, sc)| *p > info.created && !sc.is_disjoint(&cells))
                            })
                            .unwrap_or(false);
                        if !overwritten_since_load {
                            dead.insert(pos);
                        }
                    }
                    stores_seen
                        .entry(info.matrix)
                        .or_default()
                        .push((pos, cells));
                }
            }
        }

        // apply rules 1 + 2: dead stores become discards
        for &pos in &dead {
            let (g, i) = coords[pos];
            let Step::Store { buf, .. } = schedule.groups[g].steps[i] else {
                unreachable!("dead positions are stores");
            };
            let elements = table[&buf].region.len() as u64;
            schedule.groups[g].steps[i] = Step::Discard { buf };
            report.stores_eliminated += elements;
            report.store_events_eliminated += 1;
        }

        // ---- rule 3: unused allocations ----
        // recompute usage on the rewritten schedule (stores became discards)
        let flat: Vec<&Step<T>> = schedule
            .groups
            .iter()
            .flat_map(|g| g.steps.iter())
            .collect();
        let table = buffer_table(flat.iter().copied())?;
        let mut drop_steps: HashSet<(usize, usize)> = HashSet::new();
        for info in table.values() {
            let unused = info.origin == OriginKind::Alloc
                && info.dirtied_at.is_empty()
                && info.slice_uses.is_empty()
                && info.whole_uses.is_empty();
            if let (true, Some((consumed, ConsumeKind::Discard))) = (unused, info.consumed) {
                drop_steps.insert(coords[info.created]);
                drop_steps.insert(coords[consumed]);
                report.steps_removed += 2;
            }
        }
        if !drop_steps.is_empty() {
            for (g, grp) in schedule.groups.iter_mut().enumerate() {
                let mut i = 0;
                grp.steps.retain(|_| {
                    let keep = !drop_steps.contains(&(g, i));
                    i += 1;
                    keep
                });
            }
        }

        Ok((schedule, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::ir::{BufSlice, ComputeOp, ScheduleBuilder};
    use crate::passes::verify::{check_equivalent, schedule_effects};
    use symla_memory::Region;

    fn id() -> MatrixId {
        MatrixId::synthetic(2)
    }

    fn run_pass(seed: &Schedule<f64>) -> (Schedule<f64>, PassReport) {
        let (opt, report) = Pass::<f64>::run(&DeadStoreElimination, seed.clone()).unwrap();
        check_equivalent(seed, &opt).unwrap();
        (opt, report)
    }

    /// A compute that actually dirties a `2 x cols` rectangular `dst` so
    /// stores are live.
    fn dirty(
        b: &mut ScheduleBuilder<f64>,
        dst: crate::ir::BufId,
        probe: crate::ir::BufId,
        cols: usize,
    ) {
        b.compute(ComputeOp::Ger {
            alpha: 1.0,
            x: BufSlice::whole(probe, 2),
            y: BufSlice::new(probe, 0, cols),
            dst,
        });
    }

    #[test]
    fn overwritten_store_becomes_discard() {
        let region = Region::rect(0, 0, 2, 2);
        let mut b = ScheduleBuilder::<f64>::new();
        let probe = b.load(id(), Region::col_segment(4, 0, 2));
        let x = b.load(id(), region.clone());
        dirty(&mut b, x, probe, 2);
        b.store(x); // dead: fully overwritten below, never read in between
        let y = b.load(id(), Region::col_segment(5, 0, 2));
        b.discard(y);
        let z = b.alloc(id(), region.clone());
        dirty(&mut b, z, probe, 2);
        b.store(z);
        b.discard(probe);
        let seed = b.finish();

        let (opt, report) = run_pass(&seed);
        assert_eq!(report.store_events_eliminated, 1);
        assert_eq!(report.stores_eliminated, 4);
        let dry = Engine::dry_run(&opt, "m");
        let seed_dry = Engine::dry_run(&seed, "m");
        assert_eq!(dry.volume.stores, seed_dry.volume.stores - 4);
        assert_eq!(dry.volume.loads, seed_dry.volume.loads);
        assert_eq!(dry.peak_resident, seed_dry.peak_resident);
    }

    #[test]
    fn store_read_before_overwrite_stays() {
        let region = Region::rect(0, 0, 2, 2);
        let mut b = ScheduleBuilder::<f64>::new();
        let probe = b.load(id(), Region::col_segment(4, 0, 2));
        let x = b.load(id(), region.clone());
        dirty(&mut b, x, probe, 2);
        b.store(x);
        let r = b.load(id(), Region::rect(0, 0, 1, 1)); // reads one stored cell
        b.discard(r);
        let z = b.alloc(id(), region);
        dirty(&mut b, z, probe, 2);
        b.store(z);
        b.discard(probe);
        let seed = b.finish();
        let (_, report) = run_pass(&seed);
        assert_eq!(report.store_events_eliminated, 0, "{report}");
    }

    #[test]
    fn clean_writeback_becomes_discard() {
        let mut b = ScheduleBuilder::<f64>::new();
        let x = b.load(id(), Region::rect(0, 0, 3, 1));
        b.store(x); // never modified: writes back what is already there
        let seed = b.finish();
        let (opt, report) = run_pass(&seed);
        assert_eq!(report.stores_eliminated, 3);
        assert_eq!(Engine::dry_run(&opt, "m").volume.stores, 0);
        // effects agree because the store stored unchanged data
        assert_eq!(
            schedule_effects(&seed).unwrap().flops,
            schedule_effects(&opt).unwrap().flops
        );
    }

    #[test]
    fn clean_writeback_after_foreign_store_stays() {
        // another buffer stores into the region between load and store:
        // writing back the stale copy is semantically meaningful
        let region = Region::rect(0, 0, 2, 1);
        let mut b = ScheduleBuilder::<f64>::new();
        let stale = b.load(id(), region.clone());
        let probe = b.load(id(), Region::col_segment(4, 0, 2));
        let w = b.load(id(), region.clone());
        dirty(&mut b, w, probe, 1);
        b.store(w); // writes new data into the region
        b.discard(probe);
        b.store(stale); // writes the stale copy back over it — NOT dead
        let seed = b.finish();
        let (_, report) = run_pass(&seed);
        // the first store is overwritten by the stale write-back with no
        // read in between → rule 1 kills it; the stale write-back must stay
        assert_eq!(report.store_events_eliminated, 1);
        let (opt, _) = run_pass(&seed);
        let last_group = &opt.groups[0];
        let stores: Vec<_> = last_group
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Store { .. }))
            .collect();
        assert_eq!(stores.len(), 1);
        assert!(matches!(stores[0], Step::Store { buf, .. } if *buf == 0));
    }

    #[test]
    fn unused_alloc_discard_pair_is_removed() {
        let mut b = ScheduleBuilder::<f64>::new();
        let x = b.load(id(), Region::rect(0, 0, 2, 1));
        let waste = b.alloc(id(), Region::rect(0, 1, 4, 4));
        b.discard(waste);
        b.discard(x);
        let seed = b.finish();
        let (opt, report) = run_pass(&seed);
        assert_eq!(report.steps_removed, 2);
        assert_eq!(opt.num_steps(), 2);
        assert!(
            Engine::dry_run(&opt, "m").peak_resident < Engine::dry_run(&seed, "m").peak_resident
        );
    }

    #[test]
    fn alloc_that_is_stored_is_kept() {
        // an alloc+store zeroes a region of slow memory: removing it would
        // change the result
        let mut b = ScheduleBuilder::<f64>::new();
        let z = b.alloc(id(), Region::rect(0, 0, 2, 2));
        b.store(z);
        let seed = b.finish();
        let (opt, report) = run_pass(&seed);
        assert_eq!(report.steps_removed, 0);
        assert_eq!(report.store_events_eliminated, 0);
        assert_eq!(opt, seed);
    }
}
