//! Task-group reordering for LRU-style locality.
//!
//! Independent [`TaskGroup`]s may replay in any order.
//! This pass greedily orders them so each group shares as much of its data
//! footprint (measured in matrix elements, via the element-level region
//! analysis) as possible with its predecessor — the schedule-level analogue
//! of the footprint argument of Section 3 of the paper. Reordering by itself
//! moves traffic next to each other without changing its volume; the payoff
//! comes from the follow-up:
//!
//! * with [`ReorderLocality::fuse`] enabled, consecutive groups that share
//!   footprint (and carry the same phase label) are fused into one group, so
//!   [`super::MergeLoads`] can eliminate the now group-local redundant loads
//!   by deferring discards across what used to be a group boundary;
//! * even unfused, a second-level LRU cache below the schedule (see
//!   `symla_memory::cache`) hits more often when overlapping groups are
//!   adjacent.
//!
//! Dependence is established at element granularity: group `h` must stay
//! after group `g` iff `g` writes a cell that `h` reads or writes, or `g`
//! reads a cell that `h` writes. The left-looking factorization schedules
//! therefore come out in their original order (every group depends on the
//! panel columns before it), while the SYRK/GEMM-family schedules reorder
//! freely.
//!
//! The pass only runs on schedules whose groups are self-contained (every
//! buffer created and released in its own group) — exactly the property the
//! parallel engine path requires — and is a no-op otherwise.

use super::analysis::{buffer_table, CellSet};
use super::{Pass, PassReport, Result};
use crate::ir::{Schedule, Step, TaskGroup};
use symla_matrix::Scalar;

/// The locality-reordering pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReorderLocality {
    /// Fuse consecutive overlapping groups with equal phase labels, enabling
    /// cross-boundary load reuse in a later [`super::MergeLoads`] run.
    pub fuse: bool,
}

/// Read/write footprint of one group.
struct Footprint {
    reads: CellSet,
    writes: CellSet,
    all: CellSet,
}

fn footprint<T: Scalar>(group: &TaskGroup<T>) -> Result<Option<Footprint>> {
    let table = buffer_table(&group.steps)?;
    // self-containment: every buffer referenced by a consume is created here
    for step in &group.steps {
        if let Step::Store { buf, .. } | Step::Discard { buf } = step {
            if !table.contains_key(buf) {
                return Ok(None);
            }
        }
    }
    if table.values().any(|info| info.consumed.is_none()) {
        return Ok(None);
    }
    let mut reads = CellSet::default();
    let mut writes = CellSet::default();
    for step in &group.steps {
        if let Step::Load { matrix, region, .. } = step {
            reads.insert_region(*matrix, region);
        }
        if let Step::Store { buf, .. } = step {
            let info = &table[buf];
            writes.insert_region(info.matrix, &info.region);
        }
    }
    let mut all = CellSet::default();
    all.union_with(&reads);
    all.union_with(&writes);
    Ok(Some(Footprint { reads, writes, all }))
}

impl<T: Scalar> Pass<T> for ReorderLocality {
    fn name(&self) -> &'static str {
        "reorder-locality"
    }

    fn run(&self, mut schedule: Schedule<T>) -> Result<(Schedule<T>, PassReport)> {
        let mut report = PassReport::new("reorder-locality");
        let n = schedule.groups.len();
        if n < 2 {
            return Ok((schedule, report));
        }
        let mut footprints = Vec::with_capacity(n);
        for group in &schedule.groups {
            match footprint(group)? {
                Some(fp) => footprints.push(fp),
                // a group straddled by buffers: leave the schedule alone
                None => return Ok((schedule, report)),
            }
        }

        // Materialize the phase labels a serial replay would use, so groups
        // keep their I/O attribution wherever they move. Groups before the
        // first labelled one keep `None` (they use the caller's phase) and
        // are pinned by dependence edges against relabelling hazards — a
        // `None` group moved after a labelled one would change attribution,
        // so those pairs are kept ordered below. The original labels are
        // restored when the pass ends up changing nothing.
        let original_phases: Vec<Option<String>> =
            schedule.groups.iter().map(|g| g.phase.clone()).collect();
        let mut current: Option<String> = None;
        for group in &mut schedule.groups {
            match &group.phase {
                Some(p) => current = Some(p.clone()),
                None => group.phase = current.clone(),
            }
        }

        // dependence edges at element granularity
        let conflicts =
            |a: &Footprint, b: &Footprint| a.writes.overlaps(&b.all) || a.reads.overlaps(&b.writes);
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut indeg = vec![0usize; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let attribution_hazard =
                    schedule.groups[i].phase.is_none() && schedule.groups[j].phase.is_some();
                if attribution_hazard || conflicts(&footprints[i], &footprints[j]) {
                    succs[i].push(j);
                    indeg[j] += 1;
                }
            }
        }

        // greedy topological order maximizing footprint overlap with the
        // previously emitted group; ties resolve to the original order
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut prev: Option<usize> = None;
        while let Some((pos, _)) = ready
            .iter()
            .enumerate()
            .map(|(pos, &g)| {
                let score = prev
                    .map(|p| footprints[p].all.shared_cells(&footprints[g].all))
                    .unwrap_or(0);
                (pos, (score, usize::MAX - g))
            })
            .max_by_key(|&(_, key)| key)
        {
            let g = ready.swap_remove(pos);
            for &s in &succs[g] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
            order.push(g);
            prev = Some(g);
        }
        debug_assert_eq!(order.len(), n);
        report.groups_moved = order
            .iter()
            .enumerate()
            .filter(|&(pos, &g)| pos != g)
            .count() as u64;

        let mut groups: Vec<TaskGroup<T>> = Vec::with_capacity(n);
        let mut fps: Vec<CellSet> = Vec::with_capacity(n);
        for g in order {
            let group = std::mem::take(&mut schedule.groups[g]);
            let fp = std::mem::take(&mut footprints[g].all);
            let fuse_with_prev = self.fuse
                && groups
                    .last()
                    .map(|prev: &TaskGroup<T>| prev.phase == group.phase)
                    .unwrap_or(false)
                && fps
                    .last()
                    .map(|prev_fp| prev_fp.overlaps(&fp))
                    .unwrap_or(false);
            if fuse_with_prev {
                let prev = groups.last_mut().expect("checked above");
                prev.steps.extend(group.steps);
                fps.last_mut().expect("checked above").union_with(&fp);
                report.groups_fused += 1;
            } else {
                groups.push(group);
                fps.push(fp);
            }
        }
        schedule.groups = groups;
        if report.is_noop() {
            // no group moved or fused: undo the phase materialization so a
            // no-op report really means an unchanged schedule
            for (group, phase) in schedule.groups.iter_mut().zip(original_phases) {
                group.phase = phase;
            }
        }
        Ok((schedule, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::ir::ScheduleBuilder;
    use crate::passes::verify::check_equivalent;
    use crate::passes::{MergeLoads, Pass};
    use symla_memory::{MatrixId, Region};

    fn id() -> MatrixId {
        MatrixId::synthetic(4)
    }

    /// Groups 0 and 2 share a loaded region; group 1 is unrelated.
    fn interleaved() -> Schedule<f64> {
        let mut b = ScheduleBuilder::<f64>::new();
        for g in 0..3 {
            b.begin_group();
            let col = if g == 1 { 6 } else { 0 };
            let shared = b.load(id(), Region::col_segment(col, 0, 3));
            let own = b.load(id(), Region::rect(4 + g, 8, 1, 1));
            b.discard(shared);
            b.store(own);
        }
        b.finish()
    }

    #[test]
    fn overlapping_groups_become_adjacent() {
        let seed = interleaved();
        let pass = ReorderLocality { fuse: false };
        let (opt, report) = pass.run(seed.clone()).unwrap();
        check_equivalent(&seed, &opt).unwrap();
        assert!(report.groups_moved > 0, "{report}");
        assert_eq!(report.groups_fused, 0);
        // groups 0 and 2 (sharing column 0) are now consecutive
        let shared_cols: Vec<usize> = opt
            .groups
            .iter()
            .map(|g| match &g.steps[0] {
                Step::Load {
                    region: Region::Rect { col0, .. },
                    ..
                } => *col0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(shared_cols, vec![0, 0, 6]);
        // reorder alone never changes the accounting volumes
        let a = Engine::dry_run(&seed, "m");
        let b = Engine::dry_run(&opt, "m");
        assert_eq!(a.volume, b.volume);
        assert_eq!(a.load_events, b.load_events);
    }

    #[test]
    fn fusion_plus_merge_eliminates_the_shared_load() {
        let seed = interleaved();
        let pass = ReorderLocality { fuse: true };
        let (fused, report) = pass.run(seed.clone()).unwrap();
        check_equivalent(&seed, &fused).unwrap();
        assert_eq!(report.groups_fused, 1);
        assert_eq!(fused.num_groups(), 2);

        // now MergeLoads can revive the shared buffer across the former
        // boundary, given headroom for the deferred discard
        let seed_dry = Engine::dry_run(&seed, "m");
        let (opt, merge_report) = MergeLoads::with_budget(seed_dry.peak_resident + 3)
            .run(fused)
            .unwrap();
        check_equivalent(&seed, &opt).unwrap();
        assert_eq!(merge_report.loads_eliminated, 3, "{merge_report}");
        assert_eq!(
            Engine::dry_run(&opt, "m").volume.loads,
            seed_dry.volume.loads - 3
        );
    }

    #[test]
    fn write_read_dependences_pin_the_order() {
        // group 0 stores a region that group 1 loads: order must survive,
        // even though they overlap maximally
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let x = b.load(id(), Region::rect(0, 0, 2, 2));
        b.store(x);
        b.begin_group();
        let y = b.load(id(), Region::rect(0, 0, 2, 2));
        b.discard(y);
        b.begin_group();
        let z = b.load(id(), Region::rect(5, 5, 1, 1));
        b.store(z);
        let seed = b.finish();
        let pass = ReorderLocality { fuse: false };
        let (opt, _) = pass.run(seed.clone()).unwrap();
        check_equivalent(&seed, &opt).unwrap();
        // the dependent pair stays in order 0 before 1
        let pos = |region: &Region| {
            opt.groups
                .iter()
                .position(|g| {
                    g.steps
                        .iter()
                        .any(|s| matches!(s, Step::Load { region: r, .. } if r == region))
                })
                .unwrap()
        };
        assert!(
            pos(&Region::rect(0, 0, 2, 2)) <= 1,
            "dependent groups stay adjacent"
        );
    }

    #[test]
    fn mixed_phases_do_not_fuse_and_keep_attribution() {
        let mut b = ScheduleBuilder::<f64>::new();
        b.set_phase("p1");
        b.begin_group();
        let x = b.load(id(), Region::rect(0, 0, 2, 1));
        b.discard(x);
        b.set_phase("p2");
        b.begin_group();
        let y = b.load(id(), Region::rect(0, 0, 2, 1));
        b.discard(y);
        let seed = b.finish();
        let pass = ReorderLocality { fuse: true };
        let (opt, report) = pass.run(seed.clone()).unwrap();
        assert_eq!(report.groups_fused, 0, "different phases never fuse");
        let stats = Engine::dry_run(&opt, "m");
        assert_eq!(stats.phase("p1").loads, 2);
        assert_eq!(stats.phase("p2").loads, 2);
    }

    #[test]
    fn unlabelled_groups_never_move_after_labelled_ones() {
        // Groups 0/1 carry no phase (they run under the caller's default);
        // group 2 is labelled and shares its footprint with group 0. The
        // greedy order would love [0, 2, 1], but that would replay group 1
        // under "p1" and shift its attribution — the hazard edges must pin
        // every unlabelled group before the labelled one.
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let x = b.load(id(), Region::col_segment(0, 0, 3));
        b.discard(x);
        b.begin_group();
        let y = b.load(id(), Region::col_segment(6, 0, 3));
        b.discard(y);
        b.set_phase("p1");
        b.begin_group();
        let z = b.load(id(), Region::col_segment(0, 0, 3));
        b.discard(z);
        let seed = b.finish();
        let seed_dry = Engine::dry_run(&seed, "main");
        let pass = ReorderLocality { fuse: false };
        let (opt, _) = pass.run(seed.clone()).unwrap();
        check_equivalent(&seed, &opt).unwrap();
        let opt_dry = Engine::dry_run(&opt, "main");
        assert_eq!(
            seed_dry.phase("main").loads,
            opt_dry.phase("main").loads,
            "per-phase attribution must survive reordering"
        );
        assert_eq!(seed_dry.phase("p1").loads, opt_dry.phase("p1").loads);
        assert_eq!(seed_dry, opt_dry);
    }

    #[test]
    fn straddling_buffers_disable_the_pass() {
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let x = b.load(id(), Region::rect(0, 0, 2, 2));
        b.begin_group();
        b.store(x);
        let seed = b.finish();
        let pass = ReorderLocality { fuse: true };
        let (opt, report) = pass.run(seed.clone()).unwrap();
        assert!(report.is_noop());
        assert_eq!(opt, seed);
    }
}
