//! Schedule equivalence verification: symbolic per-element execution.
//!
//! [`schedule_effects`] replays a schedule with **dataflow hashes** instead
//! of numbers: every slow-memory element starts with a hash derived from its
//! coordinates, loads copy hashes into buffers, every compute step mixes the
//! hashes of exactly the elements the real kernel would read into the
//! elements it would write (mirroring the kernels of
//! `symla_matrix::kernels::views` element for element), and stores write the
//! hashes back. Two schedules with equal [`ScheduleEffects`] perform the
//! same computation on the same data in a compatible order, so their real
//! executions leave slow memory **bitwise identical** — which is exactly the
//! property the optimization passes must preserve, checked here without
//! touching a single scalar.
//!
//! The abstraction is conservative in the right direction: it may reject an
//! exotic-but-legal reordering (hash mixing is order-sensitive where
//! floating-point addition would happen to commute), but it never accepts a
//! schedule that reads different data, runs a different kernel sequence on
//! some element, or stores a different version of a region.
//!
//! [`Verify`] wraps this as a [`Pass`] that holds the seed schedule's
//! effects and passes the input through unchanged iff they match.

use super::analysis::op_dst;
use super::{Pass, PassError, PassReport, Result};
use crate::ir::{BufId, BufSlice, ComputeOp, Schedule, Step};
use std::collections::{BTreeMap, HashMap};
use symla_matrix::kernels::FlopCount;
use symla_matrix::Scalar;
use symla_memory::{MatrixId, Region};

/// One matrix element: `(row, col)`; symmetric matrices use lower-triangle
/// coordinates.
type Cell = (usize, usize);

/// The observable effect of a schedule on slow memory, plus its accounting
/// invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleEffects {
    /// Dataflow hash of every slow-memory element a store touched, keyed by
    /// `(matrix, row, col)`. Elements never stored keep their initial hash
    /// and are omitted.
    pub cells: BTreeMap<(u64, usize, usize), u64>,
    /// Total arithmetic attributed by `Flops` steps (passes must not change
    /// it).
    pub flops: FlopCount,
    /// Number of compute steps replayed (passes must not change it).
    pub computes: u64,
}

/// Deterministic 64-bit mixer (splitmix-style), stable across runs.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn mix3(a: u64, b: u64, c: u64) -> u64 {
    mix(mix(a, b), c)
}

/// Initial hash of an untouched slow-memory element.
fn initial_cell_hash(matrix: u64, cell: Cell) -> u64 {
    mix3(0x5EED_1111, matrix, mix(cell.0 as u64, cell.1 as u64))
}

const TAG_ZERO: u64 = 0x01;
const TAG_GER: u64 = 0x02;
const TAG_SPR: u64 = 0x03;
const TAG_TRI: u64 = 0x04;
const TAG_CHOL_ROOT: u64 = 0x05;
const TAG_CHOL_SCALE: u64 = 0x06;
const TAG_CHOL_UPD: u64 = 0x07;
const TAG_LU_SCALE: u64 = 0x08;
const TAG_LU_UPD: u64 = 0x09;
const TAG_TRSM_DIV: u64 = 0x0A;
const TAG_TRSM_UPD: u64 = 0x0B;
const TAG_LUCOL_ELIM: u64 = 0x0C;
const TAG_LUCOL_DIV: u64 = 0x0D;
const TAG_LUROW_ELIM: u64 = 0x0E;

/// A fast-memory buffer in the symbolic machine: one hash per element, in
/// the buffer layout order of its region.
struct SymBuf {
    matrix: MatrixId,
    region: Region,
    hashes: Vec<u64>,
}

impl SymBuf {
    fn rect_shape(&self) -> Result<(usize, usize)> {
        match &self.region {
            Region::Rect { rows, cols, .. } | Region::SymRect { rows, cols, .. } => {
                Ok((*rows, *cols))
            }
            Region::Rows { rows, cols, .. } | Region::SymRows { rows, cols, .. } => {
                Ok((rows.len(), *cols))
            }
            other => Err(PassError::Invalid(format!(
                "compute needs a rectangular buffer, got region {other}"
            ))),
        }
    }

    fn packed_order(&self) -> Result<usize> {
        match &self.region {
            Region::SymLowerTriangle { size, .. } => Ok(*size),
            other => Err(PassError::Invalid(format!(
                "compute needs a packed lower-triangle buffer, got region {other}"
            ))),
        }
    }
}

/// Column-major index of a rectangular buffer.
fn rc(rows: usize, i: usize, j: usize) -> usize {
    j * rows + i
}

/// Packed lower column-major index of order `n` (`i >= j`).
fn packed_idx(n: usize, i: usize, j: usize) -> usize {
    j * n - j * j.saturating_sub(1) / 2 + (i - j)
}

struct Interpreter {
    bufs: HashMap<BufId, SymBuf>,
    slow: HashMap<(u64, Cell), u64>,
    flops: FlopCount,
    computes: u64,
}

impl Interpreter {
    fn new() -> Self {
        Self {
            bufs: HashMap::new(),
            slow: HashMap::new(),
            flops: FlopCount::default(),
            computes: 0,
        }
    }

    fn slow_hash(&self, matrix: MatrixId, cell: Cell) -> u64 {
        self.slow
            .get(&(matrix.raw(), cell))
            .copied()
            .unwrap_or_else(|| initial_cell_hash(matrix.raw(), cell))
    }

    fn buf(&self, id: BufId) -> Result<&SymBuf> {
        self.bufs
            .get(&id)
            .ok_or_else(|| PassError::Invalid(format!("unknown or released buffer {id}")))
    }

    fn slice_hashes(&self, s: &BufSlice) -> Result<Vec<u64>> {
        let buf = self.buf(s.buf)?;
        buf.hashes
            .get(s.start..s.start + s.len)
            .map(|h| h.to_vec())
            .ok_or_else(|| {
                PassError::Invalid(format!(
                    "slice {}..+{} exceeds buffer {} of {} elements",
                    s.start,
                    s.len,
                    s.buf,
                    buf.hashes.len()
                ))
            })
    }

    fn step(&mut self, step: &Step<impl Scalar>) -> Result<()> {
        match step {
            Step::Load {
                matrix,
                region,
                dst,
                ..
            } => {
                let hashes = region
                    .cells()
                    .into_iter()
                    .map(|c| self.slow_hash(*matrix, c))
                    .collect();
                if self.bufs.contains_key(dst) {
                    return Err(PassError::Invalid(format!("buffer {dst} created twice")));
                }
                self.bufs.insert(
                    *dst,
                    SymBuf {
                        matrix: *matrix,
                        region: region.clone(),
                        hashes,
                    },
                );
            }
            Step::Alloc {
                matrix,
                region,
                dst,
            } => {
                if self.bufs.contains_key(dst) {
                    return Err(PassError::Invalid(format!("buffer {dst} created twice")));
                }
                self.bufs.insert(
                    *dst,
                    SymBuf {
                        matrix: *matrix,
                        region: region.clone(),
                        hashes: vec![mix(TAG_ZERO, 0); region.len()],
                    },
                );
            }
            Step::Store { buf, .. } => {
                let b = self
                    .bufs
                    .remove(buf)
                    .ok_or_else(|| PassError::Invalid(format!("store of unknown buffer {buf}")))?;
                for (cell, h) in b.region.cells().into_iter().zip(&b.hashes) {
                    // Storing an element whose value is still its initial
                    // one has no observable effect — normalize it away so
                    // clean write-backs and their elimination compare equal.
                    if *h == initial_cell_hash(b.matrix.raw(), cell) {
                        self.slow.remove(&(b.matrix.raw(), cell));
                    } else {
                        self.slow.insert((b.matrix.raw(), cell), *h);
                    }
                }
            }
            Step::Discard { buf } => {
                self.bufs.remove(buf).ok_or_else(|| {
                    PassError::Invalid(format!("discard of unknown buffer {buf}"))
                })?;
            }
            Step::Flops(f) => self.flops = self.flops.merge(f),
            Step::Compute(op) => {
                self.computes += 1;
                self.compute(op)?;
            }
        }
        Ok(())
    }

    /// Mirrors the element-level data dependencies of the engine's kernels.
    fn compute<T: Scalar>(&mut self, op: &ComputeOp<T>) -> Result<()> {
        let dst_id = op_dst(op);
        let mut dst = self
            .bufs
            .remove(&dst_id)
            .ok_or_else(|| PassError::Invalid(format!("unknown or released buffer {dst_id}")))?;
        let outcome = self.compute_on(op, &mut dst);
        self.bufs.insert(dst_id, dst);
        outcome
    }

    fn compute_on<T: Scalar>(&mut self, op: &ComputeOp<T>, dst: &mut SymBuf) -> Result<()> {
        let alpha_bits = |a: &T| a.to_f64().to_bits();
        match op {
            ComputeOp::Ger { alpha, x, y, .. } => {
                let xs = self.slice_hashes(x)?;
                let ys = self.slice_hashes(y)?;
                let (rows, cols) = dst.rect_shape()?;
                if rows != xs.len() || cols != ys.len() {
                    return Err(PassError::Invalid(format!(
                        "ger dimensions {}x{} vs view {rows}x{cols}",
                        xs.len(),
                        ys.len()
                    )));
                }
                let a = alpha_bits(alpha);
                for (j, &yj) in ys.iter().enumerate() {
                    for (i, &xi) in xs.iter().enumerate() {
                        let idx = rc(rows, i, j);
                        dst.hashes[idx] = mix3(mix(dst.hashes[idx], TAG_GER), a, mix(xi, yj));
                    }
                }
            }
            ComputeOp::SprLower { alpha, x, .. } => {
                let xs = self.slice_hashes(x)?;
                let n = dst.packed_order()?;
                if n != xs.len() {
                    return Err(PassError::Invalid(format!(
                        "spr operand has {} elements, view order {n}",
                        xs.len()
                    )));
                }
                let a = alpha_bits(alpha);
                for (j, &xj) in xs.iter().enumerate() {
                    for (i, &xi) in xs.iter().enumerate().skip(j) {
                        let idx = packed_idx(n, i, j);
                        dst.hashes[idx] = mix3(mix(dst.hashes[idx], TAG_SPR), a, mix(xi, xj));
                    }
                }
            }
            ComputeOp::TrianglePairs { alpha, x, .. } => {
                let xs = self.slice_hashes(x)?;
                let k = xs.len();
                if dst.hashes.len() != k * k.saturating_sub(1) / 2 {
                    return Err(PassError::Invalid(format!(
                        "pair buffer has {} elements for row set of {k}",
                        dst.hashes.len()
                    )));
                }
                let a = alpha_bits(alpha);
                let mut idx = 0;
                for u in 1..k {
                    for v in 0..u {
                        dst.hashes[idx] = mix3(mix(dst.hashes[idx], TAG_TRI), a, mix(xs[u], xs[v]));
                        idx += 1;
                    }
                }
            }
            ComputeOp::CholeskyInPlace { .. } => {
                let n = dst.packed_order()?;
                let h = &mut dst.hashes;
                for k in 0..n {
                    let kk = packed_idx(n, k, k);
                    h[kk] = mix(h[kk], TAG_CHOL_ROOT);
                    let root = h[kk];
                    for i in (k + 1)..n {
                        let ik = packed_idx(n, i, k);
                        h[ik] = mix3(h[ik], TAG_CHOL_SCALE, root);
                    }
                    for j in (k + 1)..n {
                        let jk = h[packed_idx(n, j, k)];
                        for i in j..n {
                            let ik = h[packed_idx(n, i, k)];
                            let ij = packed_idx(n, i, j);
                            h[ij] = mix3(mix(h[ij], TAG_CHOL_UPD), ik, jk);
                        }
                    }
                }
            }
            ComputeOp::LuInPlace { .. } => {
                let (rows, cols) = dst.rect_shape()?;
                if rows != cols {
                    return Err(PassError::Invalid(format!(
                        "LU tile must be square, got {rows}x{cols}"
                    )));
                }
                let n = rows;
                let h = &mut dst.hashes;
                for k in 0..n {
                    let pivot = h[rc(n, k, k)];
                    for i in (k + 1)..n {
                        let ik = rc(n, i, k);
                        h[ik] = mix3(h[ik], TAG_LU_SCALE, pivot);
                    }
                    for j in (k + 1)..n {
                        let kj = h[rc(n, k, j)];
                        for i in (k + 1)..n {
                            let ik = h[rc(n, i, k)];
                            let ij = rc(n, i, j);
                            h[ij] = mix3(mix(h[ij], TAG_LU_UPD), ik, kj);
                        }
                    }
                }
            }
            ComputeOp::TrsmRightStep { seg, col, .. } => {
                let segs = self.buf(*seg)?.hashes.clone();
                let (rows, cols) = dst.rect_shape()?;
                let kk = *col;
                if kk >= cols || segs.len() < cols - kk {
                    return Err(PassError::Invalid(format!(
                        "TrsmRightStep: segment of {} elements, needs {}",
                        segs.len(),
                        cols.saturating_sub(kk)
                    )));
                }
                let h = &mut dst.hashes;
                for r in 0..rows {
                    let idx = rc(rows, r, kk);
                    h[idx] = mix3(h[idx], TAG_TRSM_DIV, segs[0]);
                }
                for j in (kk + 1)..cols {
                    let ljk = segs[j - kk];
                    for r in 0..rows {
                        let xk = h[rc(rows, r, kk)];
                        let idx = rc(rows, r, j);
                        h[idx] = mix3(mix(h[idx], TAG_TRSM_UPD), xk, ljk);
                    }
                }
            }
            ComputeOp::LuColSolveStep { seg, col, .. } => {
                let segs = self.buf(*seg)?.hashes.clone();
                let (rows, cols) = dst.rect_shape()?;
                let kk = *col;
                if kk >= cols || segs.len() < kk + 1 {
                    return Err(PassError::Invalid(format!(
                        "LuColSolveStep: segment of {} elements, needs {}",
                        segs.len(),
                        kk + 1
                    )));
                }
                let h = &mut dst.hashes;
                for (q, &uqk) in segs.iter().enumerate().take(kk) {
                    for r in 0..rows {
                        let tq = h[rc(rows, r, q)];
                        let idx = rc(rows, r, kk);
                        h[idx] = mix3(mix(h[idx], TAG_LUCOL_ELIM), tq, uqk);
                    }
                }
                for r in 0..rows {
                    let idx = rc(rows, r, kk);
                    h[idx] = mix3(h[idx], TAG_LUCOL_DIV, segs[kk]);
                }
            }
            ComputeOp::LuRowElimStep { seg, row, .. } => {
                let segs = self.buf(*seg)?.hashes.clone();
                let (rows, cols) = dst.rect_shape()?;
                let kk = *row;
                if kk >= rows || segs.len() > rows - kk - 1 {
                    return Err(PassError::Invalid(format!(
                        "LuRowElimStep: segment of {} elements exceeds {}",
                        segs.len(),
                        rows.saturating_sub(kk + 1)
                    )));
                }
                let h = &mut dst.hashes;
                for (off, &lik) in segs.iter().enumerate() {
                    let i = kk + 1 + off;
                    for c in 0..cols {
                        let tk = h[rc(rows, kk, c)];
                        let idx = rc(rows, i, c);
                        h[idx] = mix3(mix(h[idx], TAG_LUROW_ELIM), lik, tk);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Symbolically executes `schedule` and returns its observable effect on
/// slow memory (see the module docs). Errors if the schedule is malformed
/// (unknown buffers, out-of-range slices, buffers left resident at the end).
pub fn schedule_effects<T: Scalar>(schedule: &Schedule<T>) -> Result<ScheduleEffects> {
    let mut interp = Interpreter::new();
    for group in &schedule.groups {
        for step in &group.steps {
            interp.step(step)?;
        }
    }
    if !interp.bufs.is_empty() {
        return Err(PassError::Invalid(format!(
            "{} buffer(s) left resident at end of schedule",
            interp.bufs.len()
        )));
    }
    Ok(ScheduleEffects {
        cells: interp
            .slow
            .into_iter()
            .map(|((m, (r, c)), h)| ((m, r, c), h))
            .collect(),
        flops: interp.flops,
        computes: interp.computes,
    })
}

/// Compares two effect summaries, returning a human-readable description of
/// the first difference.
pub fn diff_effects(seed: &ScheduleEffects, optimized: &ScheduleEffects) -> Option<String> {
    if seed.flops != optimized.flops {
        return Some(format!(
            "flop accounting changed: {:?} vs {:?}",
            seed.flops, optimized.flops
        ));
    }
    if seed.computes != optimized.computes {
        return Some(format!(
            "compute step count changed: {} vs {}",
            seed.computes, optimized.computes
        ));
    }
    for (key, h) in &seed.cells {
        match optimized.cells.get(key) {
            None => {
                return Some(format!(
                    "matrix {} element ({}, {}) is stored by the seed but not the \
                     optimized schedule",
                    key.0, key.1, key.2
                ))
            }
            Some(oh) if oh != h => {
                return Some(format!(
                    "matrix {} element ({}, {}) holds a different value after the \
                     optimized schedule",
                    key.0, key.1, key.2
                ))
            }
            _ => {}
        }
    }
    for key in optimized.cells.keys() {
        if !seed.cells.contains_key(key) {
            return Some(format!(
                "matrix {} element ({}, {}) is stored by the optimized schedule \
                 but not the seed",
                key.0, key.1, key.2
            ));
        }
    }
    None
}

/// Asserts that `optimized` computes exactly what `seed` computes (see the
/// module docs for the abstraction).
pub fn check_equivalent<T: Scalar>(seed: &Schedule<T>, optimized: &Schedule<T>) -> Result<()> {
    let se = schedule_effects(seed)?;
    let oe = schedule_effects(optimized)?;
    match diff_effects(&se, &oe) {
        None => Ok(()),
        Some(msg) => Err(PassError::VerificationFailed(msg)),
    }
}

/// The verification pass: holds the seed schedule's effects and passes its
/// input through unchanged iff the input is semantically equivalent.
///
/// Append it to a [`super::PassManager`] (or use the manager's built-in
/// verification, which runs the same check) to make a pipeline
/// fail-closed: a pass bug surfaces as a [`PassError::VerificationFailed`]
/// instead of a silently wrong schedule.
#[derive(Debug, Clone)]
pub struct Verify {
    reference: ScheduleEffects,
}

impl Verify {
    /// Captures the effects of the seed schedule to verify against.
    pub fn against<T: Scalar>(seed: &Schedule<T>) -> Result<Self> {
        Ok(Self {
            reference: schedule_effects(seed)?,
        })
    }
}

impl<T: Scalar> Pass<T> for Verify {
    fn name(&self) -> &'static str {
        "verify"
    }

    fn run(&self, schedule: Schedule<T>) -> Result<(Schedule<T>, PassReport)> {
        let effects = schedule_effects(&schedule)?;
        if let Some(msg) = diff_effects(&self.reference, &effects) {
            return Err(PassError::VerificationFailed(msg));
        }
        Ok((schedule, PassReport::new("verify")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ScheduleBuilder;

    fn id() -> MatrixId {
        MatrixId::synthetic(3)
    }

    fn rank1(alpha: f64, region: Region) -> Schedule<f64> {
        let mut b = ScheduleBuilder::new();
        let c = b.load(id(), region);
        let x = b.load(id(), Region::col_segment(5, 0, 2));
        b.compute(ComputeOp::Ger {
            alpha,
            x: BufSlice::whole(x, 2),
            y: BufSlice::whole(x, 2),
            dst: c,
        });
        b.flops(FlopCount::new(4, 4));
        b.discard(x);
        b.store(c);
        b.finish()
    }

    #[test]
    fn identical_schedules_have_identical_effects() {
        let a = rank1(2.0, Region::rect(0, 0, 2, 2));
        let b = rank1(2.0, Region::rect(0, 0, 2, 2));
        assert_eq!(schedule_effects(&a).unwrap(), schedule_effects(&b).unwrap());
        check_equivalent(&a, &b).unwrap();
    }

    #[test]
    fn different_alpha_region_or_operand_changes_effects() {
        let base = schedule_effects(&rank1(2.0, Region::rect(0, 0, 2, 2))).unwrap();
        let alpha = schedule_effects(&rank1(3.0, Region::rect(0, 0, 2, 2))).unwrap();
        assert!(diff_effects(&base, &alpha).is_some());
        let moved = schedule_effects(&rank1(2.0, Region::rect(1, 0, 2, 2))).unwrap();
        assert!(diff_effects(&base, &moved).is_some());
    }

    #[test]
    fn store_order_on_the_same_cells_matters() {
        let mk = |first_twice: bool| {
            let mut b = ScheduleBuilder::<f64>::new();
            let r = Region::rect(0, 0, 2, 1);
            let x = b.load(id(), r.clone());
            b.store(x);
            let y = b.load(id(), Region::rect(2, 0, 2, 1));
            let z = b.load(id(), r.clone());
            b.compute(ComputeOp::Ger {
                alpha: 1.0,
                x: BufSlice::whole(y, 2),
                y: BufSlice::new(y, 0, 1),
                dst: z,
            });
            if first_twice {
                b.store(z);
                b.discard(y);
            } else {
                b.discard(y);
                b.store(z);
            }
            b.finish()
        };
        // same computation either way: discard/store interleave is irrelevant
        check_equivalent(&mk(true), &mk(false)).unwrap();
    }

    #[test]
    fn dropping_a_live_store_is_caught() {
        let seed = rank1(1.0, Region::rect(0, 0, 2, 2));
        let mut bad = seed.clone();
        // replace the final store with a discard: result never lands
        let steps = &mut bad.groups[0].steps;
        let last = steps.len() - 1;
        steps[last] = Step::Discard { buf: 0 };
        let err = check_equivalent(&seed, &bad).unwrap_err();
        assert!(matches!(err, PassError::VerificationFailed(_)), "{err}");
    }

    #[test]
    fn malformed_schedules_are_rejected() {
        let mut b = ScheduleBuilder::<f64>::new();
        b.store(42);
        assert!(schedule_effects(&b.finish()).is_err());

        let mut b = ScheduleBuilder::<f64>::new();
        b.load(id(), Region::rect(0, 0, 1, 1));
        let err = schedule_effects(&b.finish()).unwrap_err();
        assert!(err.to_string().contains("left resident"));
    }

    #[test]
    fn verify_pass_roundtrip() {
        let seed = rank1(1.0, Region::rect(0, 0, 2, 2));
        let v = Verify::against(&seed).unwrap();
        let (same, report) = Pass::<f64>::run(&v, seed.clone()).unwrap();
        assert_eq!(same, seed);
        assert!(report.is_noop());
        assert_eq!(Pass::<f64>::name(&v), "verify");

        let other = rank1(-1.0, Region::rect(0, 0, 2, 2));
        assert!(Pass::<f64>::run(&v, other).is_err());
    }

    #[test]
    fn solver_steps_track_segment_provenance() {
        // Two TRSM step schedules differing only in the streamed segment's
        // source region must differ in effects.
        let mk = |seg_row: usize| {
            let mut b = ScheduleBuilder::<f64>::new();
            let tile = b.load(id(), Region::rect(0, 0, 2, 2));
            let seg = b.load(id(), Region::rect(seg_row, 4, 2, 1));
            b.compute(ComputeOp::TrsmRightStep {
                seg,
                dst: tile,
                col: 0,
                pivot: 0,
            });
            b.discard(seg);
            b.store(tile);
            b.finish()
        };
        check_equivalent(&mk(1), &mk(1)).unwrap();
        assert!(check_equivalent(&mk(1), &mk(2)).is_err());
    }
}
