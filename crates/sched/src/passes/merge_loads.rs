//! Redundant-load elimination and load coalescing.
//!
//! Two families of rewrites, both confined to a single task group (so the
//! optimized schedule stays valid for `Engine::execute_parallel`; run
//! [`super::ReorderLocality`] with fusion first to harvest reuse across
//! former group boundaries):
//!
//! 1. **Redundant-load elimination** — a `Load` of a region that is already
//!    resident in a *clean* buffer (loaded, never computed into, no
//!    intervening store overlapping it) is dropped and its uses aliased to
//!    the resident buffer. If the clean buffer was already discarded, the
//!    discard is *deferred* instead — the buffer stays resident across the
//!    gap — provided the residency over the gap stays within the pass
//!    budget. This is what turns fast-memory slack into saved transfers.
//! 2. **Load coalescing** — consecutive `Load` steps of contiguous regions
//!    of the same matrix merge into one transfer event (same element volume,
//!    fewer transfers). Only buffers used exclusively through `BufSlice`
//!    operands and released by `Discard` participate, so every use can be
//!    re-pointed at an offset of the merged buffer.
//!
//! Residency never exceeds `max(seed schedule peak, budget)`; load volume
//! and event counts never increase.

use super::analysis::{
    buffer_table, remap_op, residency_profile, BufInfo, CellSet, ConsumeKind, OriginKind,
};
use super::{Pass, PassReport, Result};
use crate::ir::{BufId, Schedule, Step};
use std::collections::HashMap;
use symla_matrix::Scalar;
use symla_memory::{Level, MatrixId, Region};

/// The merge/eliminate pass. See the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct MergeLoads {
    /// Fast-memory residency the pass may use when deferring discards.
    /// `None` caps residency at the seed schedule's own peak, so the
    /// optimized schedule fits wherever the seed fits.
    pub budget: Option<usize>,
}

impl MergeLoads {
    /// A pass instance with an explicit residency budget.
    pub fn with_budget(budget: usize) -> Self {
        Self {
            budget: Some(budget),
        }
    }
}

impl<T: Scalar> Pass<T> for MergeLoads {
    fn name(&self) -> &'static str {
        "merge-loads"
    }

    fn run(&self, mut schedule: Schedule<T>) -> Result<(Schedule<T>, PassReport)> {
        let cap = self.budget.unwrap_or_else(|| schedule_peak(&schedule));
        let mut report = PassReport::new("merge-loads");
        // Buffers may straddle groups in legacy serial schedules: track the
        // carried residency so per-group profiles stay exact.
        let mut live_outside: HashMap<BufId, usize> = HashMap::new();
        let mut resident_in = 0usize;
        for group in &mut schedule.groups {
            let steps = std::mem::take(&mut group.steps);
            let steps = dedup_loads(steps, resident_in, cap, &mut report)?;
            let steps = coalesce_loads(steps, resident_in, cap, &mut report)?;
            for step in &steps {
                match step {
                    Step::Load { region, dst, .. } | Step::Alloc { region, dst, .. } => {
                        live_outside.insert(*dst, region.len());
                        resident_in += region.len();
                    }
                    Step::Store { buf, .. } | Step::Discard { buf } => {
                        resident_in -= live_outside.remove(buf).unwrap_or(0);
                    }
                    _ => {}
                }
            }
            group.steps = steps;
        }
        Ok((schedule, report))
    }
}

/// Peak residency of the schedule (what `Engine::dry_run` reports as
/// `peak_resident`), from a single walk over the steps — no accounting
/// replay needed.
fn schedule_peak<T: Scalar>(schedule: &Schedule<T>) -> usize {
    let mut sizes: HashMap<BufId, usize> = HashMap::new();
    let mut resident = 0usize;
    let mut peak = 0usize;
    for step in schedule.groups.iter().flat_map(|g| g.steps.iter()) {
        match step {
            Step::Load { region, dst, .. } | Step::Alloc { region, dst, .. } => {
                sizes.insert(*dst, region.len());
                resident += region.len();
                peak = peak.max(resident);
            }
            Step::Store { buf, .. } | Step::Discard { buf } => {
                resident -= sizes.remove(buf).unwrap_or(0);
            }
            _ => {}
        }
    }
    peak
}

/// Whether a buffer can serve as a reuse source / alias target: loaded from
/// slow memory, never written by a compute, and consumed inside the group.
fn reusable(info: &BufInfo) -> bool {
    info.origin == OriginKind::Load && !info.is_dirty() && info.consumed.is_some()
}

/// Rewrites `step`'s buffer references through the alias map (offsets are
/// always zero for whole-buffer aliases).
fn apply_aliases<T: Scalar>(step: &mut Step<T>, alias: &HashMap<BufId, BufId>) {
    match step {
        Step::Store { buf, .. } | Step::Discard { buf } => {
            if let Some(&n) = alias.get(buf) {
                *buf = n;
            }
        }
        Step::Compute(op) => remap_op(op, |b| alias.get(&b).map(|&n| (n, 0))),
        _ => {}
    }
}

/// Phase 1: duplicate-resident elimination and deferred-discard revival.
fn dedup_loads<T: Scalar>(
    steps: Vec<Step<T>>,
    resident_in: usize,
    cap: usize,
    report: &mut PassReport,
) -> Result<Vec<Step<T>>> {
    let table = buffer_table(&steps)?;
    let mut res = residency_profile(&steps, resident_in);
    let mut out: Vec<Option<Step<T>>> = steps.into_iter().map(Some).collect();

    // (matrix, region) -> clean resident buffer
    let mut avail: HashMap<(MatrixId, Region), BufId> = HashMap::new();
    // (matrix, region) -> (clean discarded buffer, discard step index)
    let mut deferred: HashMap<(MatrixId, Region), (BufId, usize)> = HashMap::new();
    let mut alias: HashMap<BufId, BufId> = HashMap::new();
    // dynamic consume position/kind per surviving buffer
    let mut consume_of: HashMap<BufId, (usize, ConsumeKind)> = table
        .iter()
        .filter_map(|(b, info)| info.consumed.map(|c| (*b, c)))
        .collect();

    for i in 0..out.len() {
        if out[i].is_none() {
            continue; // dropped by an earlier rewrite
        }
        {
            let step = out[i].as_mut().expect("checked above");
            apply_aliases(step, &alias);
        }
        match out[i].as_ref().expect("checked above") {
            Step::Load {
                matrix,
                region,
                dst,
                level,
            } => {
                let dst = *dst;
                let info = &table[&dst];
                // Leveled loads are never merged: two transfers from
                // different tiers have distinct per-level accounting even
                // when they read the same cells.
                if !reusable(info) || !level.is_default() {
                    continue;
                }
                let key = (*matrix, region.clone());
                let len = region.len();
                if let Some(&src) = avail.get(&key) {
                    // The region is resident in a clean buffer: alias.
                    let (c_src, k_src) = consume_of[&src];
                    let (c_dst, k_dst) = consume_of[&dst];
                    let (first, first_kind, last, last_kind) = if c_src < c_dst {
                        (c_src, k_src, c_dst, k_dst)
                    } else {
                        (c_dst, k_dst, c_src, k_src)
                    };
                    // The earlier consume is dropped, so it must be a
                    // discard; the surviving consume keeps its kind.
                    if first_kind == ConsumeKind::Discard {
                        out[i] = None;
                        out[first] = None;
                        alias.insert(dst, src);
                        consume_of.insert(src, (last, last_kind));
                        for r in res.iter_mut().take(first).skip(i) {
                            *r -= len;
                        }
                        report.loads_eliminated += len as u64;
                        report.steps_removed += 2;
                        continue;
                    }
                } else if let Some(&(src, didx)) = deferred.get(&key) {
                    // The region was resident in a clean buffer that has
                    // been discarded: defer that discard instead, if the
                    // extra residency over the gap fits the budget.
                    let fits = res[didx..i].iter().all(|&r| r + len <= cap);
                    if fits {
                        out[didx] = None;
                        out[i] = None;
                        alias.insert(dst, src);
                        consume_of.insert(src, consume_of[&dst]);
                        for r in res.iter_mut().take(i).skip(didx) {
                            *r += len;
                        }
                        deferred.remove(&key);
                        avail.insert(key, src);
                        report.loads_eliminated += len as u64;
                        report.steps_removed += 2;
                        continue;
                    }
                }
                avail.insert(key, dst);
            }
            Step::Store { buf, .. } => {
                let buf = *buf;
                match table.get(&buf) {
                    Some(info) => {
                        // A store changes slow memory: every cached clean
                        // region of the same matrix overlapping it is stale.
                        let mut stored = CellSet::default();
                        stored.insert_region(info.matrix, &info.region);
                        avail.retain(|(m, r), _| !stored.overlaps_region(*m, r));
                        deferred.retain(|(m, r), _| !stored.overlaps_region(*m, r));
                    }
                    None => {
                        // A buffer created outside this group: unknown
                        // region, invalidate everything.
                        avail.clear();
                        deferred.clear();
                    }
                }
                avail.retain(|_, b| *b != buf);
            }
            Step::Discard { buf } => {
                let buf = *buf;
                if let Some(key) = avail
                    .iter()
                    .find(|(_, b)| **b == buf)
                    .map(|(k, _)| k.clone())
                {
                    avail.remove(&key);
                    deferred.insert(key, (buf, i));
                }
            }
            _ => {}
        }
    }
    Ok(out.into_iter().flatten().collect())
}

/// Result of merging two contiguous regions: the merged region and the
/// buffer offsets of the existing chain and of the newly added region.
fn merge_regions(a: &Region, b: &Region) -> Option<(Region, usize, usize)> {
    match (a, b) {
        (
            Region::Rect {
                row0: r1,
                col0: c1,
                rows: h1,
                cols: w1,
            },
            Region::Rect {
                row0: r2,
                col0: c2,
                rows: h2,
                cols: w2,
            },
        ) => merge_rects(false, *r1, *c1, *h1, *w1, *r2, *c2, *h2, *w2),
        (
            Region::SymRect {
                row0: r1,
                col0: c1,
                rows: h1,
                cols: w1,
            },
            Region::SymRect {
                row0: r2,
                col0: c2,
                rows: h2,
                cols: w2,
            },
        ) => merge_rects(true, *r1, *c1, *h1, *w1, *r2, *c2, *h2, *w2),
        (
            Region::Rows {
                rows: rows1,
                col0: c1,
                cols: w1,
            },
            Region::Rows {
                rows: rows2,
                col0: c2,
                cols: w2,
            },
        ) if rows1 == rows2 => merge_row_sets(false, rows1, *c1, *w1, *c2, *w2),
        (
            Region::SymRows {
                rows: rows1,
                col0: c1,
                cols: w1,
            },
            Region::SymRows {
                rows: rows2,
                col0: c2,
                cols: w2,
            },
        ) if rows1 == rows2 => merge_row_sets(true, rows1, *c1, *w1, *c2, *w2),
        _ => None,
    }
}

#[allow(clippy::too_many_arguments)]
fn merge_rects(
    sym: bool,
    r1: usize,
    c1: usize,
    h1: usize,
    w1: usize,
    r2: usize,
    c2: usize,
    h2: usize,
    w2: usize,
) -> Option<(Region, usize, usize)> {
    let mk = |row0, col0, rows, cols| {
        if sym {
            Region::SymRect {
                row0,
                col0,
                rows,
                cols,
            }
        } else {
            Region::Rect {
                row0,
                col0,
                rows,
                cols,
            }
        }
    };
    if h1 == 0 || h2 == 0 || w1 == 0 || w2 == 0 {
        return None;
    }
    // single-column segments stacked vertically (column-major layout keeps
    // each part contiguous only for one column)
    if c1 == c2 && w1 == 1 && w2 == 1 {
        if r1 + h1 == r2 {
            return Some((mk(r1, c1, h1 + h2, 1), 0, h1));
        }
        if r2 + h2 == r1 {
            return Some((mk(r2, c2, h1 + h2, 1), h2, 0));
        }
    }
    // equal row ranges side by side (whole columns stay contiguous)
    if r1 == r2 && h1 == h2 {
        if c1 + w1 == c2 {
            return Some((mk(r1, c1, h1, w1 + w2), 0, h1 * w1));
        }
        if c2 + w2 == c1 {
            return Some((mk(r1, c2, h1, w1 + w2), h1 * w2, 0));
        }
    }
    None
}

fn merge_row_sets(
    sym: bool,
    rows: &[usize],
    c1: usize,
    w1: usize,
    c2: usize,
    w2: usize,
) -> Option<(Region, usize, usize)> {
    let mk = |col0, cols| {
        if sym {
            Region::SymRows {
                rows: rows.to_vec(),
                col0,
                cols,
            }
        } else {
            Region::Rows {
                rows: rows.to_vec(),
                col0,
                cols,
            }
        }
    };
    if rows.is_empty() || w1 == 0 || w2 == 0 {
        return None;
    }
    if c1 + w1 == c2 {
        return Some((mk(c1, w1 + w2), 0, rows.len() * w1));
    }
    if c2 + w2 == c1 {
        return Some((mk(c2, w1 + w2), rows.len() * w2, 0));
    }
    None
}

/// Phase 2: coalesce consecutive loads of contiguous regions.
fn coalesce_loads<T: Scalar>(
    steps: Vec<Step<T>>,
    resident_in: usize,
    cap: usize,
    report: &mut PassReport,
) -> Result<Vec<Step<T>>> {
    let table = buffer_table(&steps)?;
    let mut res = residency_profile(&steps, resident_in);
    let mut out: Vec<Option<Step<T>>> = steps.into_iter().map(Some).collect();
    // member buffer -> (head buffer, element offset in the merged buffer)
    let mut remap: HashMap<BufId, (BufId, usize)> = HashMap::new();

    // A buffer can be re-pointed at a slice offset only if every use is a
    // BufSlice operand and it is released by a plain discard.
    let sliceable = |b: BufId| -> bool {
        let info = &table[&b];
        info.origin == OriginKind::Load
            && !info.is_dirty()
            && info.whole_uses.is_empty()
            && matches!(info.consumed, Some((_, ConsumeKind::Discard)))
    };

    let mut i = 0;
    while i < out.len() {
        let Some(Step::Load {
            matrix,
            region,
            dst,
            level,
        }) = out[i].clone()
        else {
            i += 1;
            continue;
        };
        // Leveled loads never coalesce: the chain would lose which tier each
        // member read from.
        if !sliceable(dst) || region.is_empty() || !level.is_default() {
            i += 1;
            continue;
        }
        // grow a chain over the directly following loads
        let mut chain: Vec<(BufId, usize, usize)> = vec![(dst, 0, i)]; // (buf, offset, load idx)
        let mut chain_region = region.clone();
        let mut j = i + 1;
        while j < out.len() {
            let Some(Step::Load {
                matrix: m2,
                region: r2,
                dst: d2,
                level: l2,
            }) = out[j].clone()
            else {
                break;
            };
            if m2 != matrix || !sliceable(d2) || r2.is_empty() || !l2.is_default() {
                break;
            }
            let Some((merged, shift_existing, off_new)) = merge_regions(&chain_region, &r2) else {
                break;
            };
            // deferring the earlier discards must stay within the budget
            let mut candidate = chain.clone();
            candidate.push((d2, off_new, j));
            if !discard_extension_fits(&candidate, &table, &res, cap) {
                break;
            }
            for (_, off, _) in &mut chain {
                *off += shift_existing;
            }
            chain.push((d2, off_new, j));
            chain_region = merged;
            j += 1;
        }
        if chain.len() > 1 {
            let head = chain[0].0;
            let extended = chain.len() as u64 - 1;
            // merged load at the head position
            out[i] = Some(Step::Load {
                matrix,
                region: chain_region,
                dst: head,
                level: Level::default(),
            });
            // member loads disappear
            for &(_, _, load_idx) in &chain[1..] {
                out[load_idx] = None;
            }
            // all but the last discard disappear; residency bookkeeping
            let discards: Vec<(usize, usize)> = chain
                .iter()
                .map(|&(b, _, _)| {
                    let (d, _) = table[&b].consumed.expect("sliceable implies consumed");
                    (d, table[&b].region.len())
                })
                .collect();
            let last_d = discards.iter().map(|&(d, _)| d).max().expect("non-empty");
            for &(d, len) in &discards {
                if d != last_d {
                    out[d] = None;
                    for r in res.iter_mut().take(last_d).skip(d) {
                        *r += len;
                    }
                }
            }
            if let Some(Step::Discard { buf }) = out[last_d].as_mut() {
                *buf = head;
            }
            // member loads moved to the head: early-resident bookkeeping
            for &(b, _, load_idx) in &chain[1..] {
                let len = table[&b].region.len();
                for r in res.iter_mut().take(load_idx).skip(i) {
                    *r += len;
                }
            }
            for &(b, off, _) in &chain {
                remap.insert(b, (head, off));
            }
            report.load_events_merged += extended;
            report.steps_removed += 2 * extended;
        }
        i = j.max(i + 1);
    }

    // re-point every slice use at the merged buffers
    for step in out.iter_mut().flatten() {
        if let Step::Compute(op) = step {
            remap_op(op, |b| remap.get(&b).copied());
        }
    }
    Ok(out.into_iter().flatten().collect())
}

/// Whether releasing all chain members at the last member's discard keeps
/// residency within `cap` over the extension window.
fn discard_extension_fits(
    chain: &[(BufId, usize, usize)],
    table: &HashMap<BufId, BufInfo>,
    res: &[usize],
    cap: usize,
) -> bool {
    let discards: Vec<(usize, usize)> = chain
        .iter()
        .map(|&(b, _, _)| {
            let (d, _) = table[&b].consumed.expect("sliceable implies consumed");
            (d, table[&b].region.len())
        })
        .collect();
    let last_d = discards.iter().map(|&(d, _)| d).max().expect("non-empty");
    let min_d = discards.iter().map(|&(d, _)| d).min().expect("non-empty");
    for (t, &res_t) in res.iter().enumerate().take(last_d).skip(min_d) {
        let extra: usize = discards
            .iter()
            .filter(|&&(d, _)| d <= t && d != last_d)
            .map(|&(_, len)| len)
            .sum();
        if res_t + extra > cap {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::ir::{BufSlice, ComputeOp, ScheduleBuilder};
    use crate::passes::verify::check_equivalent;

    fn id() -> MatrixId {
        MatrixId::synthetic(1)
    }

    fn run_pass(schedule: &Schedule<f64>, budget: Option<usize>) -> (Schedule<f64>, PassReport) {
        let pass = MergeLoads { budget };
        let (opt, report) = pass.run(schedule.clone()).unwrap();
        check_equivalent(schedule, &opt).unwrap();
        (opt, report)
    }

    #[test]
    fn duplicate_resident_load_is_eliminated() {
        let mut b = ScheduleBuilder::<f64>::new();
        let c = b.load(id(), Region::rect(0, 0, 2, 2));
        let x = b.load(id(), Region::col_segment(4, 0, 2));
        let y = b.load(id(), Region::col_segment(4, 0, 2)); // duplicate of x
        b.compute(ComputeOp::Ger {
            alpha: 1.0,
            x: BufSlice::whole(x, 2),
            y: BufSlice::whole(y, 2),
            dst: c,
        });
        b.discard(x);
        b.discard(y);
        b.store(c);
        let seed = b.finish();

        let (opt, report) = run_pass(&seed, None);
        assert_eq!(report.loads_eliminated, 2);
        assert_eq!(report.steps_removed, 2);
        let dry = Engine::dry_run(&opt, "m");
        let seed_dry = Engine::dry_run(&seed, "m");
        assert_eq!(dry.volume.loads, seed_dry.volume.loads - 2);
        assert_eq!(dry.load_events, seed_dry.load_events - 1);
        assert!(dry.peak_resident <= seed_dry.peak_resident);
    }

    #[test]
    fn revival_requires_budget_headroom() {
        // load x, discard, load big, discard, reload x
        let mk = || {
            let mut b = ScheduleBuilder::<f64>::new();
            let x = b.load(id(), Region::col_segment(0, 0, 4));
            b.discard(x);
            let big = b.load(id(), Region::rect(0, 1, 4, 2));
            b.discard(big);
            let x2 = b.load(id(), Region::col_segment(0, 0, 4));
            b.discard(x2);
            b.finish()
        };
        let seed = mk();
        let seed_peak = Engine::dry_run(&seed, "m").peak_resident;
        assert_eq!(seed_peak, 8);

        // default cap = seed peak: reviving x would need 8 + 4 = 12
        let (_, report) = run_pass(&seed, None);
        assert_eq!(report.loads_eliminated, 0);

        // with headroom the reload disappears
        let (opt, report) = run_pass(&seed, Some(12));
        assert_eq!(report.loads_eliminated, 4);
        let dry = Engine::dry_run(&opt, "m");
        assert_eq!(dry.volume.loads, 12);
        assert_eq!(dry.peak_resident, 12);
    }

    #[test]
    fn store_to_overlapping_region_blocks_reuse() {
        // x is loaded, then the same region is stored through another
        // buffer, then reloaded: the reload must survive.
        let mut b = ScheduleBuilder::<f64>::new();
        let x = b.load(id(), Region::rect(0, 0, 2, 1));
        b.discard(x);
        let w = b.load(id(), Region::rect(0, 0, 2, 1));
        let z = b.load(id(), Region::col_segment(3, 0, 2));
        b.compute(ComputeOp::Ger {
            alpha: 1.0,
            x: BufSlice::whole(z, 2),
            y: BufSlice::new(z, 0, 1),
            dst: w,
        });
        b.discard(z);
        b.store(w); // overwrites rect(0,0,2,1)
        let x2 = b.load(id(), Region::rect(0, 0, 2, 1));
        b.discard(x2);
        let seed = b.finish();
        let (opt, report) = run_pass(&seed, Some(100));
        assert_eq!(report.loads_eliminated, 0, "{report}");
        assert_eq!(
            Engine::dry_run(&opt, "m").volume,
            Engine::dry_run(&seed, "m").volume
        );
    }

    #[test]
    fn adjacent_contiguous_loads_coalesce() {
        // the OOC_SYRK off-diagonal pattern with adjacent tiles: two column
        // segments of the same column, contiguous rows, loaded back to back
        let mut b = ScheduleBuilder::<f64>::new();
        let c = b.load(id(), Region::rect(2, 0, 2, 2));
        let arow = b.load(id(), Region::col_segment(5, 2, 2));
        let acol = b.load(id(), Region::col_segment(5, 0, 2));
        b.compute(ComputeOp::Ger {
            alpha: 1.0,
            x: BufSlice::whole(arow, 2),
            y: BufSlice::whole(acol, 2),
            dst: c,
        });
        b.discard(arow);
        b.discard(acol);
        b.store(c);
        let seed = b.finish();

        let (opt, report) = run_pass(&seed, None);
        assert_eq!(report.load_events_merged, 1);
        let dry = Engine::dry_run(&opt, "m");
        let seed_dry = Engine::dry_run(&seed, "m");
        assert_eq!(dry.volume.loads, seed_dry.volume.loads, "volume unchanged");
        assert_eq!(dry.load_events, seed_dry.load_events - 1);
        assert_eq!(dry.peak_resident, seed_dry.peak_resident);
        // the merged load covers rows 0..4 of column 5
        let merged = opt.groups[0]
            .steps
            .iter()
            .filter_map(|s| match s {
                Step::Load { region, .. } => Some(region.clone()),
                _ => None,
            })
            .any(|r| r == Region::col_segment(5, 0, 4));
        assert!(merged, "merged region missing: {opt:?}");
    }

    #[test]
    fn chains_of_three_loads_merge_into_one_event() {
        let mut b = ScheduleBuilder::<f64>::new();
        let s1 = b.load(id(), Region::col_segment(0, 0, 2));
        let s2 = b.load(id(), Region::col_segment(0, 2, 2));
        let s3 = b.load(id(), Region::col_segment(0, 4, 2));
        let c = b.load(id(), Region::rect(0, 1, 2, 2));
        b.compute(ComputeOp::Ger {
            alpha: 2.0,
            x: BufSlice::whole(s1, 2),
            y: BufSlice::whole(s3, 2),
            dst: c,
        });
        b.compute(ComputeOp::Ger {
            alpha: 1.0,
            x: BufSlice::whole(s2, 2),
            y: BufSlice::whole(s2, 2),
            dst: c,
        });
        b.discard(s1);
        b.discard(s2);
        b.discard(s3);
        b.store(c);
        let seed = b.finish();
        let (opt, report) = run_pass(&seed, None);
        assert_eq!(report.load_events_merged, 2);
        assert_eq!(Engine::dry_run(&opt, "m").load_events, 2);
    }

    #[test]
    fn buffers_used_whole_or_dirty_are_left_alone() {
        // seg is referenced whole by a solver step: no coalescing with the
        // adjacent load, no elimination.
        let mut b = ScheduleBuilder::<f64>::new();
        let tile = b.load(id(), Region::rect(0, 0, 2, 2));
        let seg = b.load(id(), Region::rect(0, 4, 2, 1));
        b.compute(ComputeOp::TrsmRightStep {
            seg,
            dst: tile,
            col: 0,
            pivot: 0,
        });
        b.discard(seg);
        b.store(tile);
        let seed = b.finish();
        let (opt, report) = run_pass(&seed, Some(1000));
        assert!(report.is_noop(), "{report}");
        assert_eq!(opt, seed);
    }

    #[test]
    fn cross_group_buffers_are_tolerated() {
        // legacy serial schedule: buffer loaded in one group, stored in the
        // next — the pass must not touch it or crash
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let x = b.load(id(), Region::rect(0, 0, 2, 2));
        b.begin_group();
        b.store(x);
        let seed = b.finish();
        let (opt, report) = run_pass(&seed, None);
        assert!(report.is_noop());
        assert_eq!(opt, seed);
    }
}
