//! Data-access footprint of a set of operations (Section 3.1 of the paper).
//!
//! For a subset `E` of operations:
//!
//! * `E|k` is the restriction of `E` to reduction index `k`
//!   (Definition 3.2);
//! * `τ(U)` is the *symmetric footprint* of a set `U` of `(i, j)` pairs — the
//!   set of indices appearing as a row or column (Definition 3.3);
//! * `D(E) = |∪_k E|k| + Σ_k |τ(E|k)|` is the number of distinct data
//!   elements accessed by `E` (Proposition 3.4): the first term counts the
//!   touched entries of the result matrix `C`, the second counts the touched
//!   entries of `A` (column `k` of `A` contributes its symmetric footprint,
//!   which is where the reuse `A[i,k]`/`A[j,k]` permitted by symmetry is
//!   accounted for).

use crate::ops::Op;
use std::collections::{BTreeMap, BTreeSet};

/// The restriction `E|k` of an operation set to one reduction index: the set
/// of `(i, j)` pairs occurring with that `k`.
pub fn restriction(ops: &[Op], k: usize) -> BTreeSet<(usize, usize)> {
    ops.iter()
        .filter(|op| op.k == k)
        .map(|op| (op.i, op.j))
        .collect()
}

/// All restrictions of an operation set, keyed by `k` (only non-empty ones).
pub fn restrictions(ops: &[Op]) -> BTreeMap<usize, BTreeSet<(usize, usize)>> {
    let mut map: BTreeMap<usize, BTreeSet<(usize, usize)>> = BTreeMap::new();
    for op in ops {
        map.entry(op.k).or_default().insert((op.i, op.j));
    }
    map
}

/// Symmetric footprint `τ(U)` of a set of `(i, j)` pairs: every index that
/// appears as a row or as a column of some pair.
pub fn symmetric_footprint(pairs: &BTreeSet<(usize, usize)>) -> BTreeSet<usize> {
    let mut fp = BTreeSet::new();
    for &(i, j) in pairs {
        fp.insert(i);
        fp.insert(j);
    }
    fp
}

/// Breakdown of the data accessed by a set of operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataAccess {
    /// `|∪_k E|k|`: distinct entries of the result matrix `C` touched.
    pub c_elements: usize,
    /// `Σ_k |τ(E|k)|`: distinct entries of `A` touched (with symmetry reuse).
    pub a_elements: usize,
}

impl DataAccess {
    /// Total data accesses `D(E)`.
    pub fn total(&self) -> usize {
        self.c_elements + self.a_elements
    }
}

/// Computes `D(E)` (Proposition 3.4) for an explicit list of operations.
pub fn data_access(ops: &[Op]) -> DataAccess {
    let mut c_union: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut a_elements = 0usize;
    for (_, pairs) in restrictions(ops) {
        a_elements += symmetric_footprint(&pairs).len();
        c_union.extend(pairs.iter().copied());
    }
    DataAccess {
        c_elements: c_union.len(),
        a_elements,
    }
}

/// Upper bound on `|U|` given its footprint size (the paper's observation
/// after Definition 3.3): if `i > j` for every `(i, j) ∈ U` then
/// `|U| ≤ |τ(U)|·(|τ(U)|−1)/2`.
pub fn max_pairs_for_footprint(footprint: usize) -> usize {
    footprint * footprint.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::OpSet;

    #[test]
    fn restriction_and_footprint_basics() {
        let ops = vec![
            Op::new(3, 1, 0),
            Op::new(3, 2, 0),
            Op::new(5, 1, 1),
            Op::new(3, 1, 1),
        ];
        let r0 = restriction(&ops, 0);
        assert_eq!(r0.len(), 2);
        assert!(r0.contains(&(3, 1)));
        let r2 = restriction(&ops, 2);
        assert!(r2.is_empty());

        let fp = symmetric_footprint(&r0);
        assert_eq!(fp, BTreeSet::from([1, 2, 3]));

        let all = restrictions(&ops);
        assert_eq!(all.len(), 2);
        assert_eq!(all[&1].len(), 2);
    }

    #[test]
    fn data_access_counts_symmetric_reuse() {
        // Two operations in the same k sharing footprint index 3:
        // (3,1,0) uses A[3,0], A[1,0]; (4,3,0) uses A[4,0], A[3,0].
        // C elements: {(3,1), (4,3)} -> 2; A elements: tau = {1,3,4} -> 3.
        let ops = vec![Op::new(3, 1, 0), Op::new(4, 3, 0)];
        let d = data_access(&ops);
        assert_eq!(d.c_elements, 2);
        assert_eq!(d.a_elements, 3);
        assert_eq!(d.total(), 5);
    }

    #[test]
    fn data_access_separate_k_no_reuse_across_columns() {
        // Same (i, j) pair in two different columns of A: C counted once,
        // A footprint counted per column.
        let ops = vec![Op::new(2, 0, 0), Op::new(2, 0, 1)];
        let d = data_access(&ops);
        assert_eq!(d.c_elements, 1);
        assert_eq!(d.a_elements, 4);
    }

    #[test]
    fn full_syrk_data_access_matches_closed_form() {
        // The whole SYRK op set touches all N(N-1)/2 strict-lower C entries
        // and for each of the M columns all N entries of that column of A.
        let n = 7;
        let m = 4;
        let ops: Vec<Op> = OpSet::Syrk { n, m }.iter().collect();
        let d = data_access(&ops);
        assert_eq!(d.c_elements, n * (n - 1) / 2);
        assert_eq!(d.a_elements, n * m);
    }

    #[test]
    fn full_cholesky_updates_data_access() {
        // For the Cholesky update set, iteration k touches columns k of A
        // restricted to rows > k, i.e. footprint size N - 1 - k... but only
        // for k <= N - 3 (otherwise no operations). C entries touched: all
        // (i, j) with j >= 1, i > j, i.e. pairs with j in 1..N-1: every pair
        // (i, j) with i > j >= 1.
        let n = 8_usize;
        let ops: Vec<Op> = OpSet::CholeskyUpdates { n }.iter().collect();
        let d = data_access(&ops);
        let expected_c = (n - 1) * (n - 2) / 2;
        let expected_a: usize = (0..n.saturating_sub(2)).map(|k| n - 1 - k).sum();
        assert_eq!(d.c_elements, expected_c);
        assert_eq!(d.a_elements, expected_a);
    }

    #[test]
    fn max_pairs_bound_holds_for_restrictions() {
        let ops: Vec<Op> = OpSet::Syrk { n: 6, m: 3 }.iter().collect();
        for (_, pairs) in restrictions(&ops) {
            let fp = symmetric_footprint(&pairs);
            assert!(pairs.len() <= max_pairs_for_footprint(fp.len()));
        }
        assert_eq!(max_pairs_for_footprint(0), 0);
        assert_eq!(max_pairs_for_footprint(1), 0);
        assert_eq!(max_pairs_for_footprint(5), 10);
    }

    #[test]
    fn empty_set_has_zero_access() {
        let d = data_access(&[]);
        assert_eq!(d.total(), 0);
    }
}
