//! Indexing families (Definitions 5.1–5.4 of the paper) and the arithmetic
//! used to pick the TBS block-grid size `c`.
//!
//! A `(c, k)`-indexing family assigns to every block coordinate `(i, j)` a
//! function `f_{i,j} : [0, k) → [0, c)` giving, for each zone row `u`, the
//! position of the block's row inside that zone row. The family is *valid*
//! (Definition 5.2) when no two distinct blocks agree on two different zone
//! rows — which by Lemma 5.3 guarantees that the resulting triangle blocks are
//! pairwise disjoint.
//!
//! The paper's *cyclic* family (Definition 5.4) is valid whenever `c ≥ k − 1`
//! is coprime with every integer in `[2, k − 2]` (Lemma 5.5), i.e. whenever
//! `c` has no prime factor `≤ k − 2`.

use std::collections::HashMap;

/// Sieve of Eratosthenes: all primes `≤ n`.
pub fn primes_up_to(n: usize) -> Vec<usize> {
    if n < 2 {
        return Vec::new();
    }
    let mut is_prime = vec![true; n + 1];
    is_prime[0] = false;
    is_prime[1] = false;
    let mut p = 2;
    while p * p <= n {
        if is_prime[p] {
            let mut q = p * p;
            while q <= n {
                is_prime[q] = false;
                q += p;
            }
        }
        p += 1;
    }
    (2..=n).filter(|&i| is_prime[i]).collect()
}

/// The paper's constant `q`: the product of all primes `≤ k − 2` (the
/// primorial of `k − 2`). Returns `None` on overflow — `q` grows faster than
/// exponentially, so for realistic `k` this is only meaningful symbolically;
/// the algorithms never need the numeric value (they only need coprimality
/// tests, see [`is_coprime_with_range`]).
pub fn primorial_q(k: usize) -> Option<u128> {
    if k < 4 {
        return Some(1);
    }
    let mut q: u128 = 1;
    for p in primes_up_to(k - 2) {
        q = q.checked_mul(p as u128)?;
    }
    Some(q)
}

/// Whether `c` is coprime with every integer in `[2, limit]`, i.e. whether
/// `c` has no prime factor `≤ limit`.
pub fn is_coprime_with_range(c: usize, limit: usize) -> bool {
    if c == 0 {
        return false;
    }
    for p in primes_up_to(limit) {
        if p > c {
            break;
        }
        if c.is_multiple_of(p) {
            return false;
        }
    }
    true
}

/// The largest `c ≤ limit` that is coprime with every integer in
/// `[2, k − 2]`, or `None` if there is none `≥ 1`.
///
/// The paper guarantees `c ≥ ⌊limit/q⌋·q + 1` (numbers of the form `a·q + 1`
/// are always coprime with `q`), so the search below — which walks down from
/// `limit` — terminates quickly in practice.
pub fn largest_coprime_below(limit: usize, k: usize) -> Option<usize> {
    let bound = k.saturating_sub(2);
    let mut c = limit;
    while c >= 1 {
        if is_coprime_with_range(c, bound) {
            return Some(c);
        }
        c -= 1;
    }
    None
}

/// The cyclic `(c, k)`-indexing family of Definition 5.4:
/// `f_{i,j}(0) = j` and `f_{i,j}(u) = i + j·(u − 1) mod c` for `u > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CyclicIndexing {
    /// Zone side length `c` (the block grid is `c x c`).
    pub c: usize,
    /// Number of zone rows `k` (the triangle-block side length).
    pub k: usize,
}

impl CyclicIndexing {
    /// Creates the family for the given `(c, k)`.
    pub fn new(c: usize, k: usize) -> Self {
        Self { c, k }
    }

    /// `f_{i,j}(u)`.
    pub fn f(&self, i: usize, j: usize, u: usize) -> usize {
        debug_assert!(i < self.c && j < self.c && u < self.k);
        if u == 0 {
            j
        } else {
            (i + j * (u - 1)) % self.c
        }
    }

    /// The row-index set `R_{i,j} = { u·c + f_{i,j}(u) : 0 ≤ u < k }` of
    /// block `(i, j)` (Equation 1 of the paper). The indices are returned in
    /// zone-row order (`u = 0, 1, …`), hence strictly increasing.
    pub fn row_indices(&self, i: usize, j: usize) -> Vec<usize> {
        (0..self.k).map(|u| u * self.c + self.f(i, j, u)).collect()
    }

    /// Whether the family satisfies the sufficient condition of Lemma 5.5:
    /// `c ≥ k − 1` and `c` coprime with every integer in `[2, k − 2]`.
    pub fn satisfies_lemma_5_5(&self) -> bool {
        self.c + 1 >= self.k && is_coprime_with_range(self.c, self.k.saturating_sub(2))
    }

    /// Exhaustive validity check of Definition 5.2: no two distinct blocks
    /// agree on two different zone rows. Cost `O(c² · k²)`, intended for
    /// tests and moderate parameters.
    pub fn is_valid(&self) -> bool {
        // For every unordered pair of zone rows (u, v), the map
        // (i, j) -> (f(u), f(v)) must be injective.
        for u in 0..self.k {
            for v in (u + 1)..self.k {
                let mut seen: HashMap<(usize, usize), (usize, usize)> =
                    HashMap::with_capacity(self.c * self.c);
                for i in 0..self.c {
                    for j in 0..self.c {
                        let key = (self.f(i, j, u), self.f(i, j, v));
                        if let Some(&other) = seen.get(&key) {
                            if other != (i, j) {
                                return false;
                            }
                        }
                        seen.insert(key, (i, j));
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sieve_is_correct() {
        assert_eq!(primes_up_to(1), Vec::<usize>::new());
        assert_eq!(primes_up_to(2), vec![2]);
        assert_eq!(primes_up_to(20), vec![2, 3, 5, 7, 11, 13, 17, 19]);
        assert_eq!(primes_up_to(30).len(), 10);
    }

    #[test]
    fn primorial_values() {
        assert_eq!(primorial_q(3), Some(1));
        assert_eq!(primorial_q(4), Some(2));
        assert_eq!(primorial_q(5), Some(6)); // primes <= 3
        assert_eq!(primorial_q(7), Some(30)); // primes <= 5
        assert_eq!(primorial_q(9), Some(210)); // primes <= 7
                                               // overflow for large k
        assert_eq!(primorial_q(400), None);
    }

    #[test]
    fn coprimality_tests() {
        assert!(is_coprime_with_range(7, 5));
        assert!(!is_coprime_with_range(6, 5));
        assert!(is_coprime_with_range(1, 100));
        assert!(!is_coprime_with_range(0, 3));
        // 49 = 7^2 has a prime factor 7
        assert!(!is_coprime_with_range(49, 7));
        assert!(is_coprime_with_range(49, 6));
        // numbers a*q + 1 are coprime with q
        assert!(is_coprime_with_range(2 * 30 + 1, 5));
    }

    #[test]
    fn largest_coprime_search() {
        // k = 7 -> coprime with [2, 5] -> no factor 2, 3, 5
        assert_eq!(largest_coprime_below(20, 7), Some(19));
        assert_eq!(largest_coprime_below(18, 7), Some(17));
        assert_eq!(largest_coprime_below(16, 7), Some(13));
        // k small: everything is coprime with the empty range
        assert_eq!(largest_coprime_below(9, 3), Some(9));
        assert_eq!(largest_coprime_below(0, 5), None);
        // guaranteed lower bound floor(limit/q)*q + 1
        let limit = 1000;
        let k = 9; // q = 210
        let c = largest_coprime_below(limit, k).unwrap();
        assert!(c > (limit / 210) * 210);
    }

    #[test]
    fn cyclic_family_f_definition() {
        let fam = CyclicIndexing::new(7, 5);
        assert_eq!(fam.f(3, 2, 0), 2); // f(0) = j
        assert_eq!(fam.f(3, 2, 1), 3); // f(1) = i
        assert_eq!(fam.f(3, 2, 2), (3 + 2));
        assert_eq!(fam.f(3, 2, 4), (3 + 2 * 3) % 7);
    }

    #[test]
    fn row_indices_are_increasing_and_in_zone_rows() {
        let fam = CyclicIndexing::new(7, 5);
        for i in 0..7 {
            for j in 0..7 {
                let rows = fam.row_indices(i, j);
                assert_eq!(rows.len(), 5);
                for (u, &r) in rows.iter().enumerate() {
                    assert!(r >= u * 7 && r < (u + 1) * 7);
                }
                assert!(rows.windows(2).all(|w| w[0] < w[1]));
                // block (i, j) contains element (i + c, j): row 0 position j,
                // row 1 position i
                assert_eq!(rows[0], j);
                assert_eq!(rows[1], 7 + i);
            }
        }
    }

    #[test]
    fn lemma_5_5_condition_implies_validity() {
        // Valid cases: c coprime with [2, k-2], c >= k-1
        for &(c, k) in &[
            (5_usize, 4_usize),
            (7, 5),
            (7, 7),
            (11, 6),
            (13, 8),
            (25, 6),
            (49, 8),
        ] {
            let fam = CyclicIndexing::new(c, k);
            assert!(fam.satisfies_lemma_5_5(), "({c},{k}) should satisfy 5.5");
            assert!(fam.is_valid(), "({c},{k}) should be valid");
        }
    }

    #[test]
    fn invalid_when_c_shares_factors() {
        // c = 6, k = 5: 6 shares factors with [2, 3] -> the cyclic family is
        // actually invalid (collisions exist).
        let fam = CyclicIndexing::new(6, 5);
        assert!(!fam.satisfies_lemma_5_5());
        assert!(!fam.is_valid());

        // c = 4, k = 6: c < k - 1, not usable.
        let fam = CyclicIndexing::new(4, 6);
        assert!(!fam.satisfies_lemma_5_5());
    }

    #[test]
    fn k_at_most_3_is_always_valid() {
        // For k <= 3 the coprimality range [2, k-2] is empty, every c works.
        for c in 2..10 {
            let fam = CyclicIndexing::new(c, 3);
            assert!(fam.is_valid(), "c = {c}");
        }
    }
}
