//! Balanced solutions (Definition 4.2 and Lemma 4.3 of the paper).
//!
//! A balanced solution `B(x, m)` packs `x` operations into layers of at most
//! `m` operations each, every layer being a canonical triangle set `T(·)`:
//! `⌊x/m⌋` full layers of `T(m)` plus one remainder layer `T(x mod m)`.
//! Lemma 4.3 states that the balanced solution built from any feasible
//! operation set `E` (with `x = |E|` and `m = max_k |E|_k|`) accesses at most
//! as much data as `E` itself — which is why the lower-bound optimization can
//! be restricted to balanced solutions.

use crate::footprint::{self, DataAccess};
use crate::ops::Op;
use crate::triangle::{canonical_t, sigma};

/// A balanced solution `B(x, m)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BalancedSolution {
    /// Total number of operations `x`.
    pub x: usize,
    /// Layer size `m` (the maximum number of operations per reduction
    /// index).
    pub m: usize,
    /// Number of full layers `K = ⌊x/m⌋`.
    pub full_layers: usize,
    /// Size of the remainder layer `m' = x − K·m < m`.
    pub remainder: usize,
}

impl BalancedSolution {
    /// Builds `B(x, m)`. For `x > 0` requires `m ≥ 1`.
    pub fn new(x: usize, m: usize) -> Self {
        if x == 0 {
            return Self {
                x: 0,
                m,
                full_layers: 0,
                remainder: 0,
            };
        }
        assert!(m >= 1, "balanced solution with x > 0 requires m >= 1");
        Self {
            x,
            m,
            full_layers: x / m,
            remainder: x % m,
        }
    }

    /// Builds the balanced solution associated with an arbitrary operation
    /// set (Lemma 4.3): `x = |E|`, `m = max_k |E|_k|`.
    pub fn from_ops(ops: &[Op]) -> Self {
        let x = ops.len();
        let m = footprint::restrictions(ops)
            .values()
            .map(|pairs| pairs.len())
            .max()
            .unwrap_or(0);
        Self::new(x, m)
    }

    /// Number of operations (`x`).
    pub fn size(&self) -> usize {
        self.x
    }

    /// Data accessed by the balanced solution:
    /// * result elements: `m` if there is at least one full layer, otherwise
    ///   the remainder size (the union of identical canonical layers is one
    ///   layer, and `T(m′) ⊆ T(m)`);
    /// * input elements: `K·σ(m) + σ(m′)`.
    pub fn data_access(&self) -> DataAccess {
        let c_elements = if self.full_layers > 0 {
            self.m
        } else {
            self.remainder
        };
        let a_elements = self.full_layers * sigma(self.m) + sigma(self.remainder);
        DataAccess {
            c_elements,
            a_elements,
        }
    }

    /// Materializes the balanced solution as an explicit operation list
    /// (layer `k` holds `T(m)` for `k < K` and `T(m′)` for `k = K`). Used to
    /// cross-check [`BalancedSolution::data_access`] against the generic
    /// [`footprint::data_access`].
    pub fn ops(&self) -> Vec<Op> {
        let mut out = Vec::with_capacity(self.x);
        let full = canonical_t(self.m);
        for k in 0..self.full_layers {
            out.extend(full.iter().map(|&(i, j)| Op::new(i, j, k)));
        }
        let rem = canonical_t(self.remainder);
        out.extend(rem.iter().map(|&(i, j)| Op::new(i, j, self.full_layers)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::data_access;
    use crate::ops::OpSet;

    #[test]
    fn construction_and_size() {
        let b = BalancedSolution::new(10, 3);
        assert_eq!(b.full_layers, 3);
        assert_eq!(b.remainder, 1);
        assert_eq!(b.size(), 10);

        let empty = BalancedSolution::new(0, 0);
        assert_eq!(empty.size(), 0);
        assert_eq!(empty.data_access().total(), 0);
        assert!(empty.ops().is_empty());
    }

    #[test]
    #[should_panic(expected = "requires m >= 1")]
    fn zero_layer_size_with_ops_panics() {
        let _ = BalancedSolution::new(5, 0);
    }

    #[test]
    fn analytic_access_matches_materialized_ops() {
        for &(x, m) in &[
            (1usize, 1usize),
            (5, 2),
            (12, 4),
            (17, 5),
            (30, 6),
            (8, 8),
            (7, 10),
        ] {
            let b = BalancedSolution::new(x, m);
            let ops = b.ops();
            assert_eq!(ops.len(), x, "x={x} m={m}");
            let expected = data_access(&ops);
            assert_eq!(b.data_access(), expected, "x={x} m={m}");
        }
    }

    #[test]
    fn from_ops_picks_max_layer() {
        let ops = vec![
            Op::new(1, 0, 0),
            Op::new(2, 0, 0),
            Op::new(2, 1, 0),
            Op::new(1, 0, 5),
        ];
        let b = BalancedSolution::from_ops(&ops);
        assert_eq!(b.x, 4);
        assert_eq!(b.m, 3);
        assert_eq!(b.full_layers, 1);
        assert_eq!(b.remainder, 1);
    }

    #[test]
    fn lemma_4_3_balanced_no_worse_on_structured_sets() {
        // For several structured subsets of the SYRK op set, the balanced
        // solution accesses at most as much data (Lemma 4.3).
        let set = OpSet::Syrk { n: 8, m: 5 };
        let all: Vec<Op> = set.iter().collect();

        // (a) the full set
        let b = BalancedSolution::from_ops(&all);
        assert!(b.data_access().total() <= data_access(&all).total());

        // (b) a rectangular sub-block of C across all k
        let sub: Vec<Op> = all
            .iter()
            .copied()
            .filter(|op| op.i >= 4 && op.j < 3)
            .collect();
        let b = BalancedSolution::from_ops(&sub);
        assert!(b.data_access().total() <= data_access(&sub).total());

        // (c) a single column of C
        let col: Vec<Op> = all.iter().copied().filter(|op| op.j == 0).collect();
        let b = BalancedSolution::from_ops(&col);
        assert!(b.data_access().total() <= data_access(&col).total());
    }

    #[test]
    fn balanced_solution_of_triangle_layers_is_tight() {
        // If E already consists of identical triangle layers, the balanced
        // solution has exactly the same cost.
        let mut ops = Vec::new();
        let layer = canonical_t(6);
        for k in 0..4 {
            ops.extend(layer.iter().map(|&(i, j)| Op::new(i, j, k)));
        }
        let b = BalancedSolution::from_ops(&ops);
        assert_eq!(b.data_access(), data_access(&ops));
    }
}
