//! Double-buffered prefetch planning over the schedule IR.
//!
//! The paper's machine model makes out-of-core kernels transfer-bound: the
//! wall clock of a schedule is dominated by its load stream, not its flops.
//! A real machine hides that latency by *overlapping* communication with
//! computation. Because the IR of [`crate::ir`] makes the load stream
//! explicit, an engine variant can issue the [`Step::Load`]s of task group
//! `g+1` while group `g` computes — classic double buffering — and the
//! residency price of the lookahead can be measured exactly against the
//! fast-memory capacity `S`.
//!
//! [`PrefetchPlan::plan`] decides, ahead of any replay, which loads are
//! hoisted and to which group boundary. The plan is deterministic, so the
//! prefetching execute / dry-run / trace modes of
//! [`Engine`](crate::engine::Engine) agree step for step (the same
//! equivalence contract the non-prefetching modes already satisfy).
//!
//! ## Admission rules
//!
//! A load of group `h` may be issued at the boundary of an earlier group
//! `g >= h - lookahead` only when all of the following hold:
//!
//! 1. **Capacity** — at every point between the issue boundary and the
//!    load's original program point, the baseline residency plus all
//!    admitted prefetch buffers plus this load still fits in `S`: prefetch
//!    only consumes the *slack* `S − footprint`, so the peak residency of a
//!    prefetched replay never exceeds the capacity the schedule was built
//!    for.
//! 2. **Freshness** — no store between the issue boundary and the load's
//!    original position writes a region of the same matrix that overlaps
//!    the loaded region (checked at element granularity via
//!    [`Region::cells`]); prefetching such a load would read stale data.
//!    Stores *earlier in the target group itself* count: a group that
//!    writes a region before re-reading it keeps that load un-hoisted.
//! 3. **Self-containment** — the target group creates and releases all its
//!    own buffers. Groups that share buffers across boundaries (legal in
//!    the serial replay) are skipped entirely: their residency is already
//!    entangled with their neighbours, and they are exactly the groups the
//!    parallel engine rejects too.
//!
//! [`Step::Alloc`] steps are never prefetched: they move no data, so
//! hoisting them buys no overlap and only wastes slack.
//!
//! ## Placement: just-in-time
//!
//! An admitted load is issued at the **latest** feasible boundary. Both
//! admission checks test a window from the issue boundary to the load's
//! original position, so they only grow stricter as the boundary moves
//! earlier — the latest boundary is always the most admissible one, and it
//! pairs the transfer with the compute of the group directly preceding the
//! load's own, which is what maximizes the overlap under the wall-clock
//! model of [`crate::timing`]. A consequence worth naming: the modelled
//! wall-clock is monotone non-increasing in the lookahead, because deepening
//! the window never moves an already-feasible issue and (by the nesting of
//! the admission windows) never admits a load the shallower window could
//! not.

use crate::ir::{BufId, Schedule, Step, TaskGroup};
use crate::passes::analysis::{residency_profile, CellSet};
use std::collections::{BTreeMap, BTreeSet};
use symla_matrix::Scalar;
use symla_memory::{MatrixId, Region};

/// One planned prefetch: the `Load` step at `schedule.groups[group].steps[step]`
/// is issued ahead of its group, at the boundary recorded by the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchIssue {
    /// Index of the task group the load belongs to.
    pub group: usize,
    /// Index of the `Load` step within that group.
    pub step: usize,
}

/// A complete prefetch plan for one schedule: for every group boundary `g`,
/// the future loads issued there (in schedule order), plus the aggregate
/// volume the plan overlaps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefetchPlan {
    /// `issues[g]` = loads issued at the boundary of group `g` (i.e. while
    /// group `g` computes), in schedule order.
    pub(crate) issues: Vec<Vec<PrefetchIssue>>,
    /// `(group, step)` coordinates of prefetched loads (their original
    /// `Load` steps replay as handoffs). Keyed by position, not by
    /// [`BufId`]: buffer ids are only unique within one builder, and
    /// concatenated schedules (e.g. the parallel partitions) legally reuse
    /// them across groups.
    prefetched_steps: BTreeSet<(usize, usize)>,
    /// Total elements the plan loads ahead of their group.
    pub planned_elements: u64,
    /// Total load transfers the plan issues ahead of their group.
    pub planned_events: u64,
}

impl PrefetchPlan {
    /// Plans the prefetches of `schedule` for a lookahead window of
    /// `lookahead` groups under a fast memory of `capacity` elements
    /// (`None` = unlimited). A `lookahead` of 0 yields the empty plan.
    pub fn plan<T: Scalar>(
        schedule: &Schedule<T>,
        lookahead: usize,
        capacity: Option<usize>,
    ) -> Self {
        let groups = schedule.num_groups();
        let mut plan = PrefetchPlan {
            issues: vec![Vec::new(); groups],
            ..Self::default()
        };
        if lookahead == 0 || groups < 2 {
            return plan;
        }

        // One pass over the flattened schedule collects everything the
        // admission checks need: `after[i]` is the residency after the
        // first `i` steps (so `after[group_start[g]]` is the residency at
        // the boundary where group `g`'s prefetches issue), and `stores`
        // records every write-back with the (matrix, region) binding its
        // buffer id had *at that point* — bindings are resolved in program
        // order because concatenated schedules legally rebind ids later.
        let mut group_start = Vec::with_capacity(groups);
        let mut after = vec![0i64];
        let mut stores: Vec<StoreRecord> = Vec::new();
        let mut sizes: BTreeMap<BufId, usize> = BTreeMap::new();
        let mut buf_meta: BTreeMap<BufId, (MatrixId, Region)> = BTreeMap::new();
        for group in &schedule.groups {
            group_start.push(after.len() - 1);
            for step in &group.steps {
                let pos = after.len() - 1;
                let mut resident = *after.last().expect("after is non-empty");
                match step {
                    Step::Load {
                        matrix,
                        region,
                        dst,
                        ..
                    }
                    | Step::Alloc {
                        matrix,
                        region,
                        dst,
                    } => {
                        resident += region.len() as i64;
                        sizes.insert(*dst, region.len());
                        buf_meta.insert(*dst, (*matrix, region.clone()));
                    }
                    Step::Store { buf, .. } => {
                        resident -= sizes.get(buf).copied().unwrap_or(0) as i64;
                        if let Some((matrix, region)) = buf_meta.get(buf) {
                            stores.push(StoreRecord {
                                pos,
                                matrix: *matrix,
                                region: region.clone(),
                            });
                        }
                    }
                    Step::Discard { buf } => {
                        resident -= sizes.get(buf).copied().unwrap_or(0) as i64;
                    }
                    Step::Flops(_) | Step::Compute(_) => {}
                }
                after.push(resident);
            }
        }
        let self_contained: Vec<bool> = schedule.groups.iter().map(is_self_contained).collect();

        // Extra residency already committed by admitted prefetches, indexed
        // like `after`.
        let mut extra = vec![0i64; after.len()];

        for h in 1..groups {
            if !self_contained[h] {
                continue;
            }
            let mut pos = group_start[h];
            for (step_idx, step) in schedule.groups[h].steps.iter().enumerate() {
                pos += 1; // `after[pos]` is now the residency after this step
                let Step::Load { matrix, region, .. } = step else {
                    continue;
                };
                let size = region.len() as i64;
                if size == 0 {
                    continue;
                }
                // The candidate's element set, materialized once per load
                // (boundaries only shrink the window it is tested against).
                let mut candidate: Option<CellSet> = None;
                let earliest = h.saturating_sub(lookahead);
                // Latest boundary first: the admission windows nest, so the
                // first feasible boundary found this way is also the one
                // that overlaps best (see the module docs).
                for g in (earliest..h).rev() {
                    let boundary = group_start[g];
                    // Capacity: the buffer is resident from the boundary of
                    // `g` until its original load point (where the baseline
                    // already accounts for it).
                    let window = boundary..pos;
                    let fits = capacity.is_none_or(|cap| {
                        window
                            .clone()
                            .all(|i| after[i] + extra[i] + size <= cap as i64)
                    });
                    if !fits {
                        continue;
                    }
                    let candidate = candidate.get_or_insert_with(|| {
                        let mut set = CellSet::default();
                        set.insert_region(*matrix, region);
                        set
                    });
                    if !fresh_over(&stores, candidate, boundary, pos) {
                        continue;
                    }
                    for i in window {
                        extra[i] += size;
                    }
                    plan.issues[g].push(PrefetchIssue {
                        group: h,
                        step: step_idx,
                    });
                    plan.prefetched_steps.insert((h, step_idx));
                    plan.planned_elements += size as u64;
                    plan.planned_events += 1;
                    break;
                }
            }
        }
        plan
    }

    /// The loads issued at the boundary of group `g` (empty past the end).
    pub fn issues_at(&self, g: usize) -> &[PrefetchIssue] {
        self.issues.get(g).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the `Load` at `schedule.groups[group].steps[step]` is issued
    /// ahead of its group (its original position replays as a handoff).
    pub fn is_prefetched(&self, group: usize, step: usize) -> bool {
        self.prefetched_steps.contains(&(group, step))
    }

    /// Whether the plan prefetches nothing.
    pub fn is_empty(&self) -> bool {
        self.planned_events == 0
    }

    /// Number of group boundaries the plan covers (the group count of the
    /// schedule it was planned for; 0 for the empty default plan).
    pub fn num_boundaries(&self) -> usize {
        self.issues.len()
    }

    /// Reassembles a plan from its serialized parts, rebuilding the
    /// prefetched-step index from the issue lists (used by the binary
    /// decoder in [`crate::binary`]).
    pub(crate) fn from_parts(
        issues: Vec<Vec<PrefetchIssue>>,
        planned_elements: u64,
        planned_events: u64,
    ) -> Self {
        let prefetched_steps = issues
            .iter()
            .flatten()
            .map(|issue| (issue.group, issue.step))
            .collect();
        Self {
            issues,
            prefetched_steps,
            planned_elements,
            planned_events,
        }
    }
}

/// One write-back observed while flattening the schedule: its flat step
/// position and the (matrix, region) binding its buffer id had *there*.
struct StoreRecord {
    pos: usize,
    matrix: MatrixId,
    region: Region,
}

/// Whether prefetching the `candidate` element set across the flat step
/// positions `[from, to)` reads fresh data: no store in that window writes
/// an overlapping region of the same matrix. `stores` is sorted by
/// position, so the window is a binary-searched slice.
fn fresh_over(stores: &[StoreRecord], candidate: &CellSet, from: usize, to: usize) -> bool {
    let start = stores.partition_point(|s| s.pos < from);
    stores[start..]
        .iter()
        .take_while(|s| s.pos < to)
        .all(|s| !candidate.overlaps_region(s.matrix, &s.region))
}

/// Whether a group creates and consumes all of its own buffers (the same
/// requirement `Engine::execute_parallel` enforces at replay time).
pub(crate) fn is_self_contained<T: Scalar>(group: &TaskGroup<T>) -> bool {
    let mut live: BTreeSet<BufId> = BTreeSet::new();
    for step in &group.steps {
        match step {
            Step::Load { dst, .. } | Step::Alloc { dst, .. } => {
                live.insert(*dst);
            }
            Step::Store { buf, .. } | Step::Discard { buf } => {
                if !live.remove(buf) {
                    return false; // consumes a buffer it did not create
                }
            }
            Step::Compute(_) | Step::Flops(_) => {}
        }
    }
    live.is_empty()
}

/// Peak residency of one self-contained group's own trajectory (`None` when
/// the group is not self-contained). Used by the parallel engine to admit
/// prefetches against the per-worker capacity.
pub(crate) fn group_peak<T: Scalar>(group: &TaskGroup<T>) -> Option<usize> {
    if !is_self_contained(group) {
        return None;
    }
    Some(
        residency_profile(&group.steps, 0)
            .into_iter()
            .max()
            .unwrap_or(0),
    )
}

/// The loads of a self-contained group that may legally be hoisted to the
/// group's start: loads not preceded (within the group) by a store writing
/// an overlapping region of the same matrix. Returned as
/// `(step index, elements)` pairs in schedule order. Used by the parallel
/// engine, whose caller already asserts cross-group independence.
pub(crate) fn hoistable_loads<T: Scalar>(group: &TaskGroup<T>) -> Vec<(usize, usize)> {
    let mut buf_meta: BTreeMap<BufId, (MatrixId, Region)> = BTreeMap::new();
    let mut stored = CellSet::default();
    let mut out = Vec::new();
    for (idx, step) in group.steps.iter().enumerate() {
        match step {
            Step::Load {
                matrix,
                region,
                dst,
                ..
            } => {
                if !region.is_empty() && !stored.overlaps_region(*matrix, region) {
                    out.push((idx, region.len()));
                }
                buf_meta.insert(*dst, (*matrix, region.clone()));
            }
            Step::Alloc {
                matrix,
                region,
                dst,
            } => {
                buf_meta.insert(*dst, (*matrix, region.clone()));
            }
            Step::Store { buf, .. } => {
                if let Some((matrix, region)) = buf_meta.get(buf) {
                    stored.insert_region(*matrix, region);
                }
            }
            Step::Discard { .. } | Step::Compute(_) | Step::Flops(_) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ScheduleBuilder;
    use symla_memory::{Level, MatrixId};

    /// Two groups, each loading a disjoint block: with lookahead 1 and
    /// enough slack, group 1's loads are issued at group 0's boundary.
    fn two_group_schedule() -> Schedule<f64> {
        let id = MatrixId::synthetic(0);
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let x = b.load(id, Region::rect(0, 0, 2, 2));
        b.store(x);
        b.begin_group();
        let y = b.load(id, Region::rect(2, 2, 2, 2));
        b.store(y);
        b.finish()
    }

    #[test]
    fn lookahead_zero_plans_nothing() {
        let plan = PrefetchPlan::plan(&two_group_schedule(), 0, Some(100));
        assert!(plan.is_empty());
        assert_eq!(plan.planned_elements, 0);
        assert!(plan.issues_at(0).is_empty());
        assert!(plan.issues_at(99).is_empty());
    }

    #[test]
    fn disjoint_groups_prefetch_under_slack() {
        let plan = PrefetchPlan::plan(&two_group_schedule(), 1, Some(8));
        assert_eq!(plan.planned_events, 1);
        assert_eq!(plan.planned_elements, 4);
        assert_eq!(plan.issues_at(0), &[PrefetchIssue { group: 1, step: 0 }]);
        assert!(plan.is_prefetched(1, 0));
        assert!(!plan.is_prefetched(0, 0));
    }

    #[test]
    fn no_slack_means_no_prefetch() {
        // Capacity 4 holds exactly one 2x2 block: the prefetch would overlap
        // with group 0's resident buffer and is rejected.
        let plan = PrefetchPlan::plan(&two_group_schedule(), 1, Some(4));
        assert!(plan.is_empty());
        // capacity 7 is one element short of the 4 + 4 the overlap needs
        assert!(PrefetchPlan::plan(&two_group_schedule(), 1, Some(7)).is_empty());
        // unlimited capacity admits everything
        assert!(!PrefetchPlan::plan(&two_group_schedule(), 1, None).is_empty());
    }

    #[test]
    fn overlapping_store_blocks_the_prefetch() {
        // Group 0 stores the very region group 1 re-loads: hoisting the load
        // above that store would read stale data.
        let id = MatrixId::synthetic(0);
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let x = b.load(id, Region::rect(0, 0, 2, 2));
        b.store(x);
        b.begin_group();
        let y = b.load(id, Region::rect(1, 1, 2, 2)); // overlaps cell (1,1)
        b.discard(y);
        let schedule = b.finish();
        let plan = PrefetchPlan::plan(&schedule, 1, Some(100));
        assert!(plan.is_empty());

        // A store to a *different matrix* does not block it.
        let other = MatrixId::synthetic(1);
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let x = b.load(id, Region::rect(0, 0, 2, 2));
        b.store(x);
        b.begin_group();
        let y = b.load(other, Region::rect(1, 1, 2, 2));
        b.discard(y);
        let plan = PrefetchPlan::plan(&b.finish(), 1, Some(100));
        assert_eq!(plan.planned_events, 1);
    }

    #[test]
    fn stores_inside_the_target_group_block_reloads() {
        // Group 1 stores a region and loads it back within the same group:
        // the second load must not be hoisted above the store.
        let id = MatrixId::synthetic(0);
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let w = b.load(id, Region::rect(4, 4, 1, 1));
        b.discard(w);
        b.begin_group();
        let x = b.load(id, Region::rect(0, 0, 2, 2));
        b.store(x);
        let y = b.load(id, Region::rect(0, 0, 2, 2));
        b.discard(y);
        let schedule = b.finish();
        let plan = PrefetchPlan::plan(&schedule, 1, Some(100));
        // the first load of group 1 is prefetched, the reload is not
        assert_eq!(plan.planned_events, 1);
        assert_eq!(plan.issues_at(0), &[PrefetchIssue { group: 1, step: 0 }]);
    }

    #[test]
    fn freshness_uses_the_binding_live_at_the_store() {
        // Concatenated schedules legally rebind buffer ids across groups.
        // Group 0 stores Rect[0,0,2,2] through b0; a later group rebinds b0
        // to a disjoint region. The freshness check must compare group 1's
        // re-load against the binding b0 had AT THE STORE, not its last
        // binding — otherwise the hoist is wrongly admitted and reads stale
        // data.
        let m = MatrixId::synthetic(0);
        let schedule: Schedule<f64> = Schedule {
            groups: vec![
                TaskGroup {
                    phase: None,
                    steps: vec![
                        Step::Load {
                            matrix: m,
                            region: Region::rect(0, 0, 2, 2),
                            dst: 0,
                            level: Level::default(),
                        },
                        Step::Store {
                            buf: 0,
                            level: Level::default(),
                        },
                    ],
                },
                TaskGroup {
                    phase: None,
                    steps: vec![
                        Step::Load {
                            matrix: m,
                            region: Region::rect(0, 0, 2, 2),
                            dst: 1,
                            level: Level::default(),
                        },
                        Step::Discard { buf: 1 },
                    ],
                },
                TaskGroup {
                    phase: None,
                    steps: vec![
                        Step::Load {
                            matrix: m,
                            region: Region::rect(10, 10, 1, 1),
                            dst: 0, // rebinds b0 to a disjoint region
                            level: Level::default(),
                        },
                        Step::Discard { buf: 0 },
                    ],
                },
            ],
        };
        let plan = PrefetchPlan::plan(&schedule, 1, None);
        assert!(
            !plan.is_prefetched(1, 0),
            "group 1 re-reads what group 0 stores; hoisting it is stale"
        );
        // group 2's disjoint load is still free to prefetch
        assert!(plan.is_prefetched(2, 0));
    }

    #[test]
    fn non_self_contained_groups_are_skipped() {
        let id = MatrixId::synthetic(0);
        let mut b = ScheduleBuilder::<f64>::new();
        b.begin_group();
        let x = b.load(id, Region::rect(0, 0, 2, 2));
        b.begin_group();
        let y = b.load(id, Region::rect(2, 2, 2, 2));
        b.store(y);
        b.store(x); // consumes a group-0 buffer: group 1 is not self-contained
        let schedule = b.finish();
        assert!(!is_self_contained(&schedule.groups[1]));
        assert!(PrefetchPlan::plan(&schedule, 1, None).is_empty());
    }

    #[test]
    fn placement_is_just_in_time() {
        // Three tiny groups with plenty of slack: even at lookahead 2 each
        // load stays at its latest feasible boundary (directly before its
        // own group), where the issue overlaps the preceding group's
        // compute. Deepening the lookahead changes nothing — the admission
        // windows nest, so a load the one-group window cannot place has no
        // earlier home either.
        let id = MatrixId::synthetic(0);
        let mut b = ScheduleBuilder::<f64>::new();
        for i in 0..3 {
            b.begin_group();
            let x = b.load(id, Region::rect(2 * i, 2 * i, 1, 1));
            b.store(x);
        }
        let schedule = b.finish();
        let one = PrefetchPlan::plan(&schedule, 1, Some(10));
        assert_eq!(one.planned_events, 2);
        assert_eq!(one.issues_at(0), &[PrefetchIssue { group: 1, step: 0 }]);
        assert_eq!(one.issues_at(1), &[PrefetchIssue { group: 2, step: 0 }]);
        let two = PrefetchPlan::plan(&schedule, 2, Some(10));
        assert_eq!(two, one, "deeper lookahead never moves a feasible issue");
    }

    #[test]
    fn group_analysis_helpers() {
        let schedule = two_group_schedule();
        assert!(is_self_contained(&schedule.groups[0]));
        assert_eq!(group_peak(&schedule.groups[0]), Some(4));
        assert_eq!(hoistable_loads(&schedule.groups[0]), vec![(0, 4)]);

        let id = MatrixId::synthetic(0);
        let mut b = ScheduleBuilder::<f64>::new();
        let x = b.load(id, Region::rect(0, 0, 2, 2));
        let y = b.load(id, Region::rect(0, 2, 2, 2));
        b.discard(x);
        b.store(y);
        let g = b.finish();
        assert_eq!(group_peak(&g.groups[0]), Some(8));
    }
}
