//! Modelled wall-clock time of a schedule replay, without executing it.
//!
//! [`modelled_time`] walks a [`Schedule`] with exactly the bookkeeping of
//! [`Engine::dry_run_with`](crate::Engine::dry_run_with) and prices every
//! event against a [`MachineModel`], bucketing costs into the per-group
//! windows of the engine's two-phase overlap model (see
//! [`TimeStats::add_window`]): within one window, prefetched loads overlap
//! the window's compute, demand loads and stores do not.
//!
//! The result is **bitwise-equal** (as `f64`s) to what a
//! [`LatencyMachine`](symla_memory::LatencyMachine) wrapping a real machine
//! accumulates during [`Engine::execute_with`](crate::Engine::execute_with)
//! of the same schedule under the same model, lookahead and capacity — both
//! walk the same events in the same order and add the same costs into the
//! same accumulators. The cross-crate test `tests/wallclock_model.rs`
//! asserts this for every builder; it is the timing analogue of the
//! `execute == dry_run` stats invariant.

use crate::ir::{Schedule, Step};
use crate::prefetch::PrefetchPlan;
use std::collections::BTreeMap;
use symla_matrix::Scalar;
use symla_memory::{MachineModel, TimeStats};
use symla_obs::{EventKind, ModelClock, ObsRecord, RunTrace};

/// Models the wall-clock of [`Engine::execute_with`](crate::Engine::execute_with)
/// on a machine of `capacity`, pricing transfers and flops with `model`.
///
/// `lookahead = 0` models the plain serial replay (every load is a demand
/// load; nothing overlaps). With `lookahead = L > 0` the same
/// [`PrefetchPlan`] the engine would compute decides which loads are issued
/// at a group boundary and therefore overlap that group's compute.
///
/// ```
/// use symla_memory::{MachineModel, MatrixId, Region};
/// use symla_sched::timing::modelled_time;
/// use symla_sched::ScheduleBuilder;
/// use symla_matrix::kernels::FlopCount;
///
/// let id = MatrixId::synthetic(0);
/// let mut b = ScheduleBuilder::<f64>::new();
/// for i in 0..4 {
///     b.begin_group();
///     let x = b.load(id, Region::rect(4 * i, 0, 4, 4));
///     b.flops(FlopCount::new(4096, 4096));
///     b.store(x);
/// }
/// let s = b.finish();
/// let model = MachineModel::dram();
/// let serial = modelled_time(&s, &model, 0, Some(64));
/// let overlapped = modelled_time(&s, &model, 1, Some(64));
/// // Volumes are unchanged, but prefetched loads hide behind compute.
/// assert_eq!(serial.io_ns, overlapped.io_ns);
/// assert!(overlapped.total_ns() < serial.total_ns());
/// ```
pub fn modelled_time<T: Scalar>(
    schedule: &Schedule<T>,
    model: &MachineModel,
    lookahead: usize,
    capacity: Option<usize>,
) -> TimeStats {
    let plan = if lookahead == 0 {
        PrefetchPlan::default()
    } else {
        PrefetchPlan::plan(schedule, lookahead, capacity)
    };
    modelled_time_planned(schedule, model, &plan)
}

/// [`modelled_time`] with an already-computed [`PrefetchPlan`] (the
/// modelled-time analogue of
/// [`Engine::execute_planned`](crate::Engine::execute_planned)). An empty
/// plan models the plain serial replay.
pub fn modelled_time_planned<T: Scalar>(
    schedule: &Schedule<T>,
    model: &MachineModel,
    plan: &PrefetchPlan,
) -> TimeStats {
    let mut time = TimeStats::default();
    let mut sizes: BTreeMap<crate::ir::BufId, usize> = BTreeMap::new();
    for (g, group) in schedule.groups.iter().enumerate() {
        // One window per group, mirroring the engine's
        // `note_group_boundary` cadence: the loads issued at this group's
        // boundary overlap this group's compute; everything else is serial.
        let mut demand_ns = 0.0_f64;
        let mut prefetch_ns = 0.0_f64;
        let mut compute_ns = 0.0_f64;
        for issue in plan.issues_at(g) {
            let Step::Load { region, level, .. } = &schedule.groups[issue.group].steps[issue.step]
            else {
                unreachable!("prefetch plans only target load steps");
            };
            prefetch_ns += model.load_ns_at(*level, region.len());
        }
        for (idx, step) in group.steps.iter().enumerate() {
            match step {
                Step::Load {
                    region, dst, level, ..
                } => {
                    sizes.insert(*dst, region.len());
                    if !plan.is_prefetched(g, idx) {
                        demand_ns += model.load_ns_at(*level, region.len());
                    }
                }
                Step::Alloc { region, dst, .. } => {
                    // Allocation moves no data: free, like the machine's
                    // `allocate_zeroed`. The eventual store is priced.
                    sizes.insert(*dst, region.len());
                }
                Step::Flops(flops) => compute_ns += model.compute_ns(flops.total()),
                Step::Store { buf, level } => {
                    demand_ns += model.store_ns_at(*level, sizes.remove(buf).unwrap_or(0));
                }
                Step::Discard { buf } => {
                    sizes.remove(buf);
                }
                Step::Compute(_) => {}
            }
        }
        time.add_window(demand_ns, prefetch_ns, compute_ns);
    }
    time
}

/// Synthesizes the [`RunTrace`] a serial
/// [`Engine::execute_with`](crate::Engine::execute_with) on an
/// [`InstrumentedMachine`](symla_obs::InstrumentedMachine) would record,
/// without executing anything — the observability analogue of
/// [`Engine::trace`](crate::Engine::trace).
///
/// The walker replays the engine's exact event cadence (boundary → group
/// start → prefetch issues → steps → group end) against a
/// [`ModelClock`], charging costs in the same floating-point operation
/// order as a real replay, so the synthesized events match an executed
/// trace **bitwise** in their modelled timestamps and exactly in kind and
/// order. Real-clock stamps are `0` (nothing ran) and all events sit on
/// worker track `0`; exporting both traces with
/// [`TimeBase::Modelled`](symla_obs::TimeBase) yields byte-identical
/// documents — the `ab_obs` gate asserts exactly that.
pub fn modelled_run_trace<T: Scalar>(
    schedule: &Schedule<T>,
    model: &MachineModel,
    lookahead: usize,
    capacity: Option<usize>,
) -> RunTrace {
    let plan = if lookahead == 0 {
        PrefetchPlan::default()
    } else {
        PrefetchPlan::plan(schedule, lookahead, capacity)
    };
    fn rec(clock: &ModelClock, kind: EventKind) -> ObsRecord {
        ObsRecord {
            worker: 0,
            real_ns: 0,
            model_ns: clock.now_ns(),
            kind,
        }
    }
    let mut clock = ModelClock::new();
    let mut events: Vec<ObsRecord> = Vec::new();
    let mut sizes: BTreeMap<crate::ir::BufId, usize> = BTreeMap::new();
    for (g, group) in schedule.groups.iter().enumerate() {
        clock.settle();
        events.push(rec(&clock, EventKind::GroupStart { group: g }));
        for issue in plan.issues_at(g) {
            let Step::Load { region, level, .. } = &schedule.groups[issue.group].steps[issue.step]
            else {
                unreachable!("prefetch plans only target load steps");
            };
            clock.charge_load(model.load_ns_at(*level, region.len()));
            clock.reclassify_last_load();
            events.push(rec(
                &clock,
                EventKind::Load {
                    elements: region.len(),
                    prefetched: true,
                    level: level.raw(),
                },
            ));
            events.push(rec(
                &clock,
                EventKind::PrefetchIssue {
                    group: issue.group,
                    step: issue.step,
                    elements: region.len(),
                },
            ));
        }
        for (idx, step) in group.steps.iter().enumerate() {
            match step {
                Step::Load {
                    region, dst, level, ..
                } => {
                    sizes.insert(*dst, region.len());
                    if plan.is_prefetched(g, idx) {
                        // The load itself was issued (and recorded) at an
                        // earlier boundary; its consumption is a handoff.
                        events.push(rec(
                            &clock,
                            EventKind::PrefetchDelivery {
                                group: g,
                                step: idx,
                            },
                        ));
                    } else {
                        clock.charge_load(model.load_ns_at(*level, region.len()));
                        events.push(rec(
                            &clock,
                            EventKind::Load {
                                elements: region.len(),
                                prefetched: false,
                                level: level.raw(),
                            },
                        ));
                    }
                }
                Step::Alloc { region, dst, .. } => {
                    sizes.insert(*dst, region.len());
                    events.push(rec(
                        &clock,
                        EventKind::Alloc {
                            elements: region.len(),
                        },
                    ));
                }
                Step::Flops(flops) => {
                    clock.charge_compute(model.compute_ns(flops.total()));
                    events.push(rec(&clock, EventKind::flops(*flops)));
                }
                Step::Compute(op) => {
                    events.push(rec(&clock, EventKind::Compute { kind: op.kind() }));
                }
                Step::Store { buf, level } => {
                    let elements = sizes.remove(buf).unwrap_or(0);
                    clock.charge_store(model.store_ns_at(*level, elements));
                    events.push(rec(
                        &clock,
                        EventKind::Store {
                            elements,
                            level: level.raw(),
                        },
                    ));
                }
                Step::Discard { buf } => {
                    let elements = sizes.remove(buf).unwrap_or(0);
                    events.push(rec(&clock, EventKind::Discard { elements }));
                }
            }
        }
        events.push(rec(&clock, EventKind::GroupEnd { group: g }));
    }
    clock.settle();
    RunTrace::from_events(events)
}

/// Per-group wall-clock contributions under the same window model as
/// [`modelled_time_planned`]: entry `g` is the modelled ns group `g` adds to
/// the serial critical path, `demand + max(prefetch, compute)` (prefetched
/// loads are charged to the group whose boundary issues them). Groups whose
/// window is empty contribute `0.0`.
///
/// Summing the entries recovers [`TimeStats::total_ns`] of
/// [`modelled_time_planned`] up to floating-point association order; the
/// per-group view exists for schedulers that need the *distribution* of the
/// time — notably the autotuner's parallel makespan model
/// ([`crate::autotune`]), which assigns group windows to workers.
pub fn modelled_group_times<T: Scalar>(
    schedule: &Schedule<T>,
    model: &MachineModel,
    plan: &PrefetchPlan,
) -> Vec<f64> {
    let mut out = Vec::with_capacity(schedule.groups.len());
    let mut sizes: BTreeMap<crate::ir::BufId, usize> = BTreeMap::new();
    for (g, group) in schedule.groups.iter().enumerate() {
        let mut demand_ns = 0.0_f64;
        let mut prefetch_ns = 0.0_f64;
        let mut compute_ns = 0.0_f64;
        for issue in plan.issues_at(g) {
            let Step::Load { region, level, .. } = &schedule.groups[issue.group].steps[issue.step]
            else {
                unreachable!("prefetch plans only target load steps");
            };
            prefetch_ns += model.load_ns_at(*level, region.len());
        }
        for (idx, step) in group.steps.iter().enumerate() {
            match step {
                Step::Load {
                    region, dst, level, ..
                } => {
                    sizes.insert(*dst, region.len());
                    if !plan.is_prefetched(g, idx) {
                        demand_ns += model.load_ns_at(*level, region.len());
                    }
                }
                Step::Alloc { region, dst, .. } => {
                    sizes.insert(*dst, region.len());
                }
                Step::Flops(flops) => compute_ns += model.compute_ns(flops.total()),
                Step::Store { buf, level } => {
                    demand_ns += model.store_ns_at(*level, sizes.remove(buf).unwrap_or(0));
                }
                Step::Discard { buf } => {
                    sizes.remove(buf);
                }
                Step::Compute(_) => {}
            }
        }
        out.push(demand_ns + prefetch_ns.max(compute_ns));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::ir::ScheduleBuilder;
    use symla_matrix::kernels::FlopCount;
    use symla_matrix::Matrix;
    use symla_memory::{LatencyMachine, MatrixId, OocMachine, Region};

    /// Two groups touching disjoint 3x3 blocks of one 6x6 matrix, with
    /// enough flops that a prefetched load hides completely.
    fn two_group_schedule() -> Schedule<f64> {
        let id = MatrixId::synthetic(0);
        let mut b = ScheduleBuilder::new();
        for i in 0..2 {
            b.begin_group();
            let x = b.load(id, Region::rect(3 * i, 0, 3, 3));
            b.flops(FlopCount::new(500, 500));
            b.store(x);
        }
        b.finish()
    }

    #[test]
    fn serial_time_is_priced_per_event() {
        let s = two_group_schedule();
        let model = MachineModel::dram();
        let t = modelled_time(&s, &model, 0, Some(64));
        let per_group = model.load_ns(9) + model.store_ns(9);
        assert_eq!(t.groups, 2);
        assert_eq!(t.io_ns, 2.0 * per_group);
        assert_eq!(t.compute_ns, 2.0 * model.compute_ns(1000));
        assert_eq!(t.hidden_ns, 0.0);
    }

    #[test]
    fn lookahead_hides_prefetched_loads() {
        let s = two_group_schedule();
        let model = MachineModel::dram();
        let serial = modelled_time(&s, &model, 0, Some(64));
        let overlapped = modelled_time(&s, &model, 1, Some(64));
        assert_eq!(serial.io_ns, overlapped.io_ns);
        assert!(overlapped.hidden_ns > 0.0);
        assert!(overlapped.total_ns() < serial.total_ns());
    }

    #[test]
    fn capacity_zero_slack_means_no_overlap() {
        let s = two_group_schedule();
        let model = MachineModel::dram();
        // Capacity 9 fits exactly one 3x3 block: no slack, no prefetch.
        let t = modelled_time(&s, &model, 1, Some(9));
        assert_eq!(t.hidden_ns, 0.0);
        assert_eq!(
            t.total_ns(),
            modelled_time(&s, &model, 0, Some(9)).total_ns()
        );
    }

    /// The core invariant: the model predicts exactly what a
    /// `LatencyMachine` measures during a real replay — bitwise, as `f64`s.
    #[test]
    fn model_matches_latency_machine_bitwise() {
        let s = two_group_schedule();
        let model = MachineModel::nvme();
        for lookahead in 0..3 {
            let mut machine = LatencyMachine::new(OocMachine::<f64>::with_capacity(64), model);
            let id = machine.inner_mut().insert_dense(Matrix::identity(6));
            assert_eq!(id, MatrixId::synthetic(0));
            Engine::execute_with(&mut machine, &s, &EngineConfig::with_lookahead(lookahead))
                .unwrap();
            let measured = machine.time();
            let modelled = modelled_time(&s, &model, lookahead, Some(64));
            assert_eq!(measured.io_ns.to_bits(), modelled.io_ns.to_bits());
            assert_eq!(measured.compute_ns.to_bits(), modelled.compute_ns.to_bits());
            assert_eq!(measured.hidden_ns.to_bits(), modelled.hidden_ns.to_bits());
            assert_eq!(measured.groups, modelled.groups);
        }
    }

    /// The leveled variant of the bitwise invariant: a schedule whose
    /// transfers name deeper tiers is priced with the per-level latency
    /// surcharges, and the prediction still matches a `LatencyMachine`
    /// replay over a `TieredMachine` bit for bit.
    #[test]
    fn leveled_model_matches_tiered_latency_machine_bitwise() {
        use symla_memory::{Level, TieredMachine};
        let id = MatrixId::synthetic(0);
        let mut b = ScheduleBuilder::<f64>::new();
        for i in 0..2 {
            b.begin_group();
            let x = b.load_from(id, Region::rect(3 * i, 0, 3, 3), Level::new(2 + i as u8));
            let y = b.load(id, Region::rect(0, 3, 2, 2));
            b.flops(FlopCount::new(500, 500));
            b.discard(y);
            b.store_to(x, Level::new(2 + i as u8));
        }
        let s = b.finish();
        assert!(s.is_leveled());
        let model = MachineModel::nvme()
            .with_level_extra(Level::new(2), 8.0)
            .with_level_extra(Level::new(3), 4000.0);
        for lookahead in 0..3 {
            let inner = {
                let mut m = OocMachine::<f64>::with_capacity(64);
                let mid = m.insert_dense(Matrix::identity(6));
                assert_eq!(mid, id);
                TieredMachine::new(m).with_tier(None).with_tier(None)
            };
            let mut machine = LatencyMachine::new(inner, model);
            Engine::execute_with(&mut machine, &s, &EngineConfig::with_lookahead(lookahead))
                .unwrap();
            let measured = machine.time();
            let modelled = modelled_time(&s, &model, lookahead, Some(64));
            assert_eq!(measured.io_ns.to_bits(), modelled.io_ns.to_bits());
            assert_eq!(measured.compute_ns.to_bits(), modelled.compute_ns.to_bits());
            assert_eq!(measured.hidden_ns.to_bits(), modelled.hidden_ns.to_bits());
            assert_eq!(measured.groups, modelled.groups);
            // leveled transfers cost strictly more than the two-level read
            // of the same volume under a surcharged model
            let collapsed = {
                let mut c = ScheduleBuilder::<f64>::new();
                for i in 0..2 {
                    c.begin_group();
                    let x = c.load(id, Region::rect(3 * i, 0, 3, 3));
                    let y = c.load(id, Region::rect(0, 3, 2, 2));
                    c.flops(FlopCount::new(500, 500));
                    c.discard(y);
                    c.store(x);
                }
                c.finish()
            };
            let flat = modelled_time(&collapsed, &model, lookahead, Some(64));
            assert!(modelled.io_ns > flat.io_ns);
        }
    }

    /// The observability analogue of the bitwise invariant: a synthesized
    /// trace exports byte-identically to the trace of a real instrumented
    /// replay (same events, same order, bitwise-equal modelled stamps).
    #[test]
    fn synthesized_trace_matches_executed_trace_bytewise() {
        use symla_obs::{InstrumentedMachine, TimeBase, TraceRecorder};
        let s = two_group_schedule();
        let model = MachineModel::nvme();
        for lookahead in 0..3 {
            let recorder = TraceRecorder::new();
            let mut inner = OocMachine::<f64>::with_capacity(64);
            let id = inner.insert_dense(Matrix::identity(6));
            assert_eq!(id, MatrixId::synthetic(0));
            let mut machine = InstrumentedMachine::new(inner, model, recorder.clone(), 0);
            Engine::execute_with(&mut machine, &s, &EngineConfig::with_lookahead(lookahead))
                .unwrap();
            let executed = recorder.finish();
            let synthesized = modelled_run_trace(&s, &model, lookahead, Some(64));
            assert_eq!(
                executed.to_chrome_trace(&[TimeBase::Modelled]),
                synthesized.to_chrome_trace(&[TimeBase::Modelled]),
                "lookahead {lookahead}"
            );
        }
    }

    #[test]
    fn planned_variant_matches_inline_planning() {
        let s = two_group_schedule();
        let model = MachineModel::dram();
        let plan = PrefetchPlan::plan(&s, 1, Some(64));
        let a = modelled_time(&s, &model, 1, Some(64));
        let b = modelled_time_planned(&s, &model, &plan);
        assert_eq!(a.total_ns().to_bits(), b.total_ns().to_bits());
    }
}
