//! Cost-model-driven autotuning over the schedule knob space.
//!
//! The stack below this module makes every knob of an out-of-core kernel
//! *scoreable without executing anything*: a builder emits IR for a given
//! tile size, the pass layer ([`crate::passes`]) rewrites it, the prefetch
//! planner ([`crate::prefetch`]) decides the overlap, and the dry run
//! ([`Engine::dry_run_with`]) plus the bitwise-verified wall-clock model
//! ([`crate::timing::modelled_time_planned`]) price the result exactly. The
//! [`Tuner`] turns that into a search: enumerate a [`TuningSpace`]
//! (tile size × [`PassPipeline`] × prefetch lookahead × transfer level ×
//! worker count), score every candidate with dry-run [`IoStats`] and
//! modelled ns against a
//! caller-supplied [`MachineModel`], and return a machine-readable
//! [`TuningReport`] naming the winner and the gap to the paper's
//! `mults/√(S/2)` I/O lower bound for every candidate.
//!
//! ## Search shape
//!
//! The search is a **staged beam search** with a deterministic tie-break
//! (first evaluated wins; evaluation order is the cross-product order of
//! the space, tiles outermost, workers innermost):
//!
//! 1. **Tiles** — build one seed schedule per tile via the caller's builder
//!    closure; builder errors and seeds whose dry-run peak exceeds the
//!    capacity are skipped (counted in [`TuningReport::skipped`]).
//! 2. **Pipelines** — apply each [`PassPipeline`] to each surviving seed,
//!    with the residency budget clamped to the capacity (mirroring the
//!    high-level API, so the scored schedule is byte-for-byte the one a
//!    later run executes).
//! 3. **Lookahead × workers** — full scoring: prefetch plan, prefetching
//!    dry run, [`modelled_time_planned`]; worker counts above one are
//!    priced as an LPT makespan over the per-group windows of
//!    [`modelled_group_times`].
//!
//! With the default unbounded beam ([`Tuner::new`]) the stages do not prune,
//! so the search is exhaustive over the cross-product — affordable because
//! scoring is data-free — and tuning is *monotone*: enlarging the space can
//! only append candidates, so the winner's modelled ns never worsens. A
//! bounded [`Tuner::with_beam_width`] prunes stages 1–2 by a proxy score
//! (modelled ns at the first lookahead of the space) and is best-effort,
//! though still deterministic.
//!
//! ## Zero executions
//!
//! Nothing in this module moves a byte of matrix data: the only engine
//! entry points used are [`Engine::dry_run`] / [`Engine::dry_run_with`].
//! The `ab_autotune` gate asserts this by construction (tuning happens
//! before any machine exists).

use crate::engine::{Engine, EngineConfig, ParallelError, WorkerRun};
use crate::ir::Schedule;
use crate::passes::{PassPipeline, StageOutcome};
use crate::prefetch::PrefetchPlan;
use crate::timing::{modelled_group_times, modelled_time_planned};
use crate::StableHasher;
use std::fmt;
use symla_matrix::Scalar;
use symla_memory::{IoStats, Level, MachineConfig, MachineModel, SharedSlowMemory};

/// The knob space a [`Tuner`] searches: the cross-product of tile sizes,
/// pass pipelines, prefetch lookaheads and worker counts.
///
/// `tiles` entries are opaque to the tuner — `None` means "the builder's
/// own planner default" and `Some(t)` is handed to the builder closure
/// verbatim (the high-level API maps it to the algorithm's tile parameter:
/// `k` for TBS, block size for LBC, square tile for the baselines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TuningSpace {
    /// Tile-size candidates; `None` = builder default.
    pub tiles: Vec<Option<usize>>,
    /// Pass-pipeline candidates.
    pub pipelines: Vec<PassPipeline>,
    /// Prefetch lookahead candidates (`0` = no prefetch).
    pub lookaheads: Vec<usize>,
    /// Transfer-level candidates: every candidate schedule is re-leveled so
    /// all its loads and stores name this tier
    /// ([`Schedule::with_transfer_level`]) and priced with the model's
    /// per-level surcharge. [`Level::default`] is the classic two-level
    /// replay.
    pub levels: Vec<Level>,
    /// Worker-count candidates (`1` = serial replay).
    pub workers: Vec<usize>,
}

impl Default for TuningSpace {
    fn default() -> Self {
        Self::minimal()
    }
}

impl TuningSpace {
    /// The smallest meaningful space: builder-default tile, the `none()`
    /// and `standard()` pipelines, lookahead 0 or 1, serial replay.
    pub fn minimal() -> Self {
        Self {
            tiles: vec![None],
            pipelines: vec![PassPipeline::none(), PassPipeline::standard()],
            lookaheads: vec![0, 1],
            levels: vec![Level::default()],
            workers: vec![1],
        }
    }

    /// Replaces the tile candidates.
    pub fn with_tiles(mut self, tiles: Vec<Option<usize>>) -> Self {
        self.tiles = tiles;
        self
    }

    /// Replaces the pipeline candidates.
    pub fn with_pipelines(mut self, pipelines: Vec<PassPipeline>) -> Self {
        self.pipelines = pipelines;
        self
    }

    /// Replaces the lookahead candidates.
    pub fn with_lookaheads(mut self, lookaheads: Vec<usize>) -> Self {
        self.lookaheads = lookaheads;
        self
    }

    /// Replaces the transfer-level candidates.
    pub fn with_levels(mut self, levels: Vec<Level>) -> Self {
        self.levels = levels;
        self
    }

    /// Replaces the worker-count candidates.
    pub fn with_workers(mut self, workers: Vec<usize>) -> Self {
        self.workers = workers;
        self
    }

    /// Number of points in the cross-product.
    pub fn len(&self) -> usize {
        self.tiles.len()
            * self.pipelines.len()
            * self.lookaheads.len()
            * self.levels.len()
            * self.workers.len()
    }

    /// Whether any axis is empty (an empty space cannot be tuned).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stable 64-bit fingerprint of the space, suitable as a plan-cache key
    /// parameter: equal spaces hash equal across processes and platforms.
    pub fn fingerprint(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.tiles.len() as u64);
        for tile in &self.tiles {
            match tile {
                None => h.write(&[0]),
                Some(t) => {
                    h.write(&[1]);
                    h.write_u64(*t as u64);
                }
            }
        }
        h.write_u64(self.pipelines.len() as u64);
        for p in &self.pipelines {
            h.write(&p.canonical_bytes());
        }
        h.write_u64(self.lookaheads.len() as u64);
        for &l in &self.lookaheads {
            h.write_u64(l as u64);
        }
        // The level axis joins the fingerprint only when it deviates from
        // the classic two-level default, so spaces predating the hierarchy
        // keep their cache keys.
        if self.levels != vec![Level::default()] {
            h.write(b"levels");
            h.write_u64(self.levels.len() as u64);
            for &l in &self.levels {
                h.write(&[l.raw()]);
            }
        }
        h.write_u64(self.workers.len() as u64);
        for &w in &self.workers {
            h.write_u64(w as u64);
        }
        h.finish()
    }
}

/// Stable 64-bit fingerprint of a [`MachineModel`]: the IEEE-754 bit
/// patterns of its four cost coefficients (plus the per-level latency
/// surcharges when any is configured), FNV-hashed. Used (with
/// [`TuningSpace::fingerprint`]) to key tuned plans in the plan cache —
/// tuning against a different machine must miss. Models without level
/// surcharges hash exactly as before the hierarchy existed, so established
/// cache keys stay valid.
pub fn model_fingerprint(model: &MachineModel) -> u64 {
    let mut h = StableHasher::new();
    for coeff in [
        model.load_ns_per_elem,
        model.store_ns_per_elem,
        model.fixed_event_ns,
        model.flop_ns,
    ] {
        h.write_u64(coeff.to_bits());
    }
    if model.level_extra_ns_per_elem.iter().any(|&e| e != 0.0) {
        h.write(b"levels");
        for e in model.level_extra_ns_per_elem {
            h.write_u64(e.to_bits());
        }
    }
    h.finish()
}

/// One point of a [`TuningSpace`]: the configuration a candidate was built
/// and scored with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TunedConfig {
    /// Tile override handed to the builder (`None` = builder default).
    pub tile: Option<usize>,
    /// Pass pipeline applied to the seed schedule.
    pub pipeline: PassPipeline,
    /// Prefetch lookahead.
    pub lookahead: usize,
    /// Memory tier every transfer of the candidate was re-leveled to.
    pub level: Level,
    /// Worker count the makespan was modelled for.
    pub workers: usize,
}

/// One fully-scored candidate of a tuning run.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The knob settings.
    pub config: TunedConfig,
    /// Prefetching dry-run accounting of the optimized schedule — exactly
    /// the [`IoStats`] a real replay of this configuration produces.
    pub stats: IoStats,
    /// Modelled wall-clock in ns ([`modelled_time_planned`]; LPT makespan
    /// over group windows when `config.workers > 1`).
    pub modelled_ns: f64,
    /// Measured load volume over the paper's lower bound `mults/√(S/2)`:
    /// `1.0` is optimal, `None` when the schedule performs no
    /// multiplications (no meaningful bound).
    pub gap_to_bound: Option<f64>,
}

/// Machine-readable result of one [`Tuner::tune`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningReport {
    /// Every fully-scored candidate, in deterministic evaluation order
    /// (cross-product order: tiles ▸ pipelines ▸ lookaheads ▸ levels ▸
    /// workers).
    pub candidates: Vec<Candidate>,
    /// Index into `candidates` of the winner (lowest modelled ns; ties go
    /// to the earliest evaluation).
    pub best: usize,
    /// Configurations skipped before full scoring (builder error or
    /// capacity-infeasible seed), counted as full cross-product points.
    pub skipped: usize,
    /// Beam width the search ran with (`None` = exhaustive).
    pub beam_width: Option<usize>,
    /// Fast-memory capacity (elements) the candidates were scored against.
    pub capacity: usize,
}

impl TuningReport {
    /// The winning candidate.
    pub fn winner(&self) -> &Candidate {
        &self.candidates[self.best]
    }

    /// The winning configuration.
    pub fn best_config(&self) -> &TunedConfig {
        &self.winner().config
    }

    /// Number of fully-scored candidates.
    pub fn evaluated(&self) -> usize {
        self.candidates.len()
    }

    /// Exports the tuning run into `registry` under `prefix`: counters for
    /// the candidates evaluated/skipped and the search capacity, gauges for
    /// the winner's modelled time, lookahead, workers and (when bounded)
    /// gap to the paper's lower bound, plus a histogram of every
    /// candidate's modelled ns — one namespace shared with the engine and
    /// cache metrics in a [`RunReport`](symla_obs::RunReport).
    pub fn export_metrics(&self, prefix: &str, registry: &mut symla_obs::MetricsRegistry) {
        registry.counter_add(&format!("{prefix}.candidates"), self.evaluated() as u128);
        registry.counter_add(&format!("{prefix}.skipped"), self.skipped as u128);
        registry.counter_add(&format!("{prefix}.capacity"), self.capacity as u128);
        let winner = self.winner();
        registry.gauge_set(&format!("{prefix}.best.modelled_ns"), winner.modelled_ns);
        registry.gauge_set(
            &format!("{prefix}.best.lookahead"),
            winner.config.lookahead as f64,
        );
        registry.gauge_set(
            &format!("{prefix}.best.workers"),
            winner.config.workers as f64,
        );
        if let Some(gap) = winner.gap_to_bound {
            registry.gauge_set(&format!("{prefix}.best.gap_to_bound"), gap);
        }
        for c in &self.candidates {
            registry.observe(&format!("{prefix}.modelled_ns"), c.modelled_ns);
        }
    }
}

/// Errors raised by [`Tuner::tune`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TuneError {
    /// The tuning space has an empty axis.
    EmptySpace,
    /// Every configuration was skipped (builder errors or infeasible
    /// seeds); the report-to-be had no candidates.
    NoFeasibleCandidate {
        /// Number of cross-product points skipped.
        skipped: usize,
    },
    /// A pass pipeline failed on a seed schedule (pipelines are expected to
    /// be universally applicable; a failure is a bug, not a skip).
    PassFailed(String),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::EmptySpace => write!(f, "tuning space has an empty axis"),
            TuneError::NoFeasibleCandidate { skipped } => {
                write!(f, "no feasible candidate ({skipped} skipped)")
            }
            TuneError::PassFailed(msg) => write!(f, "pass pipeline failed: {msg}"),
        }
    }
}

impl std::error::Error for TuneError {}

/// What [`Tuner::tune_schedules`] returns alongside the report: the
/// winner's ready-to-execute artifacts, so callers replay without
/// rebuilding.
#[derive(Debug, Clone)]
pub struct Tuned<T: Scalar> {
    /// The tuning report (all candidates, winner index).
    pub report: TuningReport,
    /// The winner's optimized schedule.
    pub schedule: Schedule<T>,
    /// The winner's prefetch plan (empty at lookahead 0).
    pub plan: PrefetchPlan,
    /// Per-pass outcomes of the winner's pipeline (empty for `none()`).
    pub stages: Vec<StageOutcome>,
}

impl<T: Scalar> Tuned<T> {
    /// Replays the winner end to end on `shared`, wiring the tuned
    /// configuration into
    /// [`Engine::execute_parallel_with`]: the winner's worker count drives
    /// the work-stealing replay and its lookahead the per-worker prefetch
    /// pipeline, so the run is exactly the configuration the makespan model
    /// priced. A serial winner (`workers == 1`) degenerates to a one-worker
    /// parallel run, whose accounting equals the serial replay's.
    ///
    /// The schedule must satisfy the independence contract of
    /// [`Engine::execute_parallel`] (self-contained groups, disjoint
    /// writes); the left-looking factorizations do not and must stay on
    /// [`Engine::execute`].
    pub fn execute_parallel(
        &self,
        shared: &SharedSlowMemory<T>,
        config: MachineConfig,
        default_phase: &str,
    ) -> std::result::Result<Vec<WorkerRun>, ParallelError> {
        let cfg = self.report.best_config();
        Engine::execute_parallel_with(
            shared,
            &self.schedule,
            cfg.workers.max(1),
            config,
            default_phase,
            &EngineConfig::with_lookahead(cfg.lookahead),
        )
    }
}

/// Deterministic longest-processing-time makespan: sorts jobs by
/// decreasing duration (ties by index) and greedily assigns each to the
/// least-loaded worker (ties to the lowest worker index). Returns the
/// maximum worker load. The autotuner prices `workers > 1` candidates with
/// this over the per-group windows of [`modelled_group_times`].
pub fn lpt_makespan(durations: &[f64], workers: usize) -> f64 {
    if workers <= 1 || durations.len() <= 1 {
        return durations.iter().sum();
    }
    let mut order: Vec<usize> = (0..durations.len()).collect();
    order.sort_by(|&a, &b| {
        durations[b]
            .partial_cmp(&durations[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut loads = vec![0.0_f64; workers];
    for idx in order {
        let mut target = 0usize;
        for w in 1..workers {
            if loads[w] < loads[target] {
                target = w;
            }
        }
        loads[target] += durations[idx];
    }
    loads.iter().cloned().fold(0.0, f64::max)
}

/// The beam-search autotuner: scores every point of a [`TuningSpace`]
/// against a [`MachineModel`] using only dry runs and the wall-clock model
/// — no data is moved and no schedule is executed.
///
/// ```
/// use symla_memory::{MachineModel, MatrixId, Region};
/// use symla_sched::autotune::{Tuner, TuningSpace};
/// use symla_sched::ScheduleBuilder;
/// use symla_matrix::kernels::FlopCount;
///
/// // A toy "builder": tile t splits a 8x8 load into 8x t strips.
/// let build = |tile: Option<usize>| -> Result<_, String> {
///     let t = tile.unwrap_or(8);
///     if 8 % t != 0 {
///         return Err(format!("tile {t} does not divide 8"));
///     }
///     let id = MatrixId::synthetic(0);
///     let mut b = ScheduleBuilder::<f64>::new();
///     for i in 0..8 / t {
///         b.begin_group();
///         let x = b.load(id, Region::rect(t * i, 0, t, 8));
///         b.flops(FlopCount::new(64 * t as u128, 64 * t as u128));
///         b.store(x);
///     }
///     Ok(b.finish())
/// };
///
/// let model = MachineModel::nvme();
/// let space = TuningSpace::minimal().with_tiles(vec![None, Some(2), Some(4), Some(3)]);
/// let report = Tuner::new(&model, 128).tune(build, &space).unwrap();
/// assert_eq!(report.skipped, 4); // tile 3 skipped across the 4 inner points
/// assert!(report.winner().modelled_ns <= report.candidates[0].modelled_ns);
/// ```
#[derive(Debug, Clone)]
pub struct Tuner<'a> {
    model: &'a MachineModel,
    capacity: usize,
    beam_width: Option<usize>,
}

impl<'a> Tuner<'a> {
    /// An exhaustive tuner (unbounded beam) scoring against `model` on a
    /// fast memory of `capacity` elements.
    pub fn new(model: &'a MachineModel, capacity: usize) -> Self {
        Self {
            model,
            capacity,
            beam_width: None,
        }
    }

    /// Bounds the beam: stages 1–2 keep only the `width` best survivors by
    /// proxy score. `0` is treated as `1`. Pruned points are **not**
    /// counted as skipped (they were viable, just not explored).
    pub fn with_beam_width(mut self, width: usize) -> Self {
        self.beam_width = Some(width.max(1));
        self
    }

    /// Tunes `build` over `space` and returns the report plus the winner's
    /// ready-to-replay schedule and prefetch plan.
    ///
    /// `build` maps a tile override to a seed schedule (or a reason the
    /// tile is infeasible — such points are skipped, not fatal).
    pub fn tune_schedules<T, F>(&self, build: F, space: &TuningSpace) -> Result<Tuned<T>, TuneError>
    where
        T: Scalar,
        F: Fn(Option<usize>) -> Result<Schedule<T>, String>,
    {
        if space.is_empty() {
            return Err(TuneError::EmptySpace);
        }
        let inner = space.pipelines.len() * space.lookaheads.len() * space.workers.len();
        let mut skipped = 0usize;

        // Stage 1: seeds per tile. A skipped tile forfeits its whole slab
        // of the cross-product.
        let mut seeds: Vec<(Option<usize>, Schedule<T>)> = Vec::new();
        for &tile in &space.tiles {
            match build(tile) {
                Ok(schedule) => {
                    if Engine::dry_run(&schedule, "main").peak_resident > self.capacity {
                        skipped += inner;
                    } else {
                        seeds.push((tile, schedule));
                    }
                }
                Err(_) => skipped += inner,
            }
        }
        self.prune(&mut seeds, |(_, s)| self.proxy_score(s, space));

        // Stage 2: pipelines per surviving seed. The budget clamp mirrors
        // the high-level API's `optimize_schedule`, so the schedule scored
        // here is identical to the one a run with this config executes.
        let mut optimized: Vec<(TunedConfig, Schedule<T>, Vec<StageOutcome>)> = Vec::new();
        for (tile, seed) in &seeds {
            for pipeline in &space.pipelines {
                let (schedule, stages) = apply_pipeline(seed, pipeline, self.capacity)?;
                let config = TunedConfig {
                    tile: *tile,
                    pipeline: pipeline.clone(),
                    lookahead: 0,
                    level: Level::default(),
                    workers: 1,
                };
                optimized.push((config, schedule, stages));
            }
        }
        self.prune(&mut optimized, |(_, s, _)| self.proxy_score(s, space));

        // Stage 3: full scoring of survivors × lookaheads × levels × workers.
        let mut candidates: Vec<Candidate> = Vec::new();
        // (optimized idx, level, plan) per candidate
        let mut artifacts: Vec<(usize, Level, PrefetchPlan)> = Vec::new();
        let mut best: Option<usize> = None;
        for (idx, (config, schedule, _)) in optimized.iter().enumerate() {
            for &lookahead in &space.lookaheads {
                for &level in &space.levels {
                    let leveled;
                    let schedule = if level.is_default() {
                        schedule
                    } else {
                        leveled = schedule.with_transfer_level(level);
                        &leveled
                    };
                    let plan = if lookahead == 0 {
                        PrefetchPlan::default()
                    } else {
                        PrefetchPlan::plan(schedule, lookahead, Some(self.capacity))
                    };
                    let stats = Engine::dry_run_with(
                        schedule,
                        "main",
                        &EngineConfig::with_lookahead(lookahead),
                        Some(self.capacity),
                    );
                    if stats.peak_resident > self.capacity {
                        skipped += space.workers.len();
                        continue;
                    }
                    let time = modelled_time_planned(schedule, self.model, &plan);
                    let group_times = if space.workers.iter().any(|&w| w > 1) {
                        Some(modelled_group_times(schedule, self.model, &plan))
                    } else {
                        None
                    };
                    for &workers in &space.workers {
                        let modelled_ns = if workers <= 1 {
                            time.total_ns()
                        } else {
                            lpt_makespan(group_times.as_ref().unwrap(), workers)
                        };
                        let candidate = Candidate {
                            config: TunedConfig {
                                lookahead,
                                level,
                                workers,
                                ..config.clone()
                            },
                            stats: stats.clone(),
                            modelled_ns,
                            gap_to_bound: gap_to_bound(&stats, self.capacity),
                        };
                        let at = candidates.len();
                        if best.is_none_or(|b| candidate.modelled_ns < candidates[b].modelled_ns) {
                            best = Some(at);
                        }
                        candidates.push(candidate);
                        artifacts.push((idx, level, plan.clone()));
                    }
                }
            }
        }

        let Some(best) = best else {
            return Err(TuneError::NoFeasibleCandidate { skipped });
        };
        let (winner_idx, level, plan) = artifacts.swap_remove(best);
        let (_, schedule, stages) = optimized.swap_remove(winner_idx);
        let schedule = if level.is_default() {
            schedule
        } else {
            schedule.with_transfer_level(level)
        };
        // swap_remove may have moved another entry into `winner_idx`, but
        // `optimized` is dropped immediately, so the indices in `artifacts`
        // are never read again.
        Ok(Tuned {
            report: TuningReport {
                candidates,
                best,
                skipped,
                beam_width: self.beam_width,
                capacity: self.capacity,
            },
            schedule,
            plan,
            stages,
        })
    }

    /// [`Tuner::tune_schedules`] returning only the report.
    pub fn tune<T, F>(&self, build: F, space: &TuningSpace) -> Result<TuningReport, TuneError>
    where
        T: Scalar,
        F: Fn(Option<usize>) -> Result<Schedule<T>, String>,
    {
        self.tune_schedules(build, space).map(|t| t.report)
    }

    /// Proxy score for beam pruning: modelled ns at the space's first
    /// lookahead, serial replay.
    fn proxy_score<T: Scalar>(&self, schedule: &Schedule<T>, space: &TuningSpace) -> f64 {
        let lookahead = space.lookaheads.first().copied().unwrap_or(0);
        let plan = if lookahead == 0 {
            PrefetchPlan::default()
        } else {
            PrefetchPlan::plan(schedule, lookahead, Some(self.capacity))
        };
        modelled_time_planned(schedule, self.model, &plan).total_ns()
    }

    /// Stable truncation to the beam width by ascending score (ties keep
    /// the earlier entry — `sort_by` is stable and scores are totals of
    /// finite model coefficients).
    fn prune<E>(&self, entries: &mut Vec<E>, score: impl Fn(&E) -> f64) {
        let Some(width) = self.beam_width else {
            return;
        };
        if entries.len() <= width {
            return;
        }
        let scores: Vec<f64> = entries.iter().map(&score).collect();
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by(|&a, &b| {
            scores[a]
                .partial_cmp(&scores[b])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order.truncate(width);
        order.sort_unstable(); // keep original relative order among survivors
        let mut keep = order.into_iter().peekable();
        let mut idx = 0usize;
        entries.retain(|_| {
            let keep_this = keep.peek() == Some(&idx);
            if keep_this {
                keep.next();
            }
            idx += 1;
            keep_this
        });
    }
}

/// Measured load volume over the paper's `mults/√(S/2)` lower bound.
fn gap_to_bound(stats: &IoStats, capacity: usize) -> Option<f64> {
    if stats.flops.mults == 0 || capacity < 2 {
        return None;
    }
    let bound = stats.flops.mults as f64 / (capacity as f64 / 2.0).sqrt();
    Some(stats.volume.loads as f64 / bound)
}

/// Applies `pipeline` to `seed` exactly as the high-level API does: the
/// residency budget is clamped to the capacity, and a pipeline with no
/// passes and no verification short-circuits to a clone of the seed.
fn apply_pipeline<T: Scalar>(
    seed: &Schedule<T>,
    pipeline: &PassPipeline,
    capacity: usize,
) -> Result<(Schedule<T>, Vec<StageOutcome>), TuneError> {
    if pipeline.is_noop() && !pipeline.verify {
        return Ok((seed.clone(), Vec::new()));
    }
    let mut effective = pipeline.clone();
    if let Some(budget) = effective.budget {
        effective.budget = Some(budget.min(capacity));
    }
    let optimized = effective
        .manager::<T>()
        .optimize(seed, "main")
        .map_err(|e| TuneError::PassFailed(e.to_string()))?;
    Ok((optimized.schedule, optimized.stages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::ScheduleBuilder;
    use symla_matrix::kernels::FlopCount;
    use symla_memory::{MatrixId, Region};

    /// Strip-mined pass over a 8x8 matrix; tile = strip height.
    fn build_strips(tile: Option<usize>) -> Result<Schedule<f64>, String> {
        let t = tile.unwrap_or(8);
        if t == 0 || 8 % t != 0 {
            return Err(format!("tile {t} does not divide 8"));
        }
        let id = MatrixId::synthetic(0);
        let mut b = ScheduleBuilder::new();
        for i in 0..8 / t {
            b.begin_group();
            let x = b.load(id, Region::rect(t * i, 0, t, 8));
            b.flops(FlopCount::new(200 * t as u128, 200 * t as u128));
            b.store(x);
        }
        Ok(b.finish())
    }

    #[test]
    fn exhaustive_search_covers_the_cross_product() {
        let model = MachineModel::dram();
        let space = TuningSpace::minimal().with_tiles(vec![None, Some(2), Some(4)]);
        let report = Tuner::new(&model, 256).tune(build_strips, &space).unwrap();
        assert_eq!(report.evaluated(), space.len());
        assert_eq!(report.skipped, 0);
        let winner = report.winner();
        for c in &report.candidates {
            assert!(winner.modelled_ns <= c.modelled_ns);
        }
    }

    #[test]
    fn infeasible_tiles_are_skipped_not_fatal() {
        let model = MachineModel::dram();
        let space = TuningSpace::minimal().with_tiles(vec![Some(3), Some(2)]);
        let report = Tuner::new(&model, 256).tune(build_strips, &space).unwrap();
        // Tile 3 forfeits pipelines × lookaheads × workers = 4 points.
        assert_eq!(report.skipped, 4);
        assert_eq!(report.evaluated(), 4);
        assert_eq!(report.best_config().tile, Some(2));
    }

    #[test]
    fn capacity_infeasible_seed_is_skipped() {
        let model = MachineModel::dram();
        // Capacity 16 cannot hold an 8x8-sized strip of height 4 (32 elts).
        let space = TuningSpace::minimal().with_tiles(vec![Some(4), Some(2)]);
        let report = Tuner::new(&model, 16).tune(build_strips, &space).unwrap();
        assert_eq!(report.best_config().tile, Some(2));
        assert_eq!(report.skipped, 4);
    }

    #[test]
    fn all_infeasible_is_a_typed_error() {
        let model = MachineModel::dram();
        let space = TuningSpace::minimal().with_tiles(vec![Some(3), Some(5)]);
        let err = Tuner::new(&model, 256)
            .tune(build_strips, &space)
            .unwrap_err();
        assert_eq!(err, TuneError::NoFeasibleCandidate { skipped: 8 });
    }

    #[test]
    fn empty_axis_is_a_typed_error() {
        let model = MachineModel::dram();
        let space = TuningSpace::minimal().with_lookaheads(vec![]);
        let err = Tuner::new(&model, 256)
            .tune(build_strips, &space)
            .unwrap_err();
        assert_eq!(err, TuneError::EmptySpace);
    }

    #[test]
    fn tuning_is_deterministic() {
        let model = MachineModel::nvme();
        let space = TuningSpace::minimal()
            .with_tiles(vec![None, Some(2), Some(4)])
            .with_lookaheads(vec![0, 1, 2])
            .with_workers(vec![1, 2]);
        let tuner = Tuner::new(&model, 256);
        let a = tuner.tune(build_strips, &space).unwrap();
        let b = tuner.tune(build_strips, &space).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn enlarging_the_space_never_worsens_the_winner() {
        let model = MachineModel::nvme();
        let tuner = Tuner::new(&model, 256);
        let small = TuningSpace::minimal();
        let large = small
            .clone()
            .with_tiles(vec![None, Some(2), Some(4)])
            .with_lookaheads(vec![0, 1, 2, 3]);
        let a = tuner.tune(build_strips, &small).unwrap();
        let b = tuner.tune(build_strips, &large).unwrap();
        assert!(b.winner().modelled_ns <= a.winner().modelled_ns);
    }

    #[test]
    fn bounded_beam_is_deterministic_and_never_larger() {
        let model = MachineModel::nvme();
        let space = TuningSpace::minimal().with_tiles(vec![None, Some(1), Some(2), Some(4)]);
        let tuner = Tuner::new(&model, 256).with_beam_width(2);
        let a = tuner.tune(build_strips, &space).unwrap();
        let b = tuner.tune(build_strips, &space).unwrap();
        assert_eq!(a, b);
        assert!(a.evaluated() < space.len());
        assert_eq!(a.beam_width, Some(2));
    }

    #[test]
    fn winner_artifacts_replay_to_the_winner_stats() {
        let model = MachineModel::nvme();
        let space = TuningSpace::minimal()
            .with_tiles(vec![None, Some(2)])
            .with_lookaheads(vec![0, 2]);
        let tuned = Tuner::new(&model, 256)
            .tune_schedules(build_strips, &space)
            .unwrap();
        let cfg = tuned.report.best_config().clone();
        let stats = Engine::dry_run_with(
            &tuned.schedule,
            "main",
            &EngineConfig::with_lookahead(cfg.lookahead),
            Some(256),
        );
        assert_eq!(stats, tuned.report.winner().stats);
        let time = modelled_time_planned(&tuned.schedule, &model, &tuned.plan);
        assert_eq!(
            time.total_ns().to_bits(),
            tuned.report.winner().modelled_ns.to_bits()
        );
    }

    #[test]
    fn workers_makespan_uses_lpt_over_group_windows() {
        let model = MachineModel::dram();
        let space = TuningSpace::minimal()
            .with_pipelines(vec![PassPipeline::none()])
            .with_lookaheads(vec![0])
            .with_workers(vec![1, 2, 4]);
        let report = Tuner::new(&model, 256).tune(build_strips, &space).unwrap();
        let serial = &report.candidates[0];
        assert_eq!(serial.config.workers, 1);
        for c in &report.candidates[1..] {
            assert!(c.modelled_ns <= serial.modelled_ns);
            assert!(c.modelled_ns > 0.0);
        }
        // Default strips = one group; parallel modelled ns equals serial.
        assert_eq!(report.candidates[1].config.workers, 2);
    }

    #[test]
    fn level_axis_prefers_the_cheap_tier_and_relevels_the_winner() {
        use crate::ir::Step;
        let model = MachineModel::dram().with_level_extra(Level::new(2), 50.0);
        let space = TuningSpace::minimal()
            .with_pipelines(vec![PassPipeline::none()])
            .with_lookaheads(vec![0])
            .with_levels(vec![Level::new(2), Level::default()]);
        let tuned = Tuner::new(&model, 256)
            .tune_schedules(build_strips, &space)
            .unwrap();
        assert_eq!(tuned.report.evaluated(), 2);
        // the surcharged tier loses to the classic two-level replay ...
        assert_eq!(tuned.report.best_config().level, Level::default());
        assert!(!tuned.schedule.is_leveled());
        // ... and the losing candidate was priced with the surcharge
        let l2 = &tuned.report.candidates[0];
        assert_eq!(l2.config.level, Level::new(2));
        assert!(l2.modelled_ns > tuned.report.winner().modelled_ns);
        assert_eq!(l2.stats.level(2).loads, 64);

        // With the surcharge the other way round, the winner is re-leveled.
        let model = MachineModel::dram();
        let space = space.with_levels(vec![Level::new(2)]);
        let tuned = Tuner::new(&model, 256)
            .tune_schedules(build_strips, &space)
            .unwrap();
        assert_eq!(tuned.report.best_config().level, Level::new(2));
        assert!(tuned.schedule.is_leveled());
        assert!(tuned
            .schedule
            .groups
            .iter()
            .flat_map(|g| &g.steps)
            .all(|s| {
                !matches!(s, Step::Load { level, .. } | Step::Store { level, .. }
                if *level != Level::new(2))
            }));
    }

    #[test]
    fn tuned_workers_drive_the_parallel_replay_end_to_end() {
        use symla_matrix::Matrix;
        use symla_memory::SharedSlowMemory;

        let model = MachineModel::nvme();
        let space = TuningSpace::minimal()
            .with_tiles(vec![Some(2)])
            .with_pipelines(vec![PassPipeline::none()])
            .with_lookaheads(vec![0])
            .with_workers(vec![2]);
        let tuned = Tuner::new(&model, 256)
            .tune_schedules(build_strips, &space)
            .unwrap();
        let cfg = tuned.report.best_config().clone();
        assert_eq!(cfg.workers, 2);

        let shared = SharedSlowMemory::<f64>::new();
        let id = shared.insert_dense(Matrix::identity(8));
        assert_eq!(id, MatrixId::synthetic(0));
        let runs = tuned
            .execute_parallel(&shared, MachineConfig::with_capacity(256), "main")
            .unwrap();
        assert_eq!(runs.len(), 2);

        // Every group ran exactly once across the workers.
        let mut done: Vec<usize> = runs.iter().flat_map(|r| r.groups.clone()).collect();
        done.sort_unstable();
        assert_eq!(done, (0..tuned.schedule.groups.len()).collect::<Vec<_>>());

        // Each worker's observed stats equal the dry-run oracle of exactly
        // the groups it claimed — the modelled windows it was priced with.
        for run in &runs {
            let mut sub = tuned.schedule.clone();
            sub.groups = run.groups.iter().map(|&g| sub.groups[g].clone()).collect();
            let oracle = Engine::dry_run(&sub, "main");
            assert_eq!(run.stats.volume, oracle.volume);
            assert_eq!(run.stats.load_events, oracle.load_events);
            assert_eq!(run.stats.flops, oracle.flops);
        }
        assert_eq!(
            WorkerRun::merged_stats(&runs),
            Engine::dry_run(&tuned.schedule, "main")
        );

        // The priced makespan brackets the per-worker modelled windows:
        // work stealing may assign differently than LPT, but no worker's
        // window sum can beat the longest group, and the candidate's
        // modelled ns is the LPT makespan of the same windows.
        let windows = modelled_group_times(&tuned.schedule, &model, &tuned.plan);
        let winner_ns = tuned.report.winner().modelled_ns;
        assert_eq!(
            winner_ns.to_bits(),
            lpt_makespan(&windows, cfg.workers).to_bits()
        );
        let longest = windows.iter().cloned().fold(0.0, f64::max);
        assert!(winner_ns >= longest);
        assert!(winner_ns <= windows.iter().sum::<f64>());
        for run in &runs {
            let sum: f64 = run.groups.iter().map(|&g| windows[g]).sum();
            assert!(sum <= windows.iter().sum::<f64>());
        }
    }

    #[test]
    fn lpt_makespan_basics() {
        assert_eq!(lpt_makespan(&[], 4), 0.0);
        assert_eq!(lpt_makespan(&[3.0, 1.0], 1), 4.0);
        assert_eq!(lpt_makespan(&[3.0, 1.0, 1.0, 1.0], 2), 3.0);
        // Makespan never below the longest job or the average load.
        let d = [5.0, 4.0, 3.0, 2.0, 1.0];
        let m = lpt_makespan(&d, 3);
        assert!(m >= 5.0);
        assert!(m >= d.iter().sum::<f64>() / 3.0);
    }

    #[test]
    fn fingerprints_are_stable_and_discriminating() {
        let a = TuningSpace::minimal();
        let b = TuningSpace::minimal();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            a.fingerprint(),
            a.clone().with_tiles(vec![Some(4)]).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            a.clone().with_lookaheads(vec![0]).fingerprint()
        );
        // the level axis joins the space fingerprint only when non-default
        assert_eq!(
            a.fingerprint(),
            a.clone().with_levels(vec![Level::default()]).fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            a.clone().with_levels(vec![Level::new(2)]).fingerprint()
        );
        let dram = model_fingerprint(&MachineModel::dram());
        let nvme = model_fingerprint(&MachineModel::nvme());
        assert_eq!(dram, model_fingerprint(&MachineModel::dram()));
        assert_ne!(dram, nvme);
        // level surcharges discriminate the model fingerprint, zero
        // surcharges hash exactly as the pre-hierarchy model did
        assert_ne!(
            dram,
            model_fingerprint(&MachineModel::dram().with_level_extra(Level::new(2), 1.0))
        );
    }
}
