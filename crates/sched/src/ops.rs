//! Operation sets of the SYRK and Cholesky computational DAGs.
//!
//! Following Section 3 of the paper, each multiply–add of the three-nested-
//! loop algorithms is identified by a triple `(i, j, k)`:
//!
//! * SYRK (Algorithm 1): `S = { (i, j, k) : 0 ≤ j < i < N, 0 ≤ k < M }`,
//!   the update `C[i,j] += A[i,k] · A[j,k]` (the paper ignores the diagonal
//!   `i = j`, and so do we).
//! * Cholesky updates (Algorithm 2): `C = { (i, j, k) : 0 ≤ k < j < i < N }`,
//!   the update `A[i,j] -= A[i,k] · A[j,k]`.
//!
//! Indices here are zero-based (the paper uses one-based indices; all
//! cardinality formulas are unchanged).

/// One multiply–add operation of a kernel, identified by its loop indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Op {
    /// Row index of the output element.
    pub i: usize,
    /// Column index of the output element.
    pub j: usize,
    /// Reduction index (column of `A` for SYRK, elimination step for
    /// Cholesky).
    pub k: usize,
}

impl Op {
    /// Creates an operation triple.
    pub fn new(i: usize, j: usize, k: usize) -> Self {
        Self { i, j, k }
    }
}

/// The operation set of a kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpSet {
    /// SYRK with an `n x m` input matrix `A` (strict lower triangle of `C`).
    Syrk {
        /// Number of rows of `A` (order of `C`).
        n: usize,
        /// Number of columns of `A`.
        m: usize,
    },
    /// The update operations of an `n x n` Cholesky factorization.
    CholeskyUpdates {
        /// Matrix order.
        n: usize,
    },
}

impl OpSet {
    /// Number of operations in the set
    /// (`M·N(N−1)/2` for SYRK, `N(N−1)(N−2)/6` for Cholesky updates).
    pub fn len(&self) -> u128 {
        match *self {
            OpSet::Syrk { n, m } => (n as u128) * (n as u128).saturating_sub(1) / 2 * (m as u128),
            OpSet::CholeskyUpdates { n } => {
                if n < 3 {
                    0
                } else {
                    let n = n as u128;
                    n * (n - 1) * (n - 2) / 6
                }
            }
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the operation `op` belongs to this set.
    pub fn contains(&self, op: &Op) -> bool {
        match *self {
            OpSet::Syrk { n, m } => op.i < n && op.j < op.i && op.k < m,
            OpSet::CholeskyUpdates { n } => op.i < n && op.j < op.i && op.k < op.j,
        }
    }

    /// Range of the reduction index `k` (exclusive upper bound).
    pub fn k_range(&self) -> usize {
        match *self {
            OpSet::Syrk { m, .. } => m,
            OpSet::CholeskyUpdates { n } => n.saturating_sub(2),
        }
    }

    /// Iterator over every operation in the set. Intended for small instances
    /// (tests and the E9 experiment); the count grows cubically.
    pub fn iter(&self) -> Box<dyn Iterator<Item = Op> + '_> {
        match *self {
            OpSet::Syrk { n, m } => Box::new((0..n).flat_map(move |i| {
                (0..i).flat_map(move |j| (0..m).map(move |k| Op::new(i, j, k)))
            })),
            OpSet::CholeskyUpdates { n } => Box::new((0..n).flat_map(move |i| {
                (0..i).flat_map(move |j| (0..j).map(move |k| Op::new(i, j, k)))
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syrk_count_matches_enumeration() {
        for n in 0..10 {
            for m in 0..6 {
                let set = OpSet::Syrk { n, m };
                assert_eq!(set.len(), set.iter().count() as u128, "n={n} m={m}");
            }
        }
    }

    #[test]
    fn cholesky_count_matches_enumeration() {
        for n in 0..15 {
            let set = OpSet::CholeskyUpdates { n };
            assert_eq!(set.len(), set.iter().count() as u128, "n={n}");
        }
    }

    #[test]
    fn contains_agrees_with_iteration() {
        let set = OpSet::Syrk { n: 5, m: 3 };
        for op in set.iter() {
            assert!(set.contains(&op));
        }
        assert!(!set.contains(&Op::new(2, 2, 0))); // diagonal excluded
        assert!(!set.contains(&Op::new(1, 0, 3))); // k out of range
        assert!(!set.contains(&Op::new(5, 0, 0))); // i out of range

        let chol = OpSet::CholeskyUpdates { n: 6 };
        for op in chol.iter() {
            assert!(chol.contains(&op));
            assert!(op.i > op.j && op.j > op.k);
        }
        assert!(!chol.contains(&Op::new(3, 2, 2)));
    }

    #[test]
    fn formulas_match_paper() {
        // |S| = N(N-1)/2 * M, |C| = N(N-1)(N-2)/6 ~ N^3/6
        assert_eq!(OpSet::Syrk { n: 4, m: 7 }.len(), 6 * 7);
        assert_eq!(OpSet::CholeskyUpdates { n: 4 }.len(), 4);
        assert_eq!(OpSet::CholeskyUpdates { n: 10 }.len(), 120);
        assert!(OpSet::CholeskyUpdates { n: 2 }.is_empty());
        assert!(!OpSet::Syrk { n: 2, m: 1 }.is_empty());
    }

    #[test]
    fn k_ranges() {
        assert_eq!(OpSet::Syrk { n: 4, m: 7 }.k_range(), 7);
        assert_eq!(OpSet::CholeskyUpdates { n: 5 }.k_range(), 3);
        assert_eq!(OpSet::CholeskyUpdates { n: 1 }.k_range(), 0);
    }

    #[test]
    fn op_ordering_is_usable_in_sets() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(Op::new(2, 1, 0));
        s.insert(Op::new(2, 1, 0));
        s.insert(Op::new(1, 0, 0));
        assert_eq!(s.len(), 2);
    }
}
