//! Property-based tests of the combinatorial layer.
//!
//! These check the paper's structural lemmas on randomized instances:
//! * Theorem 4.1: any subcomputation accessing at most `X` elements has size
//!   at most `√2/(3√3)·X^{3/2}`;
//! * Lemma 4.3: the balanced solution of an arbitrary operation set never
//!   accesses more data than the set itself;
//! * Lemma 3.6 / `T(m)` invariants;
//! * Lemma 5.5: the cyclic indexing family is valid whenever the coprimality
//!   condition holds, and the induced partition is an exact cover.

use proptest::collection::btree_set;
use proptest::prelude::*;
use symla_sched::balanced::BalancedSolution;
use symla_sched::footprint::{data_access, max_pairs_for_footprint, restrictions, symmetric_footprint};
use symla_sched::indexing::{is_coprime_with_range, largest_coprime_below, CyclicIndexing};
use symla_sched::ops::{Op, OpSet};
use symla_sched::opt::{best_integer_balanced, max_subcomputation_bound, relaxed_optimum_value};
use symla_sched::partition::TbsPartition;
use symla_sched::triangle::{canonical_t, footprint_size, sigma, triangle_block_len};

/// Strategy: a random subset of the SYRK operation set with n <= 10, m <= 6.
fn syrk_subset() -> impl Strategy<Value = (usize, usize, Vec<Op>)> {
    (2usize..10, 1usize..6).prop_flat_map(|(n, m)| {
        let all: Vec<Op> = OpSet::Syrk { n, m }.iter().collect();
        let len = all.len();
        btree_set(0..len, 0..=len.min(60)).prop_map(move |idx| {
            let ops: Vec<Op> = idx.iter().map(|&i| all[i]).collect();
            (n, m, ops)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Theorem 4.1 on random subsets: |E| <= sqrt(2)/(3 sqrt 3) * D(E)^{3/2}.
    #[test]
    fn theorem_4_1_bound_holds_on_random_subsets((_n, _m, ops) in syrk_subset()) {
        let d = data_access(&ops).total();
        let bound = max_subcomputation_bound(d as f64);
        prop_assert!(
            ops.len() as f64 <= bound + 1e-9,
            "|E| = {} exceeds bound {} for D(E) = {}", ops.len(), bound, d
        );
    }

    /// Lemma 4.3 on random subsets: the balanced solution is at most as
    /// expensive as the original set (and has the same size).
    #[test]
    fn lemma_4_3_balanced_dominates((_n, _m, ops) in syrk_subset()) {
        let direct = data_access(&ops);
        let balanced = BalancedSolution::from_ops(&ops);
        prop_assert_eq!(balanced.size(), ops.len());
        prop_assert!(
            balanced.data_access().total() <= direct.total(),
            "balanced {} > direct {}", balanced.data_access().total(), direct.total()
        );
        // The analytic cost of the balanced solution agrees with a direct
        // evaluation of its materialized operation list.
        let materialized = data_access(&balanced.ops());
        prop_assert_eq!(balanced.data_access(), materialized);
    }

    /// For every restriction E|k, |E|k| <= |tau(E|k)| (|tau|-1) / 2.
    #[test]
    fn footprint_pair_bound((_n, _m, ops) in syrk_subset()) {
        for (_, pairs) in restrictions(&ops) {
            let fp = symmetric_footprint(&pairs);
            prop_assert!(pairs.len() <= max_pairs_for_footprint(fp.len()));
        }
    }

    /// sigma(m) is the minimal triangle side holding m pairs, and T(m) has
    /// exactly m pairs with footprint sigma(m).
    #[test]
    fn sigma_and_canonical_t_invariants(m in 0usize..3000) {
        let s = sigma(m);
        prop_assert!(triangle_block_len(s) >= m);
        if s > 0 {
            prop_assert!(triangle_block_len(s - 1) < m);
        }
        if m > 0 && m <= 600 {
            let t = canonical_t(m);
            prop_assert_eq!(t.len(), m);
            prop_assert_eq!(footprint_size(&t), s);
            prop_assert!(t.iter().all(|&(i, j)| i > j && i < s));
        }
    }

    /// The integer balanced optimum never exceeds the relaxed optimum nor the
    /// Theorem 4.1 closed form.
    #[test]
    fn integer_optimum_below_relaxations(x in 3usize..3000) {
        let best = best_integer_balanced(x, None, None);
        prop_assert!(best.data_accessed as usize <= x);
        prop_assert!(best.operations as f64 <= relaxed_optimum_value(x as f64) + 1e-6);
        prop_assert!(best.operations as f64 <= max_subcomputation_bound(x as f64) + 1e-6);
    }

    /// Lemma 5.5: whenever c >= k-1 and c is coprime with [2, k-2], the
    /// cyclic family is valid and yields an exact partition.
    #[test]
    fn cyclic_family_validity_and_cover(k in 2usize..7, c_seed in 2usize..40) {
        // snap c_seed to the largest coprime value below it (if any)
        if let Some(c) = largest_coprime_below(c_seed, k) {
            if c + 1 >= k {
                let fam = CyclicIndexing::new(c, k);
                prop_assert!(fam.satisfies_lemma_5_5());
                prop_assert!(fam.is_valid(), "family ({c},{k}) invalid");
                let partition = TbsPartition::build(c, k).unwrap();
                prop_assert!(partition.verify_exact_cover().is_ok());
            }
        }
    }

    /// Coprimality helper agrees with a direct gcd check.
    #[test]
    fn coprimality_matches_gcd(c in 1usize..500, limit in 0usize..30) {
        fn gcd(a: usize, b: usize) -> usize {
            if b == 0 { a } else { gcd(b, a % b) }
        }
        let direct = (2..=limit).all(|d| gcd(c, d) == 1);
        prop_assert_eq!(is_coprime_with_range(c, limit), direct);
    }
}

/// Exhaustive (non-randomized) check of Theorem 4.1 against the *best*
/// integer balanced solutions: they should approach but never exceed the
/// closed-form bound.
#[test]
fn integer_balanced_solutions_approach_the_bound() {
    let mut best_ratio: f64 = 0.0;
    for x in (100..5000).step_by(137) {
        let cand = best_integer_balanced(x, None, None);
        let bound = max_subcomputation_bound(x as f64);
        let ratio = cand.operations as f64 / bound;
        assert!(ratio <= 1.0 + 1e-12, "x={x}: ratio {ratio} > 1");
        best_ratio = best_ratio.max(ratio);
    }
    // The bound is asymptotically attained; even at these modest budgets the
    // best integer solutions reach a large fraction of it.
    assert!(
        best_ratio > 0.9,
        "integer solutions stay far from the bound (best ratio {best_ratio})"
    );
}

/// The Cholesky update set is a subset of the SYRK set with M = N (the
/// relaxation used in Section 4.2), so the same bound applies to it.
#[test]
fn cholesky_updates_are_a_syrk_subset() {
    let n = 9;
    let chol: Vec<Op> = OpSet::CholeskyUpdates { n }.iter().collect();
    let syrk = OpSet::Syrk { n, m: n };
    assert!(chol.iter().all(|op| syrk.contains(op)));
    let d = data_access(&chol).total();
    assert!((chol.len() as f64) <= max_subcomputation_bound(d as f64));
}
