//! Property-style tests of the combinatorial layer.
//!
//! These check the paper's structural lemmas on seeded pseudo-random
//! instances:
//! * Theorem 4.1: any subcomputation accessing at most `X` elements has size
//!   at most `√2/(3√3)·X^{3/2}`;
//! * Lemma 4.3: the balanced solution of an arbitrary operation set never
//!   accesses more data than the set itself;
//! * Lemma 3.6 / `T(m)` invariants;
//! * Lemma 5.5: the cyclic indexing family is valid whenever the coprimality
//!   condition holds, and the induced partition is an exact cover.

use symla_matrix::generate::SeededRng;
use symla_sched::balanced::BalancedSolution;
use symla_sched::footprint::{
    data_access, max_pairs_for_footprint, restrictions, symmetric_footprint,
};
use symla_sched::indexing::{is_coprime_with_range, largest_coprime_below, CyclicIndexing};
use symla_sched::ops::{Op, OpSet};
use symla_sched::opt::{best_integer_balanced, max_subcomputation_bound, relaxed_optimum_value};
use symla_sched::partition::TbsPartition;
use symla_sched::triangle::{canonical_t, footprint_size, sigma, triangle_block_len};

/// A pseudo-random subset of the SYRK operation set with n < 10, m < 6.
fn syrk_subset(rng: &mut SeededRng) -> (usize, usize, Vec<Op>) {
    let n = rng.gen_range(2usize..10);
    let m = rng.gen_range(1usize..6);
    let all: Vec<Op> = OpSet::Syrk { n, m }.iter().collect();
    let target = rng.gen_range(0usize..all.len().min(60) + 1);
    let mut picked = std::collections::BTreeSet::new();
    while picked.len() < target {
        picked.insert(rng.gen_range(0usize..all.len()));
    }
    let ops: Vec<Op> = picked.iter().map(|&i| all[i]).collect();
    (n, m, ops)
}

#[test]
fn theorem_4_1_bound_holds_on_random_subsets() {
    let mut rng = SeededRng::seed_from_u64(41);
    for _ in 0..128 {
        let (_n, _m, ops) = syrk_subset(&mut rng);
        let d = data_access(&ops).total();
        let bound = max_subcomputation_bound(d as f64);
        assert!(
            ops.len() as f64 <= bound + 1e-9,
            "|E| = {} exceeds bound {} for D(E) = {}",
            ops.len(),
            bound,
            d
        );
    }
}

#[test]
fn lemma_4_3_balanced_dominates() {
    let mut rng = SeededRng::seed_from_u64(43);
    for _ in 0..128 {
        let (_n, _m, ops) = syrk_subset(&mut rng);
        let direct = data_access(&ops);
        let balanced = BalancedSolution::from_ops(&ops);
        assert_eq!(balanced.size(), ops.len());
        assert!(
            balanced.data_access().total() <= direct.total(),
            "balanced {} > direct {}",
            balanced.data_access().total(),
            direct.total()
        );
        // The analytic cost of the balanced solution agrees with a direct
        // evaluation of its materialized operation list.
        let materialized = data_access(&balanced.ops());
        assert_eq!(balanced.data_access(), materialized);
    }
}

#[test]
fn footprint_pair_bound() {
    let mut rng = SeededRng::seed_from_u64(36);
    for _ in 0..128 {
        let (_n, _m, ops) = syrk_subset(&mut rng);
        for (_, pairs) in restrictions(&ops) {
            let fp = symmetric_footprint(&pairs);
            assert!(pairs.len() <= max_pairs_for_footprint(fp.len()));
        }
    }
}

#[test]
fn sigma_and_canonical_t_invariants() {
    let mut rng = SeededRng::seed_from_u64(55);
    for _ in 0..128 {
        let m = rng.gen_range(0usize..3000);
        let s = sigma(m);
        assert!(triangle_block_len(s) >= m);
        if s > 0 {
            assert!(triangle_block_len(s - 1) < m);
        }
        if m > 0 && m <= 600 {
            let t = canonical_t(m);
            assert_eq!(t.len(), m);
            assert_eq!(footprint_size(&t), s);
            assert!(t.iter().all(|&(i, j)| i > j && i < s));
        }
    }
}

#[test]
fn integer_optimum_below_relaxations() {
    let mut rng = SeededRng::seed_from_u64(77);
    for _ in 0..128 {
        let x = rng.gen_range(3usize..3000);
        let best = best_integer_balanced(x, None, None);
        assert!(best.data_accessed as usize <= x);
        assert!(best.operations as f64 <= relaxed_optimum_value(x as f64) + 1e-6);
        assert!(best.operations as f64 <= max_subcomputation_bound(x as f64) + 1e-6);
    }
}

#[test]
fn cyclic_family_validity_and_cover() {
    let mut rng = SeededRng::seed_from_u64(55_00);
    for _ in 0..64 {
        let k = rng.gen_range(2usize..7);
        let c_seed = rng.gen_range(2usize..40);
        // snap c_seed to the largest coprime value below it (if any)
        if let Some(c) = largest_coprime_below(c_seed, k) {
            if c + 1 >= k {
                let fam = CyclicIndexing::new(c, k);
                assert!(fam.satisfies_lemma_5_5());
                assert!(fam.is_valid(), "family ({c},{k}) invalid");
                let partition = TbsPartition::build(c, k).unwrap();
                assert!(partition.verify_exact_cover().is_ok());
            }
        }
    }
}

#[test]
fn coprimality_matches_gcd() {
    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    let mut rng = SeededRng::seed_from_u64(99);
    for _ in 0..256 {
        let c = rng.gen_range(1usize..500);
        let limit = rng.gen_range(0usize..30);
        let direct = (2..=limit).all(|d| gcd(c, d) == 1);
        assert_eq!(
            is_coprime_with_range(c, limit),
            direct,
            "c={c} limit={limit}"
        );
    }
}

/// Exhaustive (non-randomized) check of Theorem 4.1 against the *best*
/// integer balanced solutions: they should approach but never exceed the
/// closed-form bound.
#[test]
fn integer_balanced_solutions_approach_the_bound() {
    let mut best_ratio: f64 = 0.0;
    for x in (100..5000).step_by(137) {
        let cand = best_integer_balanced(x, None, None);
        let bound = max_subcomputation_bound(x as f64);
        let ratio = cand.operations as f64 / bound;
        assert!(ratio <= 1.0 + 1e-12, "x={x}: ratio {ratio} > 1");
        best_ratio = best_ratio.max(ratio);
    }
    // The bound is asymptotically attained; even at these modest budgets the
    // best integer solutions reach a large fraction of it.
    assert!(
        best_ratio > 0.9,
        "integer solutions stay far from the bound (best ratio {best_ratio})"
    );
}

/// The Cholesky update set is a subset of the SYRK set with M = N (the
/// relaxation used in Section 4.2), so the same bound applies to it.
#[test]
fn cholesky_updates_are_a_syrk_subset() {
    let n = 9;
    let chol: Vec<Op> = OpSet::CholeskyUpdates { n }.iter().collect();
    let syrk = OpSet::Syrk { n, m: n };
    assert!(chol.iter().all(|op| syrk.contains(op)));
    let d = data_access(&chol).total();
    assert!((chol.len() as f64) <= max_subcomputation_bound(d as f64));
}
