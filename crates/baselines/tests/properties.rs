//! Property-style tests of the baseline out-of-core schedules: for seeded
//! pseudo-random problem sizes and memory capacities, every executor must
//! (a) produce the same result as the in-memory reference kernel, (b)
//! transfer exactly the volume its analytic cost model predicts, and (c)
//! never exceed the declared fast-memory capacity.

use symla_baselines::{
    ooc_chol_cost, ooc_chol_execute, ooc_gemm_cost, ooc_gemm_execute, ooc_lu_cost, ooc_lu_execute,
    ooc_syrk_cost, ooc_syrk_execute, ooc_trsm_cost, ooc_trsm_execute, OocCholPlan, OocGemmPlan,
    OocLuPlan, OocSyrkPlan, OocTrsmPlan,
};
use symla_matrix::generate::{
    random_lower_triangular, random_matrix_seeded, random_spd_seeded, random_symmetric, seeded_rng,
    SeededRng,
};
use symla_matrix::kernels::{
    cholesky_residual, cholesky_sym, gemm, lu_nopiv_in_place, syrk_sym, trsm_right_lower_transpose,
};
use symla_matrix::{LowerTriangular, Matrix, SymMatrix};
use symla_memory::{OocMachine, PanelRef, SymWindowRef};

const CASES: usize = 16;

#[test]
fn ooc_syrk_random_instances() {
    let mut rng = SeededRng::seed_from_u64(101);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..36);
        let m = rng.gen_range(1usize..16);
        let s = rng.gen_range(8usize..150);
        let seed = rng.gen_range(0usize..500) as u64;

        let a: Matrix<f64> = random_matrix_seeded(n, m, seed);
        let c0: SymMatrix<f64> = random_symmetric(n, &mut seeded_rng(seed + 1));
        let mut expected = c0.clone();
        syrk_sym(1.0, &a, 1.0, &mut expected).unwrap();

        let plan = OocSyrkPlan::for_memory(s).unwrap();
        let mut machine = OocMachine::with_capacity(s);
        let a_id = machine.insert_dense(a);
        let c_id = machine.insert_symmetric(c0);
        ooc_syrk_execute(
            &mut machine,
            &PanelRef::dense(a_id, n, m),
            &SymWindowRef::full(c_id, n),
            1.0,
            &plan,
        )
        .unwrap();

        let est = ooc_syrk_cost(n, m, &plan);
        let ctx = format!("n={n} m={m} s={s} seed={seed}");
        assert_eq!(est.loads, machine.stats().volume.loads as u128, "{ctx}");
        assert_eq!(est.stores, machine.stats().volume.stores as u128, "{ctx}");
        assert!(machine.stats().peak_resident <= s, "{ctx}");
        let got = machine.take_symmetric(c_id).unwrap();
        assert!(got.approx_eq(&expected, 1e-10), "{ctx}");
    }
}

#[test]
fn ooc_trsm_random_instances() {
    let mut rng = SeededRng::seed_from_u64(202);
    for _ in 0..CASES {
        let mrows = rng.gen_range(1usize..30);
        let b = rng.gen_range(2usize..18);
        let s = rng.gen_range(8usize..120);
        let seed = rng.gen_range(0usize..500) as u64;

        let lfac = random_lower_triangular::<f64>(b, &mut seeded_rng(seed));
        let x0: Matrix<f64> = random_matrix_seeded(mrows, b, seed + 2);
        let mut expected = x0.clone();
        trsm_right_lower_transpose(&lfac, &mut expected).unwrap();

        let plan = OocTrsmPlan::for_memory(s).unwrap();
        let mut machine = OocMachine::with_capacity(s);
        let l_id = machine.insert_symmetric(SymMatrix::from_lower_fn(b, |i, j| lfac.get(i, j)));
        let x_id = machine.insert_dense(x0);
        ooc_trsm_execute(
            &mut machine,
            &SymWindowRef::full(l_id, b),
            &PanelRef::dense(x_id, mrows, b),
            &plan,
        )
        .unwrap();

        let est = ooc_trsm_cost(mrows, b, &plan);
        let ctx = format!("m={mrows} b={b} s={s} seed={seed}");
        assert_eq!(est.loads, machine.stats().volume.loads as u128, "{ctx}");
        assert!(machine.stats().peak_resident <= s, "{ctx}");
        let got = machine.take_dense(x_id).unwrap();
        assert!(got.approx_eq(&expected, 1e-8), "{ctx}");
    }
}

#[test]
fn ooc_chol_random_instances() {
    let mut rng = SeededRng::seed_from_u64(303);
    for _ in 0..CASES {
        let n = rng.gen_range(2usize..30);
        let s = rng.gen_range(8usize..120);
        let seed = rng.gen_range(0usize..500) as u64;

        let a: SymMatrix<f64> = random_spd_seeded(n, seed);
        let expected = cholesky_sym(&a).unwrap();

        let plan = OocCholPlan::for_memory(s).unwrap();
        let mut machine = OocMachine::with_capacity(s);
        let id = machine.insert_symmetric(a.clone());
        ooc_chol_execute(&mut machine, &SymWindowRef::full(id, n), &plan).unwrap();

        let est = ooc_chol_cost(n, &plan);
        let ctx = format!("n={n} s={s} seed={seed}");
        assert_eq!(est.loads, machine.stats().volume.loads as u128, "{ctx}");
        assert_eq!(est.stores, machine.stats().volume.stores as u128, "{ctx}");
        assert!(machine.stats().peak_resident <= s, "{ctx}");
        let got = machine.take_symmetric(id).unwrap();
        let lfac = LowerTriangular::from_lower_fn(n, |i, j| got.get(i, j));
        assert!(lfac.approx_eq(&expected, 1e-7), "{ctx}");
        assert!(cholesky_residual(&a, &lfac) < 1e-9, "{ctx}");
    }
}

#[test]
fn ooc_gemm_random_instances() {
    let mut rng = SeededRng::seed_from_u64(404);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..24);
        let k = rng.gen_range(1usize..16);
        let p = rng.gen_range(1usize..24);
        let s = rng.gen_range(8usize..100);
        let seed = rng.gen_range(0usize..500) as u64;

        let a: Matrix<f64> = random_matrix_seeded(n, k, seed);
        let b: Matrix<f64> = random_matrix_seeded(k, p, seed + 1);
        let c0: Matrix<f64> = random_matrix_seeded(n, p, seed + 2);
        let mut expected = c0.clone();
        gemm(1.0, &a, &b, 1.0, &mut expected).unwrap();

        let plan = OocGemmPlan::for_memory(s).unwrap();
        let mut machine = OocMachine::with_capacity(s);
        let a_id = machine.insert_dense(a);
        let b_id = machine.insert_dense(b);
        let c_id = machine.insert_dense(c0);
        ooc_gemm_execute(
            &mut machine,
            &PanelRef::dense(a_id, n, k),
            &PanelRef::dense(b_id, k, p),
            &PanelRef::dense(c_id, n, p),
            1.0,
            &plan,
        )
        .unwrap();

        let est = ooc_gemm_cost(n, k, p, &plan);
        let ctx = format!("n={n} k={k} p={p} s={s} seed={seed}");
        assert_eq!(est.loads, machine.stats().volume.loads as u128, "{ctx}");
        assert!(machine.stats().peak_resident <= s, "{ctx}");
        let got = machine.take_dense(c_id).unwrap();
        assert!(got.approx_eq(&expected, 1e-10), "{ctx}");
    }
}

#[test]
fn ooc_lu_random_instances() {
    let mut rng = SeededRng::seed_from_u64(505);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..26);
        let s = rng.gen_range(8usize..100);
        let seed = rng.gen_range(0usize..500) as u64;

        // diagonally dominant so that no pivoting is needed
        let mut a: Matrix<f64> = random_matrix_seeded(n, n, seed);
        for i in 0..n {
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| a[(i, j)].abs()).sum();
            a[(i, i)] = row_sum + 1.0;
        }
        let mut expected = a.clone();
        lu_nopiv_in_place(&mut expected).unwrap();

        let plan = OocLuPlan::for_memory(s).unwrap();
        let mut machine = OocMachine::with_capacity(s);
        let id = machine.insert_dense(a);
        ooc_lu_execute(&mut machine, &PanelRef::dense(id, n, n), &plan).unwrap();

        let est = ooc_lu_cost(n, &plan);
        let ctx = format!("n={n} s={s} seed={seed}");
        assert_eq!(est.loads, machine.stats().volume.loads as u128, "{ctx}");
        assert!(machine.stats().peak_resident <= s, "{ctx}");
        let got = machine.take_dense(id).unwrap();
        assert!(got.approx_eq(&expected, 1e-8), "{ctx}");
    }
}
