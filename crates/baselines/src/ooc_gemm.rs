//! Out-of-core GEMM with square result blocks (one-tile schedule).
//!
//! The non-symmetric comparison point of the paper: computing `C += A·B`
//! (with `A` of size `n×m` and `B` of size `m×p`) with a one-tile schedule
//! costs `2·n·p·m/√S + O(n·p)` loads, i.e. an operational intensity of `√S/2`
//! multiplications per element moved — a factor `√2` *below* what the
//! symmetric kernels can reach.

use crate::error::{OocError, Result};
use crate::params::{square_tile_for_capacity, tile_extents, IoEstimate};
use symla_matrix::kernels::FlopCount;
use symla_matrix::Scalar;
use symla_memory::{OocMachine, PanelRef};
use symla_sched::{BufSlice, ComputeOp, Engine, Schedule, ScheduleBuilder};

/// Parameters of the square-block out-of-core GEMM schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OocGemmPlan {
    /// Side length of the square result blocks.
    pub tile: usize,
}

impl OocGemmPlan {
    /// Chooses the largest tile fitting a fast memory of `s` elements.
    pub fn for_memory(s: usize) -> Result<Self> {
        Ok(Self {
            tile: square_tile_for_capacity(s)?,
        })
    }

    /// Uses an explicit tile size.
    pub fn with_tile(tile: usize) -> Result<Self> {
        if tile == 0 {
            return Err(OocError::Invalid("tile size must be positive".into()));
        }
        Ok(Self { tile })
    }
}

/// Predicted I/O of `ooc_gemm_execute` for `C (n×p) += A (n×m) · B (m×p)`.
pub fn ooc_gemm_cost(n: usize, m: usize, p: usize, plan: &OocGemmPlan) -> IoEstimate {
    let t = plan.tile;
    let mut est = IoEstimate::default();
    for &(_, ic) in &tile_extents(n, t) {
        for &(_, jc) in &tile_extents(p, t) {
            let c_elems = (ic * jc) as u128;
            est.loads += c_elems + (m * (ic + jc)) as u128;
            est.stores += c_elems;
            let pairs = (m * ic * jc) as u128;
            est.flops = est.flops.merge(&FlopCount::new(pairs, pairs));
        }
    }
    est
}

/// The closed-form leading-order load volume of the one-tile GEMM:
/// `2·n·p·m/√S + n·p`.
pub fn ooc_gemm_leading_loads(n: f64, m: f64, p: f64, s: f64) -> f64 {
    2.0 * n * p * m / s.sqrt() + n * p
}

/// Appends the square-block OOC_GEMM schedule for `C += alpha · A · B` to an
/// existing builder (one task group per result block). Operands are assumed
/// validated.
pub fn ooc_gemm_build<T: Scalar>(
    sched: &mut ScheduleBuilder<T>,
    a: &PanelRef,
    b: &PanelRef,
    c: &PanelRef,
    alpha: T,
    plan: &OocGemmPlan,
) {
    let (n, m) = (a.rows(), a.cols());
    let p = b.cols();
    let t = plan.tile;
    for &(i0, ic) in &tile_extents(n, t) {
        for &(j0, jc) in &tile_extents(p, t) {
            sched.begin_group();
            let cbuf = sched.load(c.id, c.rect_region(i0, j0, ic, jc));
            for k in 0..m {
                let acol = sched.load(a.id, a.col_segment_region(k, i0, ic));
                let brow = sched.load(b.id, b.rect_region(k, j0, 1, jc));
                sched.compute(ComputeOp::Ger {
                    alpha,
                    x: BufSlice::whole(acol, ic),
                    y: BufSlice::whole(brow, jc),
                    dst: cbuf,
                });
                sched.discard(acol);
                sched.discard(brow);
            }
            let pairs = (m * ic * jc) as u128;
            sched.flops(FlopCount::new(pairs, pairs));
            sched.store(cbuf);
        }
    }
}

/// Builds the square-block OOC_GEMM schedule for `C += alpha · A · B`,
/// validating the operand shapes.
pub fn ooc_gemm_schedule<T: Scalar>(
    a: &PanelRef,
    b: &PanelRef,
    c: &PanelRef,
    alpha: T,
    plan: &OocGemmPlan,
) -> Result<Schedule<T>> {
    let (n, m) = (a.rows(), a.cols());
    let p = b.cols();
    if b.rows() != m || c.rows() != n || c.cols() != p {
        return Err(OocError::Invalid(format!(
            "OOC_GEMM operand mismatch: A is {n}x{m}, B is {}x{p}, C is {}x{}",
            b.rows(),
            c.rows(),
            c.cols()
        )));
    }
    let mut sched = ScheduleBuilder::new();
    ooc_gemm_build(&mut sched, a, b, c, alpha, plan);
    Ok(sched.finish())
}

/// Executes `C += alpha · A · B` out of core with square result blocks.
///
/// `a` is `n×m`, `b` is `m×p` and `c` is `n×p`; all three are rectangular
/// panel references (dense or lower-triangle windows). The schedule is
/// emitted by [`ooc_gemm_build`] and replayed by the generic [`Engine`].
pub fn ooc_gemm_execute<T: Scalar>(
    machine: &mut OocMachine<T>,
    a: &PanelRef,
    b: &PanelRef,
    c: &PanelRef,
    alpha: T,
    plan: &OocGemmPlan,
) -> Result<()> {
    let schedule = ooc_gemm_schedule(a, b, c, alpha, plan)?;
    Engine::execute(machine, &schedule)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use symla_matrix::generate::random_matrix_seeded;
    use symla_matrix::kernels::gemm;
    use symla_matrix::Matrix;

    #[test]
    fn matches_reference_and_cost() {
        for &(n, m, p, s) in &[
            (9_usize, 7_usize, 11_usize, 35_usize),
            (12, 12, 12, 80),
            (5, 20, 3, 24),
        ] {
            let a: Matrix<f64> = random_matrix_seeded(n, m, 300 + n as u64);
            let b: Matrix<f64> = random_matrix_seeded(m, p, 400 + p as u64);
            let c0: Matrix<f64> = random_matrix_seeded(n, p, 500);
            let mut expected = c0.clone();
            gemm(0.5, &a, &b, 1.0, &mut expected).unwrap();

            let plan = OocGemmPlan::for_memory(s).unwrap();
            let mut machine = OocMachine::with_capacity(s);
            let a_id = machine.insert_dense(a);
            let b_id = machine.insert_dense(b);
            let c_id = machine.insert_dense(c0);
            ooc_gemm_execute(
                &mut machine,
                &PanelRef::dense(a_id, n, m),
                &PanelRef::dense(b_id, m, p),
                &PanelRef::dense(c_id, n, p),
                0.5,
                &plan,
            )
            .unwrap();

            let est = ooc_gemm_cost(n, m, p, &plan);
            assert_eq!(est.loads, machine.stats().volume.loads as u128);
            assert_eq!(est.stores, machine.stats().volume.stores as u128);
            assert_eq!(est.flops, machine.stats().flops);
            assert!(machine.stats().peak_resident <= s);

            let got = machine.take_dense(c_id).unwrap();
            assert!(got.approx_eq(&expected, 1e-10), "n={n} m={m} p={p}");
        }
    }

    #[test]
    fn leading_loads_match_closed_form() {
        let s = 40_000;
        let plan = OocGemmPlan::for_memory(s).unwrap();
        let est = ooc_gemm_cost(4000, 2000, 3000, &plan);
        let closed = ooc_gemm_leading_loads(4000.0, 2000.0, 3000.0, s as f64);
        // ragged edge tiles inflate the measured volume slightly above the
        // closed form (ceil effects on the tile grid)
        let ratio = est.loads as f64 / closed;
        assert!(ratio > 0.95 && ratio < 1.10, "ratio {ratio}");
    }

    #[test]
    fn operational_intensity_is_half_sqrt_s() {
        // OI (mults per load) of the GEMM schedule approaches sqrt(S)/2.
        let s = 10_000usize;
        let plan = OocGemmPlan::for_memory(s).unwrap();
        let est = ooc_gemm_cost(2000, 2000, 2000, &plan);
        let oi_loads = est.flops.mults as f64 / est.loads as f64;
        let expected = (s as f64).sqrt() / 2.0;
        assert!(
            (oi_loads / expected - 1.0).abs() < 0.1,
            "oi {oi_loads} vs {expected}"
        );
    }

    #[test]
    fn plan_and_shape_errors() {
        assert!(OocGemmPlan::with_tile(0).is_err());
        let mut machine = OocMachine::<f64>::with_capacity(100);
        let a = machine.insert_dense(Matrix::zeros(3, 4));
        let b = machine.insert_dense(Matrix::zeros(5, 2));
        let c = machine.insert_dense(Matrix::zeros(3, 2));
        let err = ooc_gemm_execute(
            &mut machine,
            &PanelRef::dense(a, 3, 4),
            &PanelRef::dense(b, 5, 2),
            &PanelRef::dense(c, 3, 2),
            1.0,
            &OocGemmPlan::with_tile(2).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, OocError::Invalid(_)));
    }
}
