//! Planner helpers shared by the one-tile schedules and predicted-I/O
//! containers.

use crate::error::{OocError, Result};
use symla_matrix::kernels::FlopCount;

/// Predicted I/O volume and arithmetic work of a schedule, produced by the
/// analytic cost models. The executors are required (and tested) to measure
/// exactly these numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoEstimate {
    /// Elements loaded from slow to fast memory.
    pub loads: u128,
    /// Elements stored from fast to slow memory.
    pub stores: u128,
    /// Arithmetic operations performed.
    pub flops: FlopCount,
}

impl IoEstimate {
    /// Total traffic (loads + stores).
    pub fn total(&self) -> u128 {
        self.loads + self.stores
    }

    /// Component-wise sum.
    pub fn merge(&self, other: &IoEstimate) -> IoEstimate {
        IoEstimate {
            loads: self.loads + other.loads,
            stores: self.stores + other.stores,
            flops: self.flops.merge(&other.flops),
        }
    }

    /// Operational intensity in multiplications per transferred element.
    pub fn operational_intensity_mults(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.flops.mults as f64 / self.total() as f64
        }
    }

    /// The volumes of a measured (or dry-run) [`symla_memory::IoStats`] as an
    /// estimate, so engine dry runs can be compared against analytic cost
    /// models directly.
    pub fn from_stats(stats: &symla_memory::IoStats) -> IoEstimate {
        IoEstimate {
            loads: stats.volume.loads as u128,
            stores: stats.volume.stores as u128,
            flops: stats.flops,
        }
    }
}

/// Largest tile side `t` such that one `t×t` output tile plus two streamed
/// length-`t` operand segments fit in a fast memory of `s` elements:
/// `t² + 2t ≤ s`. This is the tile size used by every one-tile baseline.
pub fn square_tile_for_capacity(s: usize) -> Result<usize> {
    if s < 3 {
        return Err(OocError::Invalid(format!(
            "memory of {s} elements is too small for a one-tile schedule (need at least 3)"
        )));
    }
    // Solve t^2 + 2t - s <= 0 -> t <= sqrt(s + 1) - 1.
    let mut t = ((s as f64 + 1.0).sqrt() - 1.0).floor() as usize;
    while t * t + 2 * t > s {
        t -= 1;
    }
    while (t + 1) * (t + 1) + 2 * (t + 1) <= s {
        t += 1;
    }
    Ok(t.max(1))
}

/// The working-set size of the one-tile schedules for tile side `t`
/// (`t² + 2t`): the value that must not exceed the fast-memory capacity.
pub fn square_tile_working_set(t: usize) -> usize {
    t * t + 2 * t
}

/// Splits a dimension `n` into `⌈n/t⌉` tile extents `(offset, len)`.
pub fn tile_extents(n: usize, t: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(n.div_ceil(t.max(1)));
    let mut start = 0;
    while start < n {
        let len = t.min(n - start);
        out.push((start, len));
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_for_capacity_is_maximal() {
        for s in 3..5000 {
            let t = square_tile_for_capacity(s).unwrap();
            assert!(square_tile_working_set(t) <= s, "s = {s}");
            assert!(
                square_tile_working_set(t + 1) > s,
                "s = {s}: {t} not maximal"
            );
        }
        assert!(square_tile_for_capacity(2).is_err());
        assert_eq!(square_tile_for_capacity(3).unwrap(), 1);
        assert_eq!(square_tile_for_capacity(8).unwrap(), 2);
        assert_eq!(square_tile_for_capacity(1023).unwrap(), 31);
    }

    #[test]
    fn tile_extents_cover_dimension() {
        assert_eq!(tile_extents(10, 4), vec![(0, 4), (4, 4), (8, 2)]);
        assert_eq!(tile_extents(8, 4), vec![(0, 4), (4, 4)]);
        assert_eq!(tile_extents(3, 5), vec![(0, 3)]);
        assert!(tile_extents(0, 4).is_empty());
        let ext = tile_extents(137, 16);
        assert_eq!(ext.iter().map(|&(_, l)| l).sum::<usize>(), 137);
    }

    #[test]
    fn estimate_merge_and_oi() {
        let a = IoEstimate {
            loads: 100,
            stores: 20,
            flops: FlopCount::new(600, 600),
        };
        let b = IoEstimate {
            loads: 10,
            stores: 10,
            flops: FlopCount::new(40, 40),
        };
        let m = a.merge(&b);
        assert_eq!(m.total(), 140);
        assert_eq!(m.flops.mults, 640);
        assert!((a.operational_intensity_mults() - 5.0).abs() < 1e-12);
        assert_eq!(IoEstimate::default().operational_intensity_mults(), 0.0);
    }
}
