//! Error type shared by the out-of-core schedules.

use std::error::Error;
use std::fmt;

/// Errors raised by out-of-core algorithm executors and planners.
#[derive(Debug, Clone, PartialEq)]
pub enum OocError {
    /// An error from the memory machine (capacity exceeded, bad region, ...).
    Memory(symla_memory::MemoryError),
    /// A numerical error from an in-core kernel (non-SPD pivot, ...).
    Matrix(symla_matrix::MatrixError),
    /// Operand shapes or planner parameters are inconsistent.
    Invalid(String),
}

impl fmt::Display for OocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OocError::Memory(e) => write!(f, "memory model error: {e}"),
            OocError::Matrix(e) => write!(f, "kernel error: {e}"),
            OocError::Invalid(msg) => write!(f, "invalid out-of-core invocation: {msg}"),
        }
    }
}

impl Error for OocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OocError::Memory(e) => Some(e),
            OocError::Matrix(e) => Some(e),
            OocError::Invalid(_) => None,
        }
    }
}

impl From<symla_memory::MemoryError> for OocError {
    fn from(e: symla_memory::MemoryError) -> Self {
        OocError::Memory(e)
    }
}

impl From<symla_matrix::MatrixError> for OocError {
    fn from(e: symla_matrix::MatrixError) -> Self {
        OocError::Matrix(e)
    }
}

impl From<symla_sched::EngineError> for OocError {
    fn from(e: symla_sched::EngineError) -> Self {
        match e {
            symla_sched::EngineError::Memory(m) => OocError::Memory(m),
            symla_sched::EngineError::Matrix(m) => OocError::Matrix(m),
            symla_sched::EngineError::InvalidSchedule(msg)
            | symla_sched::EngineError::InvalidArgument(msg) => OocError::Invalid(msg),
        }
    }
}

/// Result alias for out-of-core operations.
pub type Result<T> = std::result::Result<T, OocError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let mem: OocError = symla_memory::MemoryError::UnknownMatrix { id: 3 }.into();
        assert!(mem.to_string().contains("memory model"));
        assert!(Error::source(&mem).is_some());

        let mat: OocError = symla_matrix::MatrixError::SingularPivot { pivot: 1 }.into();
        assert!(mat.to_string().contains("kernel error"));

        let inv = OocError::Invalid("bad tile".into());
        assert!(inv.to_string().contains("bad tile"));
        assert!(Error::source(&inv).is_none());
    }
}
