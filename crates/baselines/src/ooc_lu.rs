//! Out-of-core LU factorization without pivoting (one-tile, left-looking).
//!
//! The non-symmetric factorization comparison point: its leading-order I/O is
//! `2·n³/(3√S)`, giving the `√S/2` operational intensity of the LU / GEMM
//! family, against which the paper's `√(S/2)` for Cholesky is a `√2`
//! improvement.
//!
//! The schedule holds one `t×t` tile of the matrix in fast memory. Tiles are
//! processed by tile columns; within a tile column the diagonal tile comes
//! first, then the tiles below (L part), then the tiles to the right of the
//! diagonal in the same tile *row* are handled when their own column is
//! processed (each tile is touched exactly once). For a tile `(ti, tj)`:
//!
//! 1. stream the already-final `L[Iᵢ, k]` / `U[k, Jⱼ]` segments for
//!    `k < min(i0, j0)` and apply rank-1 updates;
//! 2. factorize in place (diagonal tile), solve against `U` of the diagonal
//!    tile (sub-diagonal tile) or against unit-`L` of the diagonal tile
//!    (super-diagonal tile), streaming the needed diagonal-tile columns.

use crate::error::{OocError, Result};
use crate::params::{square_tile_for_capacity, tile_extents, IoEstimate};
use symla_matrix::kernels::FlopCount;
use symla_matrix::Scalar;
use symla_memory::{OocMachine, PanelRef};
use symla_sched::{BufSlice, ComputeOp, Engine, Schedule, ScheduleBuilder};

/// Parameters of the one-tile out-of-core LU schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OocLuPlan {
    /// Side length of the square tiles.
    pub tile: usize,
}

impl OocLuPlan {
    /// Chooses the largest tile fitting a fast memory of `s` elements.
    pub fn for_memory(s: usize) -> Result<Self> {
        Ok(Self {
            tile: square_tile_for_capacity(s)?,
        })
    }

    /// Uses an explicit tile size.
    pub fn with_tile(tile: usize) -> Result<Self> {
        if tile == 0 {
            return Err(OocError::Invalid("tile size must be positive".into()));
        }
        Ok(Self { tile })
    }
}

/// Predicted I/O of `ooc_lu_execute` on an `n × n` window.
pub fn ooc_lu_cost(n: usize, plan: &OocLuPlan) -> IoEstimate {
    let t = plan.tile;
    let mut est = IoEstimate::default();
    let extents = tile_extents(n, t);
    for (tj, &(j0, jc)) in extents.iter().enumerate() {
        for (ti, &(i0, ic)) in extents.iter().enumerate() {
            let tile_elems = (ic * jc) as u128;
            est.loads += tile_elems;
            est.stores += tile_elems;
            let kmax = i0.min(j0);
            est.loads += (kmax * (ic + jc)) as u128;
            let pairs = (kmax * ic * jc) as u128;
            est.flops = est.flops.merge(&FlopCount::new(pairs, pairs));
            if ti == tj {
                // in-place LU of a jc x jc tile
                let ju = jc as u128;
                let updates = if jc == 0 {
                    0
                } else {
                    (ju - 1) * ju * (2 * ju - 1) / 6
                };
                let divisions = ju * ju.saturating_sub(1) / 2;
                est.flops = est
                    .flops
                    .merge(&FlopCount::new(updates + divisions, updates));
            } else if ti > tj {
                // solve X · U11 = tile, streaming U11 columns (above diagonal
                // + diagonal): column kk has kk+1 elements
                for kk in 0..jc {
                    est.loads += (kk + 1) as u128;
                    let updates = (ic * kk) as u128;
                    est.flops = est
                        .flops
                        .merge(&FlopCount::new(updates + ic as u128, updates));
                }
            } else {
                // solve L11 · X = tile, streaming L11 columns (below
                // diagonal, unit diagonal implied): column kk has ic-kk-1
                // elements
                for kk in 0..ic {
                    est.loads += (ic - kk - 1) as u128;
                    let updates = ((ic - kk - 1) * jc) as u128;
                    est.flops = est.flops.merge(&FlopCount::new(updates, updates));
                }
            }
        }
    }
    est
}

/// The closed-form leading-order load volume of the one-tile LU:
/// `2·n³/(3√S)`.
pub fn ooc_lu_leading_loads(n: f64, s: f64) -> f64 {
    2.0 * n * n * n / (3.0 * s.sqrt())
}

/// Appends the one-tile left-looking OOC_LU schedule for the square window
/// `a` to an existing builder (one task group per tile). The window is
/// assumed square; use [`ooc_lu_schedule`] / [`ooc_lu_execute`] for the
/// checked entry points.
pub fn ooc_lu_build<T: Scalar>(sched: &mut ScheduleBuilder<T>, a: &PanelRef, plan: &OocLuPlan) {
    let n = a.rows();
    let t = plan.tile;
    let extents = tile_extents(n, t);

    for (tj, &(j0, jc)) in extents.iter().enumerate() {
        for (ti, &(i0, ic)) in extents.iter().enumerate() {
            sched.begin_group();
            let tile = sched.load(a.id, a.rect_region(i0, j0, ic, jc));

            // Phase 1: left-looking updates with columns k < min(i0, j0).
            let kmax = i0.min(j0);
            for k in 0..kmax {
                let lcol = sched.load(a.id, a.col_segment_region(k, i0, ic));
                let urow = sched.load(a.id, a.rect_region(k, j0, 1, jc));
                sched.compute(ComputeOp::Ger {
                    alpha: -T::ONE,
                    x: BufSlice::whole(lcol, ic),
                    y: BufSlice::whole(urow, jc),
                    dst: tile,
                });
                sched.discard(lcol);
                sched.discard(urow);
            }
            let pairs = (kmax * ic * jc) as u128;
            sched.flops(FlopCount::new(pairs, pairs));

            if ti == tj {
                // Diagonal tile: in-place LU.
                sched.compute(ComputeOp::LuInPlace {
                    dst: tile,
                    pivot_base: a.row0 + i0,
                });
                let ju = jc as u128;
                let updates = if jc == 0 {
                    0
                } else {
                    (ju - 1) * ju * (2 * ju - 1) / 6
                };
                let divisions = ju * ju.saturating_sub(1) / 2;
                sched.flops(FlopCount::new(updates + divisions, updates));
            } else if ti > tj {
                // Sub-diagonal tile: solve X · U11 = tile, streaming the
                // columns of U11 (above diagonal + diagonal).
                for kk in 0..jc {
                    // column kk of U11: rows j0..j0+kk+1 of column j0+kk
                    let useg = sched.load(a.id, a.rect_region(j0, j0 + kk, kk + 1, 1));
                    sched.compute(ComputeOp::LuColSolveStep {
                        seg: useg,
                        dst: tile,
                        col: kk,
                        pivot: a.row0 + j0 + kk,
                    });
                    sched.discard(useg);
                    let updates = (ic * kk) as u128;
                    sched.flops(FlopCount::new(updates + ic as u128, updates));
                }
            } else {
                // Super-diagonal tile: solve L11 · X = tile (unit diagonal),
                // streaming the strictly sub-diagonal columns of L11.
                for kk in 0..ic {
                    // column kk of L11 below the diagonal: rows i0+kk+1..i0+ic
                    let len = ic - kk - 1;
                    if len > 0 {
                        let lseg = sched.load(a.id, a.rect_region(i0 + kk + 1, i0 + kk, len, 1));
                        sched.compute(ComputeOp::LuRowElimStep {
                            seg: lseg,
                            dst: tile,
                            row: kk,
                        });
                        sched.discard(lseg);
                    }
                    let updates = (len * jc) as u128;
                    sched.flops(FlopCount::new(updates, updates));
                }
            }
            sched.store(tile);
        }
    }
}

/// Builds the one-tile left-looking OOC_LU schedule for the square window
/// `a`, validating its shape.
pub fn ooc_lu_schedule<T: Scalar>(a: &PanelRef, plan: &OocLuPlan) -> Result<Schedule<T>> {
    if a.cols() != a.rows() {
        return Err(OocError::Invalid(format!(
            "OOC_LU needs a square window, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    let mut sched = ScheduleBuilder::new();
    ooc_lu_build(&mut sched, a, plan);
    Ok(sched.finish())
}

/// Factorizes the square window `a` in place (`A = L·U`, no pivoting) with
/// the one-tile left-looking schedule, emitted by [`ooc_lu_build`] and
/// replayed by the generic [`Engine`].
pub fn ooc_lu_execute<T: Scalar>(
    machine: &mut OocMachine<T>,
    a: &PanelRef,
    plan: &OocLuPlan,
) -> Result<()> {
    let schedule = ooc_lu_schedule(a, plan)?;
    Engine::execute(machine, &schedule)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use symla_matrix::generate::seeded_rng;
    use symla_matrix::kernels::{lu_nopiv_in_place, lu_residual};
    use symla_matrix::Matrix;

    fn dd_matrix(n: usize, seed: u64) -> Matrix<f64> {
        let mut rng = seeded_rng(seed);
        let mut m = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        for i in 0..n {
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| m[(i, j)].abs()).sum();
            m[(i, i)] = row_sum + 1.0;
        }
        m
    }

    #[test]
    fn matches_reference_and_cost() {
        for &(n, s) in &[(8_usize, 24_usize), (13, 35), (17, 48), (10, 500)] {
            let a = dd_matrix(n, 600 + n as u64);
            let mut expected = a.clone();
            lu_nopiv_in_place(&mut expected).unwrap();

            let plan = OocLuPlan::for_memory(s).unwrap();
            let mut machine = OocMachine::with_capacity(s);
            let id = machine.insert_dense(a.clone());
            ooc_lu_execute(&mut machine, &PanelRef::dense(id, n, n), &plan).unwrap();

            let est = ooc_lu_cost(n, &plan);
            assert_eq!(
                est.loads,
                machine.stats().volume.loads as u128,
                "n={n} s={s}"
            );
            assert_eq!(est.stores, machine.stats().volume.stores as u128);
            assert_eq!(est.flops, machine.stats().flops);
            assert!(machine.stats().peak_resident <= s);

            let got = machine.take_dense(id).unwrap();
            assert!(got.approx_eq(&expected, 1e-8), "n={n} s={s}");
            assert!(lu_residual(&a, &got) < 1e-10);
        }
    }

    #[test]
    fn leading_loads_match_closed_form() {
        let s = 40_000;
        let plan = OocLuPlan::for_memory(s).unwrap();
        let n = 4000;
        let est = ooc_lu_cost(n, &plan);
        let closed = ooc_lu_leading_loads(n as f64, s as f64);
        let ratio = est.loads as f64 / closed;
        assert!(ratio > 0.95 && ratio < 1.25, "ratio {ratio}");
    }

    #[test]
    fn singular_pivot_reported_globally() {
        let mut a = Matrix::<f64>::identity(9);
        a[(5, 5)] = 0.0;
        let mut machine = OocMachine::<f64>::with_capacity(35);
        let id = machine.insert_dense(a);
        let err = ooc_lu_execute(
            &mut machine,
            &PanelRef::dense(id, 9, 9),
            &OocLuPlan::with_tile(4).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            OocError::Matrix(symla_matrix::MatrixError::SingularPivot { pivot: 5 })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let mut machine = OocMachine::<f64>::with_capacity(100);
        let id = machine.insert_dense(Matrix::zeros(4, 5));
        assert!(ooc_lu_execute(
            &mut machine,
            &PanelRef::dense(id, 4, 5),
            &OocLuPlan::with_tile(2).unwrap()
        )
        .is_err());
        assert!(OocLuPlan::with_tile(0).is_err());
    }
}
