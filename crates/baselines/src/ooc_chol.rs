//! Out-of-core Cholesky factorization (Béreux's `OOC_CHOL`, one-tile
//! left-looking variant).
//!
//! The target is a diagonal window of a symmetric matrix; on exit its lower
//! triangle holds the Cholesky factor `L`. The schedule holds one `t×t` tile
//! of the target in fast memory. Processing tile `(ti, tj)` (tile columns
//! left to right, the diagonal tile of each column first):
//!
//! 1. *left-looking update*: for every already-final column `k < tj·t`,
//!    stream the two length-`t` column segments `L[Iᵢ, k]` and `L[Iⱼ, k]`
//!    (just one for a diagonal tile) and apply a rank-1 update;
//! 2. *in-tile factorization*: a diagonal tile is factorized in place; an
//!    off-diagonal tile is solved against the diagonal block of its column,
//!    whose columns are streamed one segment at a time.
//!
//! Leading-order I/O: `b³/(3√S) + O(b²)` loads — the `Q_OCC` cost quoted in
//! Section 5 of the paper. LBC (in `symla-core`) lowers the overall Cholesky
//! constant to `1/(3√2)` by delegating the bulk of the trailing updates to
//! the triangle-block SYRK instead.

use crate::error::{OocError, Result};
use crate::params::{square_tile_for_capacity, tile_extents, IoEstimate};
use symla_matrix::kernels::FlopCount;
use symla_matrix::Scalar;
use symla_memory::{OocMachine, SymWindowRef};
use symla_sched::{BufSlice, ComputeOp, Engine, Schedule, ScheduleBuilder};

/// Parameters of the one-tile out-of-core Cholesky schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OocCholPlan {
    /// Side length of the square tiles.
    pub tile: usize,
}

impl OocCholPlan {
    /// Chooses the largest tile fitting a fast memory of `s` elements.
    pub fn for_memory(s: usize) -> Result<Self> {
        Ok(Self {
            tile: square_tile_for_capacity(s)?,
        })
    }

    /// Uses an explicit tile size.
    pub fn with_tile(tile: usize) -> Result<Self> {
        if tile == 0 {
            return Err(OocError::Invalid("tile size must be positive".into()));
        }
        Ok(Self { tile })
    }
}

/// Predicted I/O of `ooc_chol_execute` on a window of order `b`.
pub fn ooc_chol_cost(b: usize, plan: &OocCholPlan) -> IoEstimate {
    let t = plan.tile;
    let mut est = IoEstimate::default();
    let extents = tile_extents(b, t);
    for (tj, &(c0, cc)) in extents.iter().enumerate() {
        for (ti, &(_, rc)) in extents.iter().enumerate().skip(tj) {
            let diag = ti == tj;
            let tile_elems = if diag { cc * (cc + 1) / 2 } else { rc * cc } as u128;
            est.loads += tile_elems;
            est.stores += tile_elems;
            // phase 1: left-looking updates with columns 0..c0
            if diag {
                est.loads += (c0 * cc) as u128;
                let pairs = (c0 * cc * (cc + 1) / 2) as u128;
                est.flops = est.flops.merge(&FlopCount::new(pairs, pairs));
            } else {
                est.loads += (c0 * (rc + cc)) as u128;
                let pairs = (c0 * rc * cc) as u128;
                est.flops = est.flops.merge(&FlopCount::new(pairs, pairs));
            }
            // phase 2
            if diag {
                // in-place Cholesky of a cc x cc tile: ~ cc^3/6 updates
                let ccu = cc as u128;
                let scalings = ccu * ccu.saturating_sub(1) / 2;
                let updates = if cc == 0 {
                    0
                } else {
                    ccu * (ccu * ccu - 1) / 6
                };
                est.flops = est
                    .flops
                    .merge(&FlopCount::new(scalings + updates, updates));
            } else {
                // stream the diagonal block's columns for the in-tile solve
                for kk in 0..cc {
                    est.loads += (cc - kk) as u128;
                    let updates = (rc * (cc - kk - 1)) as u128;
                    est.flops = est
                        .flops
                        .merge(&FlopCount::new(updates + rc as u128, updates));
                }
            }
        }
    }
    est
}

/// The closed-form leading-order load volume of `OOC_CHOL`: `b³/(3√S)`.
pub fn ooc_chol_leading_loads(b: f64, s: f64) -> f64 {
    b * b * b / (3.0 * s.sqrt())
}

/// Appends the one-tile left-looking OOC_CHOL schedule for the diagonal
/// window `a` to an existing builder (one task group per tile).
pub fn ooc_chol_build<T: Scalar>(
    sched: &mut ScheduleBuilder<T>,
    a: &SymWindowRef,
    plan: &OocCholPlan,
) {
    let b = a.order();
    let t = plan.tile;
    let extents = tile_extents(b, t);

    for (tj, &(c0, cc)) in extents.iter().enumerate() {
        for (ti, &(r0, rc)) in extents.iter().enumerate().skip(tj) {
            sched.begin_group();
            if ti == tj {
                // ---- diagonal tile ----
                let cbuf = sched.load(a.id, a.lower_triangle_region(c0, cc));
                for k in 0..c0 {
                    let lk = sched.load(a.id, a.rect_region(c0, k, cc, 1));
                    sched.compute(ComputeOp::SprLower {
                        alpha: -T::ONE,
                        x: BufSlice::whole(lk, cc),
                        dst: cbuf,
                    });
                    sched.discard(lk);
                }
                let pairs = (c0 * cc * (cc + 1) / 2) as u128;
                sched.flops(FlopCount::new(pairs, pairs));

                sched.compute(ComputeOp::CholeskyInPlace {
                    dst: cbuf,
                    pivot_base: a.start + c0,
                });
                let ccu = cc as u128;
                let scalings = ccu * ccu.saturating_sub(1) / 2;
                let updates = if cc == 0 {
                    0
                } else {
                    ccu * (ccu * ccu - 1) / 6
                };
                sched.flops(FlopCount::new(scalings + updates, updates));
                sched.store(cbuf);
            } else {
                // ---- off-diagonal tile ----
                let cbuf = sched.load(a.id, a.rect_region(r0, c0, rc, cc));
                for k in 0..c0 {
                    let li = sched.load(a.id, a.rect_region(r0, k, rc, 1));
                    let lj = sched.load(a.id, a.rect_region(c0, k, cc, 1));
                    sched.compute(ComputeOp::Ger {
                        alpha: -T::ONE,
                        x: BufSlice::whole(li, rc),
                        y: BufSlice::whole(lj, cc),
                        dst: cbuf,
                    });
                    sched.discard(li);
                    sched.discard(lj);
                }
                let pairs = (c0 * rc * cc) as u128;
                sched.flops(FlopCount::new(pairs, pairs));

                // in-tile TRSM against the (already final) diagonal block of
                // this tile column, streaming its columns
                for kk in 0..cc {
                    let lseg = sched.load(a.id, a.rect_region(c0 + kk, c0 + kk, cc - kk, 1));
                    sched.compute(ComputeOp::TrsmRightStep {
                        seg: lseg,
                        dst: cbuf,
                        col: kk,
                        pivot: a.start + c0 + kk,
                    });
                    sched.discard(lseg);
                    let updates = (rc * (cc - kk - 1)) as u128;
                    sched.flops(FlopCount::new(updates + rc as u128, updates));
                }
                sched.store(cbuf);
            }
        }
    }
}

/// Builds the one-tile left-looking OOC_CHOL schedule for the diagonal
/// window `a`.
pub fn ooc_chol_schedule<T: Scalar>(a: &SymWindowRef, plan: &OocCholPlan) -> Schedule<T> {
    let mut sched = ScheduleBuilder::new();
    ooc_chol_build(&mut sched, a, plan);
    sched.finish()
}

/// Factorizes the diagonal window `a` in place (`A = L·Lᵀ`, lower triangle
/// overwritten by `L`) with the one-tile left-looking schedule, emitted by
/// [`ooc_chol_build`] and replayed by the generic [`Engine`].
pub fn ooc_chol_execute<T: Scalar>(
    machine: &mut OocMachine<T>,
    a: &SymWindowRef,
    plan: &OocCholPlan,
) -> Result<()> {
    let schedule = ooc_chol_schedule(a, plan);
    Engine::execute(machine, &schedule)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use symla_matrix::generate::{random_spd, random_spd_seeded, seeded_rng};
    use symla_matrix::kernels::{cholesky_residual, cholesky_sym};
    use symla_matrix::{LowerTriangular, SymMatrix};

    fn factor_from_sym(s: &SymMatrix<f64>) -> LowerTriangular<f64> {
        LowerTriangular::from_lower_fn(s.order(), |i, j| s.get(i, j))
    }

    #[test]
    fn matches_reference_and_cost() {
        let mut rng = seeded_rng(4242);
        for &(n, s) in &[
            (8_usize, 24_usize),
            (13, 35),
            (16, 48),
            (10, 1000),
            (21, 63),
        ] {
            let a: SymMatrix<f64> = random_spd(n, &mut rng);
            let expected = cholesky_sym(&a).unwrap();

            let plan = OocCholPlan::for_memory(s).unwrap();
            let mut machine = OocMachine::with_capacity(s);
            let id = machine.insert_symmetric(a.clone());
            ooc_chol_execute(&mut machine, &SymWindowRef::full(id, n), &plan).unwrap();

            let est = ooc_chol_cost(n, &plan);
            assert_eq!(
                est.loads,
                machine.stats().volume.loads as u128,
                "n={n} s={s}"
            );
            assert_eq!(est.stores, machine.stats().volume.stores as u128);
            assert_eq!(est.flops, machine.stats().flops);
            assert!(machine.stats().peak_resident <= s);

            let got = machine.take_symmetric(id).unwrap();
            let lfac = factor_from_sym(&got);
            assert!(
                lfac.approx_eq(&expected, 1e-8),
                "factor mismatch n={n} s={s}"
            );
            assert!(cholesky_residual(&a, &lfac) < 1e-10);
        }
    }

    #[test]
    fn leading_loads_match_closed_form() {
        let s = 40_000;
        let plan = OocCholPlan::for_memory(s).unwrap();
        let b = 4000;
        let est = ooc_chol_cost(b, &plan);
        let closed = ooc_chol_leading_loads(b as f64, s as f64);
        let ratio = est.loads as f64 / closed;
        // lower-order O(b^2) terms inflate the ratio slightly
        assert!(ratio > 0.95 && ratio < 1.2, "ratio {ratio}");
    }

    #[test]
    fn non_spd_reports_absolute_pivot() {
        let n = 9;
        let mut a: SymMatrix<f64> = random_spd_seeded(n, 11);
        a.set(6, 6, -50.0);
        let mut machine = OocMachine::<f64>::with_capacity(35);
        let id = machine.insert_symmetric(a);
        let err = ooc_chol_execute(
            &mut machine,
            &SymWindowRef::full(id, n),
            &OocCholPlan::with_tile(4).unwrap(),
        )
        .unwrap_err();
        match err {
            OocError::Matrix(symla_matrix::MatrixError::NotPositiveDefinite { pivot, .. }) => {
                assert_eq!(pivot, 6)
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn works_on_a_trailing_window() {
        // Factorize only the trailing 7x7 window of a larger symmetric
        // matrix; the rest must be untouched.
        let n = 12;
        let win = 7;
        let big: SymMatrix<f64> = random_spd_seeded(n, 90);
        let window_matrix =
            SymMatrix::<f64>::from_lower_fn(win, |i, j| big.get(n - win + i, n - win + j));
        let expected = cholesky_sym(&window_matrix).unwrap();

        let mut machine = OocMachine::<f64>::with_capacity(35);
        let id = machine.insert_symmetric(big.clone());
        let plan = OocCholPlan::for_memory(35).unwrap();
        ooc_chol_execute(&mut machine, &SymWindowRef::window(id, n - win, win), &plan).unwrap();
        let got = machine.take_symmetric(id).unwrap();

        for i in 0..win {
            for j in 0..=i {
                assert!(
                    (got.get(n - win + i, n - win + j) - expected.get(i, j)).abs() < 1e-9,
                    "window element ({i},{j})"
                );
            }
        }
        // untouched elements outside the window
        assert_eq!(got.get(2, 1), big.get(2, 1));
        assert_eq!(got.get(n - win, 0), big.get(n - win, 0));
    }

    #[test]
    fn plan_validation() {
        assert!(OocCholPlan::with_tile(0).is_err());
        assert!(OocCholPlan::for_memory(2).is_err());
    }
}
