//! Out-of-core SYRK with square result blocks (Béreux's `OOC_SYRK`, the
//! baseline the paper improves upon).
//!
//! The schedule follows the generic Algorithm 3 of the paper with square
//! blocks of side `t` (where `t² + 2t ≤ S`): each block of the lower triangle
//! of `C` is loaded once, every column of `A` is streamed against it (two
//! length-`t` segments per column for an off-diagonal block, one for a
//! diagonal block), and the block is written back.
//!
//! Leading-order I/O: `N²M/√S` loads from `A` plus one read and one write of
//! the lower triangle of `C` — the `OCS` cost `Q_OCS = N²M/√S + O(NM)` quoted
//! in Section 5 of the paper. The triangle-block schedule (TBS, in
//! `symla-core`) improves the leading constant by `√2`.

use crate::error::{OocError, Result};
use crate::params::{square_tile_for_capacity, tile_extents, IoEstimate};
use symla_matrix::kernels::FlopCount;
use symla_matrix::Scalar;
use symla_memory::{OocMachine, PanelRef, SymWindowRef};
use symla_sched::{BufSlice, ComputeOp, Engine, Schedule, ScheduleBuilder};

/// Parameters of the square-block out-of-core SYRK schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OocSyrkPlan {
    /// Side length of the square result blocks.
    pub tile: usize,
}

impl OocSyrkPlan {
    /// Chooses the largest tile that fits a fast memory of `s` elements
    /// (`t² + 2t ≤ s`).
    pub fn for_memory(s: usize) -> Result<Self> {
        Ok(Self {
            tile: square_tile_for_capacity(s)?,
        })
    }

    /// Uses an explicit tile size (mainly for tests and ablations; `tile = 1`
    /// degenerates to the completely unblocked streaming schedule).
    pub fn with_tile(tile: usize) -> Result<Self> {
        if tile == 0 {
            return Err(OocError::Invalid("tile size must be positive".into()));
        }
        Ok(Self { tile })
    }

    /// Fast-memory working set of this plan (`t² + 2t`).
    pub fn working_set(&self) -> usize {
        self.tile * self.tile + 2 * self.tile
    }
}

/// Predicted I/O volume of `ooc_syrk_execute` for a result of order `n` and
/// an input panel with `m` columns. Mirrors the executor loop for loop,
/// so measured I/O matches it exactly.
pub fn ooc_syrk_cost(n: usize, m: usize, plan: &OocSyrkPlan) -> IoEstimate {
    let t = plan.tile;
    let mut est = IoEstimate::default();
    let extents = tile_extents(n, t);
    for (tj, &(_, jc)) in extents.iter().enumerate() {
        for (ti, &(_, ic)) in extents.iter().enumerate().skip(tj) {
            if ti == tj {
                let c_elems = (ic * (ic + 1) / 2) as u128;
                est.loads += c_elems + (m * ic) as u128;
                est.stores += c_elems;
                let pairs = (m * ic * (ic + 1) / 2) as u128;
                est.flops = est.flops.merge(&FlopCount::new(pairs, pairs));
            } else {
                let c_elems = (ic * jc) as u128;
                est.loads += c_elems + (m * (ic + jc)) as u128;
                est.stores += c_elems;
                let pairs = (m * ic * jc) as u128;
                est.flops = est.flops.merge(&FlopCount::new(pairs, pairs));
            }
        }
    }
    est
}

/// The paper's closed-form leading-order cost of `OOC_SYRK`:
/// `N²M/√S + N²/2` loads (plus the `N²/2` stores of `C`).
pub fn ooc_syrk_leading_loads(n: f64, m: f64, s: f64) -> f64 {
    n * n * m / s.sqrt() + n * n / 2.0
}

/// Appends the square-block OOC_SYRK schedule for
/// `C[window] += alpha · A · Aᵀ` to an existing builder (one task group per
/// result block). Operands are assumed validated; use
/// [`ooc_syrk_schedule`] / [`ooc_syrk_execute`] for the checked entry points.
pub fn ooc_syrk_build<T: Scalar>(
    sched: &mut ScheduleBuilder<T>,
    a: &PanelRef,
    c: &SymWindowRef,
    alpha: T,
    plan: &OocSyrkPlan,
) {
    let n = c.order();
    let m = a.cols();
    let t = plan.tile;
    let extents = tile_extents(n, t);

    for (tj, &(j0, jc)) in extents.iter().enumerate() {
        for (ti, &(i0, ic)) in extents.iter().enumerate().skip(tj) {
            sched.begin_group();
            if ti == tj {
                // Diagonal block: packed lower triangle of side ic.
                let cbuf = sched.load(c.id, c.lower_triangle_region(i0, ic));
                for k in 0..m {
                    let acol = sched.load(a.id, a.col_segment_region(k, i0, ic));
                    sched.compute(ComputeOp::SprLower {
                        alpha,
                        x: BufSlice::whole(acol, ic),
                        dst: cbuf,
                    });
                    sched.discard(acol);
                }
                let pairs = (m * ic * (ic + 1) / 2) as u128;
                sched.flops(FlopCount::new(pairs, pairs));
                sched.store(cbuf);
            } else {
                // Off-diagonal block: ic x jc rectangle strictly below the
                // diagonal of the window.
                let cbuf = sched.load(c.id, c.rect_region(i0, j0, ic, jc));
                for k in 0..m {
                    let arow = sched.load(a.id, a.col_segment_region(k, i0, ic));
                    let acol = sched.load(a.id, a.col_segment_region(k, j0, jc));
                    sched.compute(ComputeOp::Ger {
                        alpha,
                        x: BufSlice::whole(arow, ic),
                        y: BufSlice::whole(acol, jc),
                        dst: cbuf,
                    });
                    sched.discard(arow);
                    sched.discard(acol);
                }
                let pairs = (m * ic * jc) as u128;
                sched.flops(FlopCount::new(pairs, pairs));
                sched.store(cbuf);
            }
        }
    }
}

/// Builds the square-block OOC_SYRK schedule for
/// `C[window] += alpha · A · Aᵀ`, validating the operand shapes.
pub fn ooc_syrk_schedule<T: Scalar>(
    a: &PanelRef,
    c: &SymWindowRef,
    alpha: T,
    plan: &OocSyrkPlan,
) -> Result<Schedule<T>> {
    if a.rows() != c.order() {
        return Err(OocError::Invalid(format!(
            "OOC_SYRK operand mismatch: A has {} rows but C has order {}",
            a.rows(),
            c.order()
        )));
    }
    let mut sched = ScheduleBuilder::new();
    ooc_syrk_build(&mut sched, a, c, alpha, plan);
    Ok(sched.finish())
}

/// Executes `C[window] += alpha · A · Aᵀ` out of core with square blocks.
///
/// * `a` — the `n × m` input panel;
/// * `c` — the order-`n` diagonal window of a symmetric matrix receiving the
///   update;
/// * `alpha` — scaling of the product (LBC passes `-1`).
///
/// The schedule is emitted by [`ooc_syrk_build`] and replayed by the generic
/// [`Engine`]. The caller chooses the machine's phase label beforehand; this
/// function never changes it, so LBC can attribute the traffic of its
/// trailing updates to a dedicated phase.
pub fn ooc_syrk_execute<T: Scalar>(
    machine: &mut OocMachine<T>,
    a: &PanelRef,
    c: &SymWindowRef,
    alpha: T,
    plan: &OocSyrkPlan,
) -> Result<()> {
    let schedule = ooc_syrk_schedule(a, c, alpha, plan)?;
    Engine::execute(machine, &schedule)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use symla_matrix::generate::{random_matrix_seeded, random_symmetric, seeded_rng};
    use symla_matrix::kernels::syrk_sym;
    use symla_matrix::{Matrix, SymMatrix};
    use symla_memory::MachineConfig;

    fn run_case(
        n: usize,
        m: usize,
        s: usize,
        alpha: f64,
    ) -> (SymMatrix<f64>, IoEstimate, symla_memory::IoStats) {
        let a: Matrix<f64> = random_matrix_seeded(n, m, 1000 + n as u64);
        let mut rng = seeded_rng(2000 + n as u64);
        let c0: SymMatrix<f64> = random_symmetric(n, &mut rng);

        let mut expected = c0.clone();
        syrk_sym(alpha, &a, 1.0, &mut expected).unwrap();

        let plan = OocSyrkPlan::for_memory(s).unwrap();
        let mut machine = OocMachine::new(MachineConfig::with_capacity(s));
        let a_id = machine.insert_dense(a);
        let c_id = machine.insert_symmetric(c0);
        let a_ref = PanelRef::dense(a_id, n, m);
        let c_ref = SymWindowRef::full(c_id, n);
        ooc_syrk_execute(&mut machine, &a_ref, &c_ref, alpha, &plan).unwrap();

        let est = ooc_syrk_cost(n, m, &plan);
        let stats = machine.stats().clone();
        let result = machine.take_symmetric(c_id).unwrap();
        assert!(
            result.approx_eq(&expected, 1e-10),
            "numerical mismatch (n={n}, m={m}, s={s})"
        );
        (result, est, stats)
    }

    #[test]
    fn correct_and_predicted_io_matches_measured() {
        for &(n, m, s) in &[
            (13_usize, 7_usize, 24_usize),
            (16, 16, 35),
            (20, 5, 120),
            (9, 12, 1000),
        ] {
            let (_, est, stats) = run_case(n, m, s, 1.0);
            assert_eq!(
                est.loads, stats.volume.loads as u128,
                "loads n={n} m={m} s={s}"
            );
            assert_eq!(
                est.stores, stats.volume.stores as u128,
                "stores n={n} m={m} s={s}"
            );
            assert_eq!(est.flops, stats.flops, "flops n={n} m={m} s={s}");
        }
    }

    #[test]
    fn negative_alpha_supported() {
        let (_, _, _) = run_case(11, 6, 48, -1.0);
    }

    #[test]
    fn capacity_is_respected_and_peak_close_to_working_set() {
        let s = 63;
        let (_, _, stats) = run_case(18, 9, s, 1.0);
        assert!(stats.peak_resident <= s);
        let plan = OocSyrkPlan::for_memory(s).unwrap();
        assert!(stats.peak_resident >= plan.tile * plan.tile);
    }

    #[test]
    fn cost_leading_term_matches_closed_form() {
        // For large N, measured loads / (N^2 M / sqrt(S) + N^2/2) -> 1.
        let s = 10_000;
        let plan = OocSyrkPlan::for_memory(s).unwrap();
        let n = 3000;
        let m = 1500;
        let est = ooc_syrk_cost(n, m, &plan);
        let closed = ooc_syrk_leading_loads(n as f64, m as f64, s as f64);
        let ratio = est.loads as f64 / closed;
        assert!(
            (ratio - 1.0).abs() < 0.05,
            "loads {} vs closed form {closed} (ratio {ratio})",
            est.loads
        );
    }

    #[test]
    fn stores_equal_lower_triangle_once() {
        let plan = OocSyrkPlan::with_tile(4).unwrap();
        let est = ooc_syrk_cost(10, 3, &plan);
        assert_eq!(est.stores, 55);
        // loads include the triangle once plus the A streams
        assert!(est.loads > 55);
        // flops count every multiply of the (full, diagonal-inclusive) kernel
        assert_eq!(est.flops.mults, 3 * 55);
    }

    #[test]
    fn plan_validation() {
        assert!(OocSyrkPlan::with_tile(0).is_err());
        assert!(OocSyrkPlan::for_memory(1).is_err());
        let p = OocSyrkPlan::for_memory(35).unwrap();
        assert_eq!(p.tile, 5);
        assert_eq!(p.working_set(), 35);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut machine = OocMachine::<f64>::with_capacity(100);
        let a_id = machine.insert_dense(Matrix::zeros(4, 3));
        let c_id = machine.insert_symmetric(SymMatrix::zeros(5));
        let err = ooc_syrk_execute(
            &mut machine,
            &PanelRef::dense(a_id, 4, 3),
            &SymWindowRef::full(c_id, 5),
            1.0,
            &OocSyrkPlan::with_tile(2).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, OocError::Invalid(_)));
    }

    #[test]
    fn works_on_a_symmetric_subwindow() {
        // Update only the trailing 6x6 window of a 10x10 symmetric matrix
        // with a panel that itself lives in the lower triangle (the LBC
        // usage pattern).
        let n = 10;
        let mut base = SymMatrix::<f64>::from_lower_fn(n, |i, j| (i + j) as f64 * 0.1);
        // fill the panel block rows 4..10, cols 0..4 with known values
        let panel_vals = random_matrix_seeded::<f64>(6, 4, 77);
        for i in 0..6 {
            for j in 0..4 {
                base.set(4 + i, j, panel_vals[(i, j)]);
            }
        }
        let mut expected = base.clone();
        // expected trailing update: C[4.., 4..] += -1 * P * P^T
        {
            let mut trailing =
                SymMatrix::<f64>::from_lower_fn(6, |i, j| expected.get(4 + i, 4 + j));
            syrk_sym(-1.0, &panel_vals, 1.0, &mut trailing).unwrap();
            for i in 0..6 {
                for j in 0..=i {
                    expected.set(4 + i, 4 + j, trailing.get(i, j));
                }
            }
        }

        let s = 48;
        let plan = OocSyrkPlan::for_memory(s).unwrap();
        let mut machine = OocMachine::new(MachineConfig::with_capacity(s));
        let id = machine.insert_symmetric(base);
        let a_ref = PanelRef::sym_window(id, 4, 0, 6, 4);
        let c_ref = SymWindowRef::window(id, 4, 6);
        ooc_syrk_execute(&mut machine, &a_ref, &c_ref, -1.0, &plan).unwrap();
        let got = machine.take_symmetric(id).unwrap();
        assert!(got.approx_eq(&expected, 1e-10));
    }
}
