//! # symla-baselines
//!
//! Baseline out-of-core schedules: the algorithms the SPAA'22 paper compares
//! against and builds upon.
//!
//! * [`ooc_syrk`] — Béreux's square-block `OOC_SYRK`
//!   (`N²M/√S + O(NM)` loads);
//! * [`ooc_trsm`] — one-tile `OOC_TRSM` (`N²M/√S + O(NM)` loads);
//! * [`ooc_chol`] — one-tile left-looking `OOC_CHOL` (`N³/(3√S) + O(N²)`
//!   loads);
//! * [`ooc_gemm`] — one-tile GEMM (`2NMP/√S + O(NP)` loads), the
//!   non-symmetric comparison point;
//! * [`ooc_lu`] — one-tile left-looking LU without pivoting
//!   (`2N³/(3√S) + O(N²)` loads).
//!
//! Every schedule comes in two forms that are tested to agree exactly:
//! an **analytic cost model** (`*_cost`) and a **numeric executor**
//! (`*_execute`) that runs the schedule on real data through the
//! capacity-enforced machine of `symla-memory` and is verified against the
//! in-memory reference kernels of `symla-matrix`.
//!
//! The improved schedules of the paper (TBS and LBC) live in `symla-core`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod ooc_chol;
pub mod ooc_gemm;
pub mod ooc_lu;
pub mod ooc_syrk;
pub mod ooc_trsm;
pub mod params;

pub use error::{OocError, Result};
pub use ooc_chol::{
    ooc_chol_build, ooc_chol_cost, ooc_chol_execute, ooc_chol_leading_loads, ooc_chol_schedule,
    OocCholPlan,
};
pub use ooc_gemm::{
    ooc_gemm_build, ooc_gemm_cost, ooc_gemm_execute, ooc_gemm_leading_loads, ooc_gemm_schedule,
    OocGemmPlan,
};
pub use ooc_lu::{
    ooc_lu_build, ooc_lu_cost, ooc_lu_execute, ooc_lu_leading_loads, ooc_lu_schedule, OocLuPlan,
};
pub use ooc_syrk::{
    ooc_syrk_build, ooc_syrk_cost, ooc_syrk_execute, ooc_syrk_leading_loads, ooc_syrk_schedule,
    OocSyrkPlan,
};
pub use ooc_trsm::{
    ooc_trsm_build, ooc_trsm_cost, ooc_trsm_execute, ooc_trsm_leading_loads, ooc_trsm_schedule,
    OocTrsmPlan,
};
pub use params::{square_tile_for_capacity, IoEstimate};
