//! Out-of-core triangular solve `X ← X · L⁻ᵀ` (Béreux's `OOC_TRSM`, one-tile
//! variant), the panel-solve building block of the blocked Cholesky
//! factorizations.
//!
//! `L` is the (already factorized) lower-triangular diagonal block of order
//! `b`; `X` is an `m × b` panel transformed in place. The schedule holds one
//! `t×t` tile of `X` in fast memory; for each tile it first applies the
//! contributions of the already-final columns to its left (streaming one
//! column of `X` and one column segment of `L` at a time — 2`t` elements per
//! step), then performs the in-tile solve streaming the columns of the
//! corresponding diagonal block of `L`.
//!
//! Leading-order I/O: `b²·m/√S + O(b·m)` loads, the `Q_OCT` cost quoted in
//! Section 5 of the paper.

use crate::error::{OocError, Result};
use crate::params::{square_tile_for_capacity, tile_extents, IoEstimate};
use symla_matrix::kernels::FlopCount;
use symla_matrix::Scalar;
use symla_memory::{OocMachine, PanelRef, SymWindowRef};
use symla_sched::{BufSlice, ComputeOp, Engine, Schedule, ScheduleBuilder};

/// Parameters of the one-tile out-of-core TRSM schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OocTrsmPlan {
    /// Side length of the square panel tiles.
    pub tile: usize,
}

impl OocTrsmPlan {
    /// Chooses the largest tile fitting a fast memory of `s` elements.
    pub fn for_memory(s: usize) -> Result<Self> {
        Ok(Self {
            tile: square_tile_for_capacity(s)?,
        })
    }

    /// Uses an explicit tile size.
    pub fn with_tile(tile: usize) -> Result<Self> {
        if tile == 0 {
            return Err(OocError::Invalid("tile size must be positive".into()));
        }
        Ok(Self { tile })
    }
}

/// Predicted I/O of `ooc_trsm_execute` for an `m × b` panel and an order-`b`
/// triangular block.
pub fn ooc_trsm_cost(m: usize, b: usize, plan: &OocTrsmPlan) -> IoEstimate {
    let t = plan.tile;
    let mut est = IoEstimate::default();
    for &(_, rc) in &tile_extents(m, t) {
        for &(c0, cc) in &tile_extents(b, t) {
            // load + store the X tile
            est.loads += (rc * cc) as u128;
            est.stores += (rc * cc) as u128;
            // phase A: one column of X and one column segment of L per
            // previous column
            est.loads += (c0 * (rc + cc)) as u128;
            let pairs = (c0 * rc * cc) as u128;
            est.flops = est.flops.merge(&FlopCount::new(pairs, pairs));
            // phase B: stream the columns of the diagonal block of L
            for kk in 0..cc {
                est.loads += (cc - kk) as u128;
                let updates = (rc * (cc - kk - 1)) as u128;
                est.flops = est
                    .flops
                    .merge(&FlopCount::new(updates + rc as u128, updates));
            }
        }
    }
    est
}

/// The closed-form leading-order load volume of `OOC_TRSM`: `b²·m/√S`.
pub fn ooc_trsm_leading_loads(m: f64, b: f64, s: f64) -> f64 {
    b * b * m / s.sqrt()
}

/// Appends the one-tile OOC_TRSM schedule for `X ← X · L⁻ᵀ` to an existing
/// builder (one task group per panel tile). Operands are assumed validated.
pub fn ooc_trsm_build<T: Scalar>(
    sched: &mut ScheduleBuilder<T>,
    l: &SymWindowRef,
    x: &PanelRef,
    plan: &OocTrsmPlan,
) {
    let b = l.order();
    let m = x.rows();
    let t = plan.tile;

    for &(r0, rc) in &tile_extents(m, t) {
        for &(c0, cc) in &tile_extents(b, t) {
            sched.begin_group();
            let xbuf = sched.load(x.id, x.rect_region(r0, c0, rc, cc));

            // Phase A: apply the already-final columns 0..c0 of X.
            for k in 0..c0 {
                let xk = sched.load(x.id, x.col_segment_region(k, r0, rc));
                let lk = sched.load(l.id, l.rect_region(c0, k, cc, 1));
                // X[:, j] -= X[:, k] * L[c0 + j, k]
                sched.compute(ComputeOp::Ger {
                    alpha: -T::ONE,
                    x: BufSlice::whole(xk, rc),
                    y: BufSlice::whole(lk, cc),
                    dst: xbuf,
                });
                sched.discard(xk);
                sched.discard(lk);
            }
            let pairs = (c0 * rc * cc) as u128;
            sched.flops(FlopCount::new(pairs, pairs));

            // Phase B: in-tile solve against the diagonal block L[c0.., c0..],
            // streaming one column segment of L at a time.
            for kk in 0..cc {
                let lseg = sched.load(l.id, l.rect_region(c0 + kk, c0 + kk, cc - kk, 1));
                sched.compute(ComputeOp::TrsmRightStep {
                    seg: lseg,
                    dst: xbuf,
                    col: kk,
                    pivot: c0 + kk,
                });
                sched.discard(lseg);
                let updates = (rc * (cc - kk - 1)) as u128;
                sched.flops(FlopCount::new(updates + rc as u128, updates));
            }

            sched.store(xbuf);
        }
    }
}

/// Builds the one-tile OOC_TRSM schedule for `X ← X · L⁻ᵀ`, validating the
/// operand shapes.
pub fn ooc_trsm_schedule<T: Scalar>(
    l: &SymWindowRef,
    x: &PanelRef,
    plan: &OocTrsmPlan,
) -> Result<Schedule<T>> {
    if x.cols() != l.order() {
        return Err(OocError::Invalid(format!(
            "OOC_TRSM operand mismatch: X has {} columns but L has order {}",
            x.cols(),
            l.order()
        )));
    }
    let mut sched = ScheduleBuilder::new();
    ooc_trsm_build(&mut sched, l, x, plan);
    Ok(sched.finish())
}

/// Executes `X ← X · L⁻ᵀ` out of core.
///
/// * `l` — order-`b` diagonal window of a symmetric matrix whose lower
///   triangle holds the triangular factor `L`;
/// * `x` — the `m × b` panel to transform in place.
///
/// The schedule is emitted by [`ooc_trsm_build`] and replayed by the generic
/// [`Engine`].
pub fn ooc_trsm_execute<T: Scalar>(
    machine: &mut OocMachine<T>,
    l: &SymWindowRef,
    x: &PanelRef,
    plan: &OocTrsmPlan,
) -> Result<()> {
    let schedule = ooc_trsm_schedule(l, x, plan)?;
    Engine::execute(machine, &schedule)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use symla_matrix::generate::{random_lower_triangular, random_matrix_seeded, seeded_rng};
    use symla_matrix::kernels::{trsm_right_lower_transpose, trsm_right_lt_residual};
    use symla_matrix::{Matrix, SymMatrix};

    fn sym_from_lower(l: &symla_matrix::LowerTriangular<f64>) -> SymMatrix<f64> {
        SymMatrix::from_lower_fn(l.order(), |i, j| l.get(i, j))
    }

    #[test]
    fn matches_reference_and_cost() {
        for &(m, b, s) in &[
            (9_usize, 6_usize, 24_usize),
            (14, 10, 48),
            (7, 7, 200),
            (20, 4, 15),
        ] {
            let mut rng = seeded_rng(900 + m as u64);
            let lfac = random_lower_triangular::<f64>(b, &mut rng);
            let x0: Matrix<f64> = random_matrix_seeded(m, b, 910 + b as u64);

            let mut expected = x0.clone();
            trsm_right_lower_transpose(&lfac, &mut expected).unwrap();

            let plan = OocTrsmPlan::for_memory(s).unwrap();
            let mut machine = OocMachine::with_capacity(s);
            let l_id = machine.insert_symmetric(sym_from_lower(&lfac));
            let x_id = machine.insert_dense(x0.clone());
            ooc_trsm_execute(
                &mut machine,
                &SymWindowRef::full(l_id, b),
                &PanelRef::dense(x_id, m, b),
                &plan,
            )
            .unwrap();

            let est = ooc_trsm_cost(m, b, &plan);
            assert_eq!(
                est.loads,
                machine.stats().volume.loads as u128,
                "m={m} b={b} s={s}"
            );
            assert_eq!(est.stores, machine.stats().volume.stores as u128);
            assert_eq!(est.flops, machine.stats().flops);
            assert!(machine.stats().peak_resident <= s);

            let got = machine.take_dense(x_id).unwrap();
            assert!(got.approx_eq(&expected, 1e-9), "m={m} b={b} s={s}");
            assert!(trsm_right_lt_residual(&lfac, &x0, &got) < 1e-9);
        }
    }

    #[test]
    fn leading_loads_match_closed_form() {
        let s = 40_000;
        let plan = OocTrsmPlan::for_memory(s).unwrap();
        let (m, b) = (6000, 3000);
        let est = ooc_trsm_cost(m, b, &plan);
        let closed = ooc_trsm_leading_loads(m as f64, b as f64, s as f64);
        // lower-order terms (X tile loads, diagonal streaming) add O(bm)
        let ratio = est.loads as f64 / closed;
        assert!(ratio > 0.95 && ratio < 1.25, "ratio {ratio}");
    }

    #[test]
    fn singular_diagonal_is_reported() {
        let b = 4;
        let mut sym = SymMatrix::<f64>::zeros(b);
        for i in 0..b {
            sym.set(i, i, if i == 2 { 0.0 } else { 1.0 });
        }
        let mut machine = OocMachine::<f64>::with_capacity(100);
        let l_id = machine.insert_symmetric(sym);
        let x_id = machine.insert_dense(Matrix::filled(3, b, 1.0));
        let err = ooc_trsm_execute(
            &mut machine,
            &SymWindowRef::full(l_id, b),
            &PanelRef::dense(x_id, 3, b),
            &OocTrsmPlan::with_tile(2).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            OocError::Matrix(symla_matrix::MatrixError::SingularPivot { pivot: 2 })
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut machine = OocMachine::<f64>::with_capacity(100);
        let l_id = machine.insert_symmetric(SymMatrix::zeros(4));
        let x_id = machine.insert_dense(Matrix::zeros(3, 5));
        let err = ooc_trsm_execute(
            &mut machine,
            &SymWindowRef::full(l_id, 4),
            &PanelRef::dense(x_id, 3, 5),
            &OocTrsmPlan::with_tile(2).unwrap(),
        )
        .unwrap_err();
        assert!(matches!(err, OocError::Invalid(_)));
        assert!(OocTrsmPlan::with_tile(0).is_err());
    }
}
