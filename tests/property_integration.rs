//! Property-based integration tests: randomized problem sizes and memory
//! capacities, exercising the full stack.

use proptest::prelude::*;
use symla::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random (N, M, S), every SYRK schedule produces the reference
    /// result, matches its cost model and respects capacity and lower bound.
    #[test]
    fn syrk_schedules_are_correct_for_random_sizes(
        n in 4usize..48,
        m in 1usize..24,
        s in 10usize..120,
        seed in 0u64..1000,
    ) {
        let a = generate::random_matrix_seeded::<f64>(n, m, seed);
        let c0 = generate::random_symmetric::<f64>(n, &mut generate::seeded_rng(seed + 1));
        let mut expected = c0.clone();
        kernels::syrk_sym(-1.0, &a, 1.0, &mut expected).unwrap();

        for algo in [SyrkAlgorithm::SquareBlocks, SyrkAlgorithm::TbsTiled, SyrkAlgorithm::Tbs] {
            let mut c = c0.clone();
            let report = syrk_out_of_core(&a, &mut c, -1.0, s, algo).unwrap();
            prop_assert!(c.approx_eq(&expected, 1e-9), "{} result", algo.name());
            prop_assert!(report.prediction_matches(), "{} prediction", algo.name());
            prop_assert!(report.stats.peak_resident <= s, "{} capacity", algo.name());
            prop_assert!(
                report.measured_loads() as f64 >= report.lower_bound - 1e-9,
                "{} lower bound", algo.name()
            );
        }
    }

    /// For random (N, S), every Cholesky schedule factorizes correctly and
    /// matches its cost model.
    #[test]
    fn cholesky_schedules_are_correct_for_random_sizes(
        n in 4usize..40,
        s in 12usize..100,
        seed in 0u64..1000,
    ) {
        let a = generate::random_spd_seeded::<f64>(n, seed);
        for algo in [
            CholeskyAlgorithm::Bereux,
            CholeskyAlgorithm::Lbc,
            CholeskyAlgorithm::LbcTiled,
            CholeskyAlgorithm::LbcSquare,
        ] {
            let (l, report) = cholesky_out_of_core(&a, s, algo).unwrap();
            prop_assert!(kernels::cholesky_residual(&a, &l) < 1e-8, "{}", algo.name());
            prop_assert!(report.prediction_matches(), "{}", algo.name());
            prop_assert!(report.stats.peak_resident <= s, "{}", algo.name());
        }
    }

    /// The TBS partition used by the schedules is an exact cover for random
    /// feasible (c, k).
    #[test]
    fn tbs_partition_is_exact_for_random_parameters(k in 2usize..6, limit in 5usize..30) {
        if let Some(c) = symla::sched::indexing::largest_coprime_below(limit, k) {
            if c + 1 >= k {
                let partition = TbsPartition::build(c, k).unwrap();
                prop_assert!(partition.verify_exact_cover().is_ok());
            }
        }
    }
}
