//! Property-style integration tests: randomized (but deterministically
//! seeded) problem sizes and memory capacities, exercising the full stack.
//!
//! The workspace is dependency-free, so instead of a property-testing crate
//! the cases are drawn from the workspace's own seeded RNG: every run checks
//! the same instances, and a failing instance is fully identified by the
//! printed `(n, m, s, seed)` tuple.

use symla::matrix::generate::SeededRng;
use symla::prelude::*;

#[test]
fn syrk_schedules_are_correct_for_random_sizes() {
    let mut rng = SeededRng::seed_from_u64(0xA11CE);
    for case in 0..24 {
        let n = rng.gen_range(4usize..48);
        let m = rng.gen_range(1usize..24);
        let s = rng.gen_range(10usize..120);
        let seed = rng.gen_range(0usize..1000) as u64;

        let a = generate::random_matrix_seeded::<f64>(n, m, seed);
        let c0 = generate::random_symmetric::<f64>(n, &mut generate::seeded_rng(seed + 1));
        let mut expected = c0.clone();
        kernels::syrk_sym(-1.0, &a, 1.0, &mut expected).unwrap();

        for algo in [
            SyrkAlgorithm::SquareBlocks,
            SyrkAlgorithm::TbsTiled,
            SyrkAlgorithm::Tbs,
        ] {
            let mut c = c0.clone();
            let report = syrk_out_of_core(&a, &mut c, -1.0, s, algo).unwrap();
            let ctx = format!("case {case}: {} n={n} m={m} s={s} seed={seed}", algo.name());
            assert!(c.approx_eq(&expected, 1e-9), "{ctx}: result");
            assert!(report.prediction_matches(), "{ctx}: prediction");
            assert!(report.stats.peak_resident <= s, "{ctx}: capacity");
            assert!(
                report.measured_loads() as f64 >= report.lower_bound - 1e-9,
                "{ctx}: lower bound"
            );
        }
    }
}

#[test]
fn cholesky_schedules_are_correct_for_random_sizes() {
    let mut rng = SeededRng::seed_from_u64(0xB0B);
    for case in 0..24 {
        let n = rng.gen_range(4usize..40);
        let s = rng.gen_range(12usize..100);
        let seed = rng.gen_range(0usize..1000) as u64;

        let a = generate::random_spd_seeded::<f64>(n, seed);
        for algo in [
            CholeskyAlgorithm::Bereux,
            CholeskyAlgorithm::Lbc,
            CholeskyAlgorithm::LbcTiled,
            CholeskyAlgorithm::LbcSquare,
        ] {
            let (l, report) = cholesky_out_of_core(&a, s, algo).unwrap();
            let ctx = format!("case {case}: {} n={n} s={s} seed={seed}", algo.name());
            assert!(kernels::cholesky_residual(&a, &l) < 1e-8, "{ctx}");
            assert!(report.prediction_matches(), "{ctx}");
            assert!(report.stats.peak_resident <= s, "{ctx}");
        }
    }
}

#[test]
fn tbs_partition_is_exact_for_random_parameters() {
    let mut rng = SeededRng::seed_from_u64(0xC0FFEE);
    for _ in 0..40 {
        let k = rng.gen_range(2usize..6);
        let limit = rng.gen_range(5usize..30);
        if let Some(c) = symla::sched::indexing::largest_coprime_below(limit, k) {
            if c + 1 >= k {
                let partition = TbsPartition::build(c, k).unwrap();
                assert!(
                    partition.verify_exact_cover().is_ok(),
                    "partition (c={c}, k={k}) is not an exact cover"
                );
            }
        }
    }
}
