//! Observer invariance: attaching *any* observer to an execution must not
//! change what the execution computes or what the engine accounts.
//!
//! For seeded instances of all eight schedule builders, at
//! `lookahead ∈ {0, 1, 2}`, this asserts that a replay through an
//! [`InstrumentedMachine`] — with a recording observer ([`TraceRecorder`])
//! and with the disabled one ([`NullObserver`]) — leaves
//!
//! 1. the slow-memory results **bitwise identical** to the unobserved
//!    replay,
//! 2. the [`IoStats`] equal field for field (volumes, events, prefetched
//!    elements, peak residency, per-phase split),
//! 3. the modelled [`TimeStats`] bitwise equal to the static
//!    [`modelled_time`] price (which `tests/wallclock_model.rs` pins to the
//!    [`LatencyMachine`] measurement) when recording, and exactly zero when
//!    disabled (the disabled path must not even run the clock).
//!
//! The parallel variant asserts the same for the traced parallel SYRK
//! against the unobserved one: bitwise results and placement-independent
//! totals. **Deviation from the serial sweep:** the parallel engine only
//! executes schedules whose task groups are independent, which in this
//! workspace means the SYRK-family partition schedules — so the parallel
//! invariance runs on those, not on all eight builders (Cholesky/LU/TRSM
//! schedules carry cross-group dependences and have no parallel mode).

use symla::matrix::generate;
use symla::prelude::*;
use symla_baselines::{
    ooc_chol_schedule, ooc_gemm_schedule, ooc_lu_schedule, ooc_syrk_schedule, ooc_trsm_schedule,
};
use symla_core::parallel::{parallel_syrk_prefetched, parallel_syrk_traced, BlockStrategy};

/// One sweep case: a schedule, the capacity it was planned for and its
/// operands (insertion order = synthetic ids).
struct Case {
    name: &'static str,
    schedule: Schedule<f64>,
    capacity: usize,
    operands: Vec<Operand>,
}

#[derive(Clone, PartialEq)]
enum Operand {
    Dense(Matrix<f64>),
    Sym(SymMatrix<f64>),
}

fn sweep_cases() -> Vec<Case> {
    let (n, m, s) = (36, 6, 60);
    let a = generate::random_matrix_seeded::<f64>(n, m, 920);
    let c0 = generate::random_symmetric::<f64>(n, &mut generate::seeded_rng(921));
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let update_ops = vec![Operand::Dense(a), Operand::Sym(c0)];

    let mut cases = vec![
        Case {
            name: "TBS",
            schedule: tbs_schedule(&a_ref, &c_ref, -1.0, &TbsPlan::for_memory(s).unwrap()).unwrap(),
            capacity: s,
            operands: update_ops.clone(),
        },
        Case {
            name: "TBS(tiled)",
            schedule: tbs_tiled_schedule(
                &a_ref,
                &c_ref,
                1.0,
                &TbsTiledPlan::for_problem(s, n).unwrap(),
            )
            .unwrap(),
            capacity: s,
            operands: update_ops.clone(),
        },
        Case {
            name: "OOC_SYRK",
            schedule: ooc_syrk_schedule(&a_ref, &c_ref, 1.5, &OocSyrkPlan::for_memory(s).unwrap())
                .unwrap(),
            capacity: s,
            operands: update_ops,
        },
    ];

    let (gn, gb, gp, gs) = (20, 6, 10, 40);
    cases.push(Case {
        name: "OOC_GEMM",
        schedule: ooc_gemm_schedule(
            &PanelRef::dense(MatrixId::synthetic(0), gn, gb),
            &PanelRef::dense(MatrixId::synthetic(1), gb, gp),
            &PanelRef::dense(MatrixId::synthetic(2), gn, gp),
            2.0,
            &OocGemmPlan::for_memory(gs).unwrap(),
        )
        .unwrap(),
        capacity: gs,
        operands: vec![
            Operand::Dense(generate::random_matrix_seeded::<f64>(gn, gb, 922)),
            Operand::Dense(generate::random_matrix_seeded::<f64>(gb, gp, 923)),
            Operand::Dense(generate::random_matrix_seeded::<f64>(gn, gp, 924)),
        ],
    });

    let (fn_, fs) = (30, 40);
    let spd = generate::random_spd_seeded::<f64>(fn_, 925);
    let window = SymWindowRef::full(MatrixId::synthetic(0), fn_);
    cases.push(Case {
        name: "OOC_CHOL",
        schedule: ooc_chol_schedule(&window, &OocCholPlan::for_memory(fs).unwrap()),
        capacity: fs,
        operands: vec![Operand::Sym(spd.clone())],
    });
    cases.push(Case {
        name: "LBC",
        schedule: lbc_schedule(&window, &LbcPlan::for_problem(fn_, fs).unwrap()).unwrap(),
        capacity: fs,
        operands: vec![Operand::Sym(spd)],
    });

    let mut lu = generate::random_matrix_seeded::<f64>(18, 18, 926);
    for i in 0..18 {
        lu[(i, i)] += 18.0;
    }
    cases.push(Case {
        name: "OOC_LU",
        schedule: ooc_lu_schedule(
            &PanelRef::dense(MatrixId::synthetic(0), 18, 18),
            &OocLuPlan::for_memory(40).unwrap(),
        )
        .unwrap(),
        capacity: 40,
        operands: vec![Operand::Dense(lu)],
    });

    let (tm, tb, ts) = (12, 10, 40);
    let lfac = generate::random_lower_triangular::<f64>(tb, &mut generate::seeded_rng(927));
    let lsym = SymMatrix::from_lower_fn(tb, |i, j| lfac.get(i, j));
    cases.push(Case {
        name: "OOC_TRSM",
        schedule: ooc_trsm_schedule(
            &SymWindowRef::full(MatrixId::synthetic(0), tb),
            &PanelRef::dense(MatrixId::synthetic(1), tm, tb),
            &OocTrsmPlan::for_memory(ts).unwrap(),
        )
        .unwrap(),
        capacity: ts,
        operands: vec![
            Operand::Sym(lsym),
            Operand::Dense(generate::random_matrix_seeded::<f64>(tm, tb, 928)),
        ],
    });
    cases
}

fn fresh_machine(case: &Case) -> (OocMachine<f64>, Vec<MatrixId>) {
    let mut machine = OocMachine::<f64>::new(MachineConfig::with_capacity(case.capacity));
    let ids = case
        .operands
        .iter()
        .map(|o| match o {
            Operand::Dense(m) => machine.insert_dense(m.clone()),
            Operand::Sym(s) => machine.insert_symmetric(s.clone()),
        })
        .collect();
    (machine, ids)
}

fn take_all(case: &Case, machine: &mut OocMachine<f64>, ids: &[MatrixId]) -> Vec<Operand> {
    ids.iter()
        .zip(&case.operands)
        .map(|(&id, op)| match op {
            Operand::Dense(_) => Operand::Dense(machine.take_dense(id).unwrap()),
            Operand::Sym(_) => Operand::Sym(machine.take_symmetric(id).unwrap()),
        })
        .collect()
}

/// Unobserved replay: final operands and stats.
fn run_plain(case: &Case, lookahead: usize) -> (Vec<Operand>, IoStats) {
    let (mut machine, ids) = fresh_machine(case);
    Engine::execute_with(
        &mut machine,
        &case.schedule,
        &EngineConfig::with_lookahead(lookahead),
    )
    .unwrap();
    let stats = machine.stats().clone();
    (take_all(case, &mut machine, &ids), stats)
}

/// Replay observed by `observer`: final operands, stats and the modelled
/// time the instrumentation accumulated.
fn run_observed<O: ExecutionObserver>(
    case: &Case,
    observer: O,
    model: MachineModel,
    lookahead: usize,
) -> (Vec<Operand>, IoStats, TimeStats) {
    let (inner, ids) = fresh_machine(case);
    let mut machine = InstrumentedMachine::new(inner, model, observer, 0);
    Engine::execute_with(
        &mut machine,
        &case.schedule,
        &EngineConfig::with_lookahead(lookahead),
    )
    .unwrap();
    let time = machine.time();
    let mut inner = machine.into_inner();
    let stats = inner.stats().clone();
    (take_all(case, &mut inner, &ids), stats, time)
}

#[test]
fn observation_changes_nothing_for_every_builder() {
    let model = MachineModel::nvme();
    for case in sweep_cases() {
        for lookahead in [0usize, 1, 2] {
            let ctx = format!("{} L={lookahead}", case.name);
            let (plain_out, plain_stats) = run_plain(&case, lookahead);

            let recorder = TraceRecorder::new();
            let (rec_out, rec_stats, rec_time) =
                run_observed(&case, recorder.clone(), model, lookahead);
            let trace = recorder.finish();
            assert!(rec_out == plain_out, "{ctx}: recorded result drifted");
            assert_eq!(rec_stats, plain_stats, "{ctx}: recorded stats drifted");
            assert!(!trace.is_empty(), "{ctx}: recorder saw no events");

            // The modelled clock the instrumentation keeps is the wall-clock
            // model itself, bitwise.
            let modelled = modelled_time(&case.schedule, &model, lookahead, Some(case.capacity));
            assert_eq!(rec_time.io_ns.to_bits(), modelled.io_ns.to_bits(), "{ctx}");
            assert_eq!(
                rec_time.compute_ns.to_bits(),
                modelled.compute_ns.to_bits(),
                "{ctx}"
            );
            assert_eq!(
                rec_time.hidden_ns.to_bits(),
                modelled.hidden_ns.to_bits(),
                "{ctx}"
            );
            assert_eq!(rec_time.groups, modelled.groups, "{ctx}");

            let (null_out, null_stats, null_time) =
                run_observed(&case, NullObserver, model, lookahead);
            assert!(null_out == plain_out, "{ctx}: disabled result drifted");
            assert_eq!(null_stats, plain_stats, "{ctx}: disabled stats drifted");
            assert_eq!(
                null_time.total_ns(),
                0.0,
                "{ctx}: disabled observer ran the clock"
            );
        }
    }
}

#[test]
fn parallel_observation_changes_nothing() {
    // Deviation from the serial sweep: the parallel engine executes only
    // independent-group schedules, i.e. the SYRK partition schedules — the
    // factorizations have no parallel mode to observe.
    let (n, m, s) = (40, 8, 12);
    let a = generate::random_matrix_seeded::<f64>(n, m, 930);
    let model = MachineModel::nvme();
    for strategy in [BlockStrategy::SquareTiles, BlockStrategy::TriangleBlocks] {
        for lookahead in [0usize, 2] {
            let ctx = format!("{} L={lookahead}", strategy.name());
            let mut plain_c = SymMatrix::zeros(n);
            let plain =
                parallel_syrk_prefetched(&a, &mut plain_c, 1.0, 3, s, strategy, lookahead).unwrap();

            let recorder = TraceRecorder::new();
            let mut traced_c = SymMatrix::zeros(n);
            let traced = parallel_syrk_traced(
                &a,
                &mut traced_c,
                1.0,
                3,
                s,
                strategy,
                lookahead,
                &model,
                &recorder,
            )
            .unwrap();
            let trace = recorder.finish();

            assert!(traced_c == plain_c, "{ctx}: traced result drifted");
            // Which worker got which group is dynamic, but the volumes are
            // placement-independent.
            assert_eq!(traced.total_loads(), plain.total_loads(), "{ctx}");
            assert_eq!(traced.total_stores(), plain.total_stores(), "{ctx}");
            assert!(!trace.is_empty(), "{ctx}: no events recorded");
            // Every claimed group opened and closed its span.
            let claims = trace.count(|k| matches!(k, EventKind::Claim { .. }));
            let starts = trace.count(|k| matches!(k, EventKind::GroupStart { .. }));
            let ends = trace.count(|k| matches!(k, EventKind::GroupEnd { .. }));
            assert_eq!(claims, starts, "{ctx}");
            assert_eq!(starts, ends, "{ctx}");
        }
    }
}
