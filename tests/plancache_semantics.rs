//! End-to-end semantics of the plan cache and serve layer, exercised
//! through the public facade: hits execute bitwise-identically to the
//! direct API, single-flight compiles once under concurrent misses, the
//! LRU respects its byte budget, and the disk tier survives dropping the
//! in-memory cache.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use symla::prelude::*;
use symla_core::parallel::BlockStrategy;
use symla_core::service::PlanService;
use symla_plancache::PlanSource;

/// A served run is bitwise-identical to the direct API — across cold
/// (compile), warm (memory hit) and disk-revived plans — and the hit path
/// does zero planner work, asserted via [`CacheStats`].
#[test]
fn hits_execute_bitwise_identically_with_zero_planner_work() {
    let (n, m, s) = (40usize, 8usize, 60usize);
    let a = symla::matrix::generate::random_matrix_seeded::<f64>(n, m, 71);
    let tmp = tempdir("bitwise");
    let service = PlanService::<f64>::new(PlanCacheConfig::default().with_disk_dir(&tmp)).unwrap();

    let mut direct = SymMatrix::zeros(n);
    let run = syrk_out_of_core_prefetched(
        &a,
        &mut direct,
        2.0,
        s,
        SyrkAlgorithm::TbsTiled,
        &PassPipeline::standard(),
        1,
    )
    .unwrap();

    for (round, want) in [
        (0, PlanSource::Compiled),
        (1, PlanSource::Memory),
        (2, PlanSource::Memory),
    ] {
        let mut served = SymMatrix::zeros(n);
        let serve = syrk_out_of_core_cached(
            &service,
            &a,
            &mut served,
            2.0,
            s,
            SyrkAlgorithm::TbsTiled,
            &PassPipeline::standard(),
            1,
        )
        .unwrap();
        assert_eq!(serve.source, want, "round {round}");
        assert!(served == direct, "round {round}: bitwise identity");
        assert_eq!(serve.stats.volume, run.report.stats.volume, "round {round}");
        assert_eq!(
            serve.stats.prefetched_elements, run.report.stats.prefetched_elements,
            "round {round}: the cached prefetch plan replays identically"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.compiles, 1, "hit path compiled: {stats}");
    assert_eq!(stats.hits, 2, "{stats}");
    assert_eq!(stats.misses, 1, "{stats}");

    // A fresh service on the same directory revives the plan from disk —
    // still no compile, still bitwise-identical.
    let revived = PlanService::<f64>::new(PlanCacheConfig::default().with_disk_dir(&tmp)).unwrap();
    let mut served = SymMatrix::zeros(n);
    let serve = revived
        .syrk(
            &a,
            &mut served,
            2.0,
            s,
            SyrkAlgorithm::TbsTiled,
            &PassPipeline::standard(),
            1,
        )
        .unwrap();
    assert_eq!(serve.source, PlanSource::Disk);
    assert!(served == direct, "disk-revived plan: bitwise identity");
    assert_eq!(revived.stats().compiles, 0, "disk hit must not compile");

    std::fs::remove_dir_all(&tmp).ok();
}

/// Eight threads missing the same key concurrently trigger exactly one
/// compile; every thread still gets a working plan and identical results.
#[test]
fn single_flight_compiles_once_under_concurrent_misses() {
    let (n, s) = (36usize, 48usize);
    let a = symla::matrix::generate::random_spd_seeded::<f64>(n, 72);
    let (reference, _) = cholesky_out_of_core(&a, s, CholeskyAlgorithm::Lbc).unwrap();

    let service: Arc<PlanService<f64>> = Arc::new(PlanService::in_memory());
    let threads = 8usize;
    let barrier = Arc::new(Barrier::new(threads));
    let compiled_seen = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            let compiled_seen = Arc::clone(&compiled_seen);
            let a = &a;
            let reference = &reference;
            scope.spawn(move || {
                barrier.wait();
                let (factor, run) = service
                    .cholesky(a, s, CholeskyAlgorithm::Lbc, &PassPipeline::standard(), 1)
                    .unwrap();
                assert!(&factor == reference, "served factor diverged");
                if run.source == PlanSource::Compiled {
                    compiled_seen.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    let stats = service.stats();
    assert_eq!(stats.compiles, 1, "single flight broke: {stats}");
    assert_eq!(compiled_seen.load(Ordering::Relaxed), 1);
    assert_eq!(stats.requests, threads as u64, "{stats}");
    assert_eq!(
        stats.hits + stats.misses,
        threads as u64,
        "waiters resolve as coalesced misses or later hits: {stats}"
    );
}

/// The in-memory tier evicts least-recently-used plans to stay within its
/// byte budget; evicted keys recompile, resident keys still hit.
#[test]
fn lru_respects_byte_budget_end_to_end() {
    let plan_size = {
        let probe = PlanService::<f64>::in_memory();
        let lookup = probe
            .syrk_plan(30, 5, 1.0, 40, SyrkAlgorithm::Tbs, &PassPipeline::none(), 0)
            .unwrap();
        lookup.plan.byte_len()
    };

    // Budget for about two plans of this shape family, single shard so the
    // accounting is exact.
    let service = PlanService::<f64>::new(
        PlanCacheConfig::default()
            .with_shards(1)
            .with_memory_budget(plan_size * 5 / 2),
    )
    .unwrap();

    // Three distinct keys (alpha varies) of similar size: the first must be
    // evicted by the third.
    for alpha in [1.0f64, 2.0, 3.0] {
        service
            .syrk_plan(
                30,
                5,
                alpha,
                40,
                SyrkAlgorithm::Tbs,
                &PassPipeline::none(),
                0,
            )
            .unwrap();
    }
    let stats = service.stats();
    assert!(stats.evictions >= 1, "no eviction under pressure: {stats}");
    assert!(
        stats.bytes_in_memory <= (plan_size * 5 / 2) as u64,
        "budget exceeded: {stats}"
    );

    // The newest key is still a hit; the oldest recompiles.
    let newest = service
        .syrk_plan(30, 5, 3.0, 40, SyrkAlgorithm::Tbs, &PassPipeline::none(), 0)
        .unwrap();
    assert_eq!(newest.source, PlanSource::Memory);
    let oldest = service
        .syrk_plan(30, 5, 1.0, 40, SyrkAlgorithm::Tbs, &PassPipeline::none(), 0)
        .unwrap();
    assert_eq!(oldest.source, PlanSource::Compiled);
}

/// The on-disk tier is a real second tier: plans written by one cache are
/// readable by a brand-new cache (fresh process semantics), and a GEMM
/// served from the revived plan matches the direct API bitwise.
#[test]
fn disk_tier_survives_cache_drop_across_kernels() {
    let (n, m, p, s) = (18usize, 7usize, 13usize, 30usize);
    let a = symla::matrix::generate::random_matrix_seeded::<f64>(n, m, 73);
    let b = symla::matrix::generate::random_matrix_seeded::<f64>(m, p, 74);
    let c0 = symla::matrix::generate::random_matrix_seeded::<f64>(n, p, 75);
    let tmp = tempdir("disk-tier");

    let mut reference = c0.clone();
    gemm_out_of_core_prefetched(&a, &b, &mut reference, 1.0, s, &PassPipeline::standard(), 2)
        .unwrap();

    {
        let service =
            PlanService::<f64>::new(PlanCacheConfig::default().with_disk_dir(&tmp)).unwrap();
        let mut c = c0.clone();
        let run = gemm_out_of_core_cached(
            &service,
            &a,
            &b,
            &mut c,
            1.0,
            s,
            &PassPipeline::standard(),
            2,
        )
        .unwrap();
        assert_eq!(run.source, PlanSource::Compiled);
        assert_eq!(service.stats().disk_writes, 1, "{}", service.stats());
    } // service (and its memory tier) dropped here

    let revived = PlanService::<f64>::new(PlanCacheConfig::default().with_disk_dir(&tmp)).unwrap();
    let mut c = c0.clone();
    let run = gemm_out_of_core_cached(
        &revived,
        &a,
        &b,
        &mut c,
        1.0,
        s,
        &PassPipeline::standard(),
        2,
    )
    .unwrap();
    assert_eq!(run.source, PlanSource::Disk);
    assert!(c == reference, "disk-revived GEMM plan: bitwise identity");
    // Once promoted, the next lookup is a memory hit.
    let mut c = c0.clone();
    let run = gemm_out_of_core_cached(
        &revived,
        &a,
        &b,
        &mut c,
        1.0,
        s,
        &PassPipeline::standard(),
        2,
    )
    .unwrap();
    assert_eq!(run.source, PlanSource::Memory);
    assert_eq!(revived.stats().compiles, 0);

    std::fs::remove_dir_all(&tmp).ok();
}

/// One cached parallel partition schedule replays across worker counts with
/// results identical to the direct parallel API.
#[test]
fn cached_parallel_partition_replays_across_worker_counts() {
    let (n, m, s) = (48usize, 6usize, 10usize);
    let a = symla::matrix::generate::random_matrix_seeded::<f64>(n, m, 76);
    let service = PlanService::<f64>::in_memory();

    let mut reference = SymMatrix::zeros(n);
    symla_core::parallel::parallel_syrk(&a, &mut reference, 1.0, 2, s, BlockStrategy::SquareTiles)
        .unwrap();

    for (workers, want) in [(2usize, PlanSource::Compiled), (4, PlanSource::Memory)] {
        let mut c = SymMatrix::zeros(n);
        let run = service
            .syrk_parallel(&a, &mut c, 1.0, workers, s, BlockStrategy::SquareTiles, 1)
            .unwrap();
        assert_eq!(run.source, want, "P={workers}");
        assert!(c == reference, "P={workers}: bitwise identity");
        assert_eq!(run.report.workers, workers);
    }
    assert_eq!(service.stats().compiles, 1);
}

/// A unique scratch directory under the target-adjacent temp dir.
fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("symla-plancache-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}
