//! Quantitative claims of the paper, checked end to end against the analytic
//! cost models (which the unit tests verify to match executed schedules
//! exactly).

use symla::prelude::*;
use symla_core::bounds;

const SQRT2: f64 = std::f64::consts::SQRT_2;

/// Abstract of the paper: both lower bounds improve the literature by √2, and
/// both new algorithms improve the best known algorithms by √2.
#[test]
fn sqrt2_improvements_of_bounds_and_algorithms() {
    let (n, m, s) = (1.0e5_f64, 4.0e4_f64, 1.0e4_f64);
    assert!(
        (bounds::syrk_lower_bound(n, m, s) / bounds::syrk_lower_bound_prior(n, m, s) - SQRT2).abs()
            < 1e-12
    );
    assert!(
        (bounds::cholesky_lower_bound(n, s) / bounds::cholesky_lower_bound_prior(n, s) - SQRT2)
            .abs()
            < 1e-12
    );
    assert!(
        (bounds::syrk_upper_bereux(n, m, s) / (bounds::tbs_upper_bound(n, m, s) - n * n / 2.0)
            - SQRT2)
            .abs()
            < 1e-9
    );
    assert!(
        (bounds::cholesky_upper_bereux(n, s) / bounds::lbc_upper_bound(n, s) - SQRT2).abs() < 1e-9
    );
    // upper bound matches lower bound at leading order: optimality
    assert_eq!(
        bounds::lbc_upper_bound(n, s),
        bounds::cholesky_lower_bound(n, s)
    );
    assert!(
        ((bounds::tbs_upper_bound(n, m, s) - n * n / 2.0) / bounds::syrk_lower_bound(n, m, s)
            - 1.0)
            .abs()
            < 1e-12
    );
}

/// Theorem 5.6: the measured (analytic) TBS constant converges to 1/√2 from
/// above as N grows, while the square-block baseline stays at 1.
#[test]
fn tbs_constant_converges_to_inverse_sqrt2() {
    let s = 5050; // k = 100
    let plan = TbsPlan::for_memory(s).unwrap();
    let m = 2000;
    for &n in &[30_000_usize, 60_000, 120_000] {
        assert!(plan.applicable(n));
        let est = symla_core::tbs_cost(n, m, &plan).unwrap();
        // subtract the N^2/2 loads of C to isolate the A traffic
        let constant = (est.loads as f64 - (n as f64) * (n as f64) / 2.0)
            / ((n as f64).powi(2) * m as f64 / (s as f64).sqrt());
        // (the constant is not exactly monotone in N because the coprime grid
        // size c and the leftover strip vary with N, but it stays pinned in a
        // narrow band just above 1/sqrt(2))
        assert!(
            constant >= 1.0 / SQRT2 - 1e-9,
            "n={n}: constant {constant} below optimal"
        );
        assert!(
            constant < 0.78,
            "n={n}: constant {constant} too far from 1/sqrt(2)"
        );
    }
    // square-block baseline constant is ~1
    let sq = OocSyrkPlan::for_memory(s).unwrap();
    let est = symla_baselines::ooc_syrk_cost(60_000, m, &sq);
    let constant = (est.loads as f64 - 60_000.0_f64.powi(2) / 2.0)
        / (60_000.0_f64.powi(2) * m as f64 / (s as f64).sqrt());
    assert!(
        (constant - 1.0).abs() < 0.05,
        "baseline constant {constant}"
    );
}

/// Theorem 5.7: the LBC constant approaches 1/(3√2) ≈ 0.2357, clearly below
/// Béreux's 1/3, once the trailing TBS engages for most iterations.
#[test]
fn lbc_constant_approaches_optimal() {
    let s = 105; // k = 14
    let n = 20_000;
    let plan = LbcPlan::for_problem(n, s).unwrap();
    let est = symla_core::lbc_cost(n, &plan).unwrap();
    let constant = est.loads as f64 / ((n as f64).powi(3) / (s as f64).sqrt());
    let optimal = 1.0 / (3.0 * SQRT2);
    assert!(constant >= optimal - 1e-9, "constant {constant}");
    assert!(
        constant < 0.30,
        "constant {constant} should be well below Béreux's 1/3"
    );

    let bereux = symla_baselines::ooc_chol_cost(n, &OocCholPlan::for_memory(s).unwrap());
    let bereux_constant = bereux.loads as f64 / ((n as f64).powi(3) / (s as f64).sqrt());
    assert!(
        constant < bereux_constant,
        "LBC {constant} must beat Béreux {bereux_constant}"
    );
}

/// Kwasniewski et al.'s 1/3 constant is *not* a lower bound once symmetry is
/// exploited: LBC's measured traffic drops below it (the "surprising result"
/// of the introduction).
#[test]
fn lbc_beats_the_no_symmetry_bound() {
    let s = 105;
    let n = 20_000;
    let plan = LbcPlan::for_problem(n, s).unwrap();
    let est = symla_core::lbc_cost(n, &plan).unwrap();
    let no_symmetry = bounds::cholesky_lower_bound_no_symmetry(n as f64, s as f64);
    assert!(
        (est.loads as f64) < no_symmetry,
        "LBC loads {} should be below the no-symmetry bound {no_symmetry}",
        est.loads
    );
    // ... while of course staying above the correct bound.
    assert!(est.loads as f64 >= bounds::cholesky_lower_bound(n as f64, s as f64));
}

/// Section 5.1.4: the tiled variant costs a factor √(k/(k−1)) more than the
/// element-level schedule but engages at much smaller N.
#[test]
fn tiled_tradeoff() {
    let s = 4656; // k = 96 for the element version
    let element = TbsPlan::for_memory(s).unwrap();
    let tiled = TbsTiledPlan::for_problem(s, 4000).unwrap();
    // tiled engages at n = 4000, element-level does not
    assert!(tiled.applicable(4000));
    assert!(!element.applicable(4000));
    // element-level needs N >= ~2S
    assert!(element.min_applicable_n() >= 2 * s - 2 * element.k);
}

/// The operational-intensity table: the symmetric kernels' maximal intensity
/// exceeds GEMM / LU by exactly √2.
#[test]
fn operational_intensity_table() {
    let table = symla_core::oi::oi_table(100_000, 16_384);
    assert_eq!(table.len(), 4);
    let adv = symla_core::oi::symmetric_advantage(&table);
    assert!((adv - SQRT2).abs() < 1e-9, "advantage {adv}");
}

/// Theorem 4.1 via the exact integer search: no balanced subcomputation under
/// a data budget X exceeds √2/(3√3)·X^{3/2}, and the best ones approach it.
#[test]
fn max_subcomputation_bound_is_tight() {
    use symla::sched::opt::{best_integer_balanced, max_subcomputation_bound};
    let mut best_ratio: f64 = 0.0;
    for &x in &[300_usize, 3_000, 30_000, 300_000] {
        let cand = best_integer_balanced(x, None, None);
        let bound = max_subcomputation_bound(x as f64);
        let ratio = cand.operations as f64 / bound;
        assert!(ratio <= 1.0 + 1e-12, "x={x}");
        best_ratio = best_ratio.max(ratio);
    }
    assert!(
        best_ratio > 0.97,
        "best ratio {best_ratio} should approach 1"
    );
}

/// The explicit-control model beats an LRU cache fed with the naive loop
/// order, and blocked access orders beat naive ones even under LRU
/// (the E11 ablation, small instance).
#[test]
fn cache_ablation_small_instance() {
    use symla::memory::cache::{
        simulate_lru, simulate_opt, syrk_blocked_access_stream, syrk_naive_access_stream,
    };
    let (n, m, s) = (48_usize, 24_usize, 64_usize);
    let naive = simulate_lru(syrk_naive_access_stream(n, m), s);
    let blocked_stream = syrk_blocked_access_stream(n, m, 6);
    let blocked = simulate_lru(blocked_stream.clone(), s);
    let opt = simulate_opt(&blocked_stream, s);
    assert!(blocked.misses < naive.misses);
    assert!(opt.misses <= blocked.misses);

    // The explicit TBS schedule (counted loads) moves less data than even the
    // LRU-cached blocked stream.
    let plan = TbsPlan::for_memory(s).unwrap();
    let est = symla_core::tbs_cost(n, m, &plan).unwrap();
    assert!(
        (est.loads as u64) < blocked.misses,
        "explicit schedule {} vs LRU blocked {}",
        est.loads,
        blocked.misses
    );
}
