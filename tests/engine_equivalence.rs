//! Engine-mode equivalence: for every one of the eight schedule builders,
//! the three engine modes and the analytic cost models must agree.
//!
//! For seeded pseudo-random instances of each algorithm this asserts:
//!
//! 1. **dry-run = analytic cost** — `Engine::dry_run` of the built schedule
//!    reports exactly the loads/stores/flops of the `*_cost` model;
//! 2. **execute = dry-run** — executing the same schedule on a machine
//!    leaves machine counters identical to the dry run (including events,
//!    peak residency and per-phase attribution);
//! 3. **trace = machine trace** — the synthesized trace equals the trace a
//!    recording machine captures during execution;
//! 4. **execute is correct** — the numerical result matches the in-memory
//!    reference kernels.

use symla::matrix::generate::{self, SeededRng};
use symla::prelude::*;
use symla_baselines::{
    ooc_chol_cost, ooc_chol_schedule, ooc_gemm_cost, ooc_gemm_schedule, ooc_lu_cost,
    ooc_lu_schedule, ooc_syrk_cost, ooc_syrk_schedule, ooc_trsm_cost, ooc_trsm_schedule,
};
use symla_core::engine::{Engine, Schedule};
use symla_core::{lbc_schedule, tbs_schedule, tbs_tiled_schedule};
use symla_memory::MachineConfig;

/// Runs a schedule on a trace-recording machine and checks modes 2 and 3.
fn check_execute_matches_dry_run<F>(
    schedule: &Schedule<f64>,
    setup: F,
    ctx: &str,
) -> OocMachine<f64>
where
    F: FnOnce(&mut OocMachine<f64>),
{
    let mut machine = OocMachine::new(MachineConfig::unlimited().record_trace(true));
    setup(&mut machine);
    Engine::execute(&mut machine, schedule).unwrap();
    let dry = Engine::dry_run(schedule, "main");
    assert_eq!(machine.stats(), &dry, "{ctx}: execute vs dry-run stats");
    let synthesized = Engine::trace(schedule, "main");
    assert_eq!(
        machine.trace().unwrap(),
        &synthesized,
        "{ctx}: machine trace vs synthesized trace"
    );
    machine
}

#[test]
fn syrk_schedules_dry_run_matches_analytic_costs() {
    let mut rng = SeededRng::seed_from_u64(0x5EED);
    for case in 0..12 {
        let n = rng.gen_range(4usize..52);
        let m = rng.gen_range(1usize..20);
        let s = rng.gen_range(10usize..130);
        let ctx = format!("case {case}: n={n} m={m} s={s}");

        let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
        let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);

        let sq_plan = OocSyrkPlan::for_memory(s).unwrap();
        let schedule = ooc_syrk_schedule::<f64>(&a_ref, &c_ref, 1.0, &sq_plan).unwrap();
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(dry, ooc_syrk_cost(n, m, &sq_plan), "{ctx}: OOC_SYRK");

        let tbs_plan = TbsPlan::for_memory(s).unwrap();
        let schedule = tbs_schedule::<f64>(&a_ref, &c_ref, 1.0, &tbs_plan).unwrap();
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(dry, tbs_cost(n, m, &tbs_plan).unwrap(), "{ctx}: TBS");

        let tiled_plan = TbsTiledPlan::for_problem(s, n).unwrap();
        let schedule = tbs_tiled_schedule::<f64>(&a_ref, &c_ref, 1.0, &tiled_plan).unwrap();
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(
            dry,
            tbs_tiled_cost(n, m, &tiled_plan).unwrap(),
            "{ctx}: TBS(tiled)"
        );
    }
}

#[test]
fn factorization_schedules_dry_run_matches_analytic_costs() {
    let mut rng = SeededRng::seed_from_u64(0xFAC);
    for case in 0..12 {
        let n = rng.gen_range(4usize..44);
        let s = rng.gen_range(12usize..110);
        let ctx = format!("case {case}: n={n} s={s}");

        let window = SymWindowRef::full(MatrixId::synthetic(0), n);
        let chol_plan = OocCholPlan::for_memory(s).unwrap();
        let schedule = ooc_chol_schedule::<f64>(&window, &chol_plan);
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(dry, ooc_chol_cost(n, &chol_plan), "{ctx}: OOC_CHOL");

        let lbc_plan = LbcPlan::for_problem(n, s).unwrap();
        let schedule = lbc_schedule::<f64>(&window, &lbc_plan).unwrap();
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(dry, lbc_cost(n, &lbc_plan).unwrap(), "{ctx}: LBC");

        let square = PanelRef::dense(MatrixId::synthetic(0), n, n);
        let lu_plan = OocLuPlan::for_memory(s).unwrap();
        let schedule = ooc_lu_schedule::<f64>(&square, &lu_plan).unwrap();
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(dry, ooc_lu_cost(n, &lu_plan), "{ctx}: OOC_LU");

        let b = rng.gen_range(2usize..18);
        let mrows = rng.gen_range(1usize..30);
        let l_ref = SymWindowRef::full(MatrixId::synthetic(0), b);
        let x_ref = PanelRef::dense(MatrixId::synthetic(1), mrows, b);
        let trsm_plan = OocTrsmPlan::for_memory(s).unwrap();
        let schedule = ooc_trsm_schedule::<f64>(&l_ref, &x_ref, &trsm_plan).unwrap();
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(dry, ooc_trsm_cost(mrows, b, &trsm_plan), "{ctx}: OOC_TRSM");

        let p = rng.gen_range(1usize..24);
        let ga = PanelRef::dense(MatrixId::synthetic(0), n, b);
        let gb = PanelRef::dense(MatrixId::synthetic(1), b, p);
        let gc = PanelRef::dense(MatrixId::synthetic(2), n, p);
        let gemm_plan = OocGemmPlan::for_memory(s).unwrap();
        let schedule = ooc_gemm_schedule::<f64>(&ga, &gb, &gc, 1.0, &gemm_plan).unwrap();
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(dry, ooc_gemm_cost(n, b, p, &gemm_plan), "{ctx}: OOC_GEMM");
    }
}

#[test]
fn lbc_phase_attribution_survives_dry_run() {
    let mut rng = SeededRng::seed_from_u64(0x9A5E);
    for case in 0..6 {
        let n = rng.gen_range(12usize..48);
        let s = rng.gen_range(10usize..64);
        let plan = LbcPlan::for_problem(n, s).unwrap();
        let window = SymWindowRef::full(MatrixId::synthetic(0), n);
        let schedule = lbc_schedule::<f64>(&window, &plan).unwrap();
        let dry = Engine::dry_run(&schedule, "main");
        let breakdown = lbc_cost_breakdown(n, &plan).unwrap();
        let ctx = format!("case {case}: n={n} s={s}");
        assert_eq!(
            breakdown.chol.loads,
            dry.phase(symla_core::lbc::PHASE_CHOL).loads as u128,
            "{ctx}: chol phase"
        );
        assert_eq!(
            breakdown.trsm.loads,
            dry.phase(symla_core::lbc::PHASE_TRSM).loads as u128,
            "{ctx}: trsm phase"
        );
        assert_eq!(
            breakdown.trailing.loads,
            dry.phase(symla_core::lbc::PHASE_TRAILING).loads as u128,
            "{ctx}: trailing phase"
        );
    }
}

#[test]
fn syrk_execute_equals_dry_run_trace_and_reference() {
    let mut rng = SeededRng::seed_from_u64(0xE0E);
    for case in 0..8 {
        let n = rng.gen_range(6usize..44);
        let m = rng.gen_range(1usize..16);
        let s = rng.gen_range(10usize..90);
        let seed = rng.gen_range(0usize..400) as u64;
        let ctx = format!("case {case}: n={n} m={m} s={s} seed={seed}");

        let a = generate::random_matrix_seeded::<f64>(n, m, seed);
        let c0 = generate::random_symmetric::<f64>(n, &mut generate::seeded_rng(seed + 1));
        let mut expected = c0.clone();
        kernels::syrk_sym(-1.0, &a, 1.0, &mut expected).unwrap();

        // Build the schedule against the ids the machine will hand out
        // (0 for the dense panel, 1 for the symmetric result).
        let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
        let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
        let plan = TbsPlan::for_memory(s).unwrap();
        let schedule = tbs_schedule::<f64>(&a_ref, &c_ref, -1.0, &plan).unwrap();

        let (a_clone, c_clone) = (a.clone(), c0.clone());
        let mut machine = check_execute_matches_dry_run(
            &schedule,
            move |machine| {
                machine.insert_dense(a_clone);
                machine.insert_symmetric(c_clone);
            },
            &ctx,
        );
        let got = machine.take_symmetric(MatrixId::synthetic(1)).unwrap();
        assert!(got.approx_eq(&expected, 1e-9), "{ctx}: result");
    }
}

#[test]
fn lbc_execute_equals_dry_run_trace_and_reference() {
    let mut rng = SeededRng::seed_from_u64(0xD1CE);
    for case in 0..6 {
        let n = rng.gen_range(8usize..40);
        let s = rng.gen_range(12usize..80);
        let seed = rng.gen_range(0usize..400) as u64;
        let ctx = format!("case {case}: n={n} s={s} seed={seed}");

        let a = generate::random_spd_seeded::<f64>(n, seed);
        let plan = LbcPlan::for_problem(n, s).unwrap();
        let window = SymWindowRef::full(MatrixId::synthetic(0), n);
        let schedule = lbc_schedule::<f64>(&window, &plan).unwrap();

        let a_clone = a.clone();
        let mut machine = check_execute_matches_dry_run(
            &schedule,
            move |machine| {
                machine.insert_symmetric(a_clone);
            },
            &ctx,
        );
        let got = machine.take_symmetric(MatrixId::synthetic(0)).unwrap();
        let l = LowerTriangular::from_lower_fn(n, |i, j| got.get(i, j));
        assert!(kernels::cholesky_residual(&a, &l) < 1e-8, "{ctx}: residual");
    }
}

#[test]
fn schedules_expose_their_structure() {
    // A TBS schedule at an engaged size has one task group per triangle
    // block / square tile, and the group volumes sum to the cost model.
    let (n, m, s) = (30, 6, 10);
    let plan = TbsPlan::for_memory(s).unwrap();
    assert!(plan.applicable(n));
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let schedule = tbs_schedule::<f64>(&a_ref, &c_ref, 1.0, &plan).unwrap();
    assert!(schedule.num_groups() > 1, "expected one group per block");

    let est = tbs_cost(n, m, &plan).unwrap();
    let loaded: u64 = schedule.groups.iter().map(|g| g.loaded_elements()).sum();
    let stored: u64 = schedule.groups.iter().map(|g| g.stored_elements()).sum();
    assert_eq!(loaded as u128, est.loads);
    assert_eq!(stored as u128, est.stores);
}
