//! Engine-mode equivalence: for every one of the eight schedule builders,
//! the four engine modes and the analytic cost models must agree.
//!
//! For seeded pseudo-random instances of each algorithm this asserts:
//!
//! 1. **dry-run = analytic cost** — `Engine::dry_run` of the built schedule
//!    reports exactly the loads/stores/flops of the `*_cost` model;
//! 2. **execute = dry-run** — executing the same schedule on a machine
//!    leaves machine counters identical to the dry run (including events,
//!    peak residency and per-phase attribution);
//! 3. **trace = machine trace** — the synthesized trace equals the trace a
//!    recording machine captures during execution;
//! 4. **execute is correct** — the numerical result matches the in-memory
//!    reference kernels;
//! 5. **execute-parallel = execute** — for every schedule with independent
//!    task groups and P ∈ {1, 2, 4, 8}: the summed per-worker stats equal
//!    the serial dry run, each worker's stats equal the dry-run of exactly
//!    the groups it processed (the analytic per-worker model), and the
//!    computed matrices are bitwise-equal to the serial execution's.

use symla::matrix::generate::{self, SeededRng};
use symla::prelude::*;
use symla_baselines::{
    ooc_chol_cost, ooc_chol_schedule, ooc_gemm_cost, ooc_gemm_schedule, ooc_lu_cost,
    ooc_lu_schedule, ooc_syrk_cost, ooc_syrk_schedule, ooc_trsm_cost, ooc_trsm_schedule,
};
use symla_core::engine::{Engine, Schedule, WorkerRun};
use symla_core::parallel::{analytic_worker_io, partition_schedule, BlockStrategy, WorkerIo};
use symla_core::{lbc_schedule, tbs_schedule, tbs_tiled_schedule};
use symla_memory::{MachineConfig, SharedSlowMemory};

/// Runs a schedule on a trace-recording machine and checks modes 2 and 3.
fn check_execute_matches_dry_run<F>(
    schedule: &Schedule<f64>,
    setup: F,
    ctx: &str,
) -> OocMachine<f64>
where
    F: FnOnce(&mut OocMachine<f64>),
{
    let mut machine = OocMachine::new(MachineConfig::unlimited().record_trace(true));
    setup(&mut machine);
    Engine::execute(&mut machine, schedule).unwrap();
    let dry = Engine::dry_run(schedule, "main");
    assert_eq!(machine.stats(), &dry, "{ctx}: execute vs dry-run stats");
    let synthesized = Engine::trace(schedule, "main");
    assert_eq!(
        machine.trace().unwrap(),
        &synthesized,
        "{ctx}: machine trace vs synthesized trace"
    );
    machine
}

#[test]
fn syrk_schedules_dry_run_matches_analytic_costs() {
    let mut rng = SeededRng::seed_from_u64(0x5EED);
    for case in 0..12 {
        let n = rng.gen_range(4usize..52);
        let m = rng.gen_range(1usize..20);
        let s = rng.gen_range(10usize..130);
        let ctx = format!("case {case}: n={n} m={m} s={s}");

        let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
        let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);

        let sq_plan = OocSyrkPlan::for_memory(s).unwrap();
        let schedule = ooc_syrk_schedule::<f64>(&a_ref, &c_ref, 1.0, &sq_plan).unwrap();
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(dry, ooc_syrk_cost(n, m, &sq_plan), "{ctx}: OOC_SYRK");

        let tbs_plan = TbsPlan::for_memory(s).unwrap();
        let schedule = tbs_schedule::<f64>(&a_ref, &c_ref, 1.0, &tbs_plan).unwrap();
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(dry, tbs_cost(n, m, &tbs_plan).unwrap(), "{ctx}: TBS");

        let tiled_plan = TbsTiledPlan::for_problem(s, n).unwrap();
        let schedule = tbs_tiled_schedule::<f64>(&a_ref, &c_ref, 1.0, &tiled_plan).unwrap();
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(
            dry,
            tbs_tiled_cost(n, m, &tiled_plan).unwrap(),
            "{ctx}: TBS(tiled)"
        );
    }
}

#[test]
fn factorization_schedules_dry_run_matches_analytic_costs() {
    let mut rng = SeededRng::seed_from_u64(0xFAC);
    for case in 0..12 {
        let n = rng.gen_range(4usize..44);
        let s = rng.gen_range(12usize..110);
        let ctx = format!("case {case}: n={n} s={s}");

        let window = SymWindowRef::full(MatrixId::synthetic(0), n);
        let chol_plan = OocCholPlan::for_memory(s).unwrap();
        let schedule = ooc_chol_schedule::<f64>(&window, &chol_plan);
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(dry, ooc_chol_cost(n, &chol_plan), "{ctx}: OOC_CHOL");

        let lbc_plan = LbcPlan::for_problem(n, s).unwrap();
        let schedule = lbc_schedule::<f64>(&window, &lbc_plan).unwrap();
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(dry, lbc_cost(n, &lbc_plan).unwrap(), "{ctx}: LBC");

        let square = PanelRef::dense(MatrixId::synthetic(0), n, n);
        let lu_plan = OocLuPlan::for_memory(s).unwrap();
        let schedule = ooc_lu_schedule::<f64>(&square, &lu_plan).unwrap();
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(dry, ooc_lu_cost(n, &lu_plan), "{ctx}: OOC_LU");

        let b = rng.gen_range(2usize..18);
        let mrows = rng.gen_range(1usize..30);
        let l_ref = SymWindowRef::full(MatrixId::synthetic(0), b);
        let x_ref = PanelRef::dense(MatrixId::synthetic(1), mrows, b);
        let trsm_plan = OocTrsmPlan::for_memory(s).unwrap();
        let schedule = ooc_trsm_schedule::<f64>(&l_ref, &x_ref, &trsm_plan).unwrap();
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(dry, ooc_trsm_cost(mrows, b, &trsm_plan), "{ctx}: OOC_TRSM");

        let p = rng.gen_range(1usize..24);
        let ga = PanelRef::dense(MatrixId::synthetic(0), n, b);
        let gb = PanelRef::dense(MatrixId::synthetic(1), b, p);
        let gc = PanelRef::dense(MatrixId::synthetic(2), n, p);
        let gemm_plan = OocGemmPlan::for_memory(s).unwrap();
        let schedule = ooc_gemm_schedule::<f64>(&ga, &gb, &gc, 1.0, &gemm_plan).unwrap();
        let dry = IoEstimate::from_stats(&Engine::dry_run(&schedule, "main"));
        assert_eq!(dry, ooc_gemm_cost(n, b, p, &gemm_plan), "{ctx}: OOC_GEMM");
    }
}

#[test]
fn lbc_phase_attribution_survives_dry_run() {
    let mut rng = SeededRng::seed_from_u64(0x9A5E);
    for case in 0..6 {
        let n = rng.gen_range(12usize..48);
        let s = rng.gen_range(10usize..64);
        let plan = LbcPlan::for_problem(n, s).unwrap();
        let window = SymWindowRef::full(MatrixId::synthetic(0), n);
        let schedule = lbc_schedule::<f64>(&window, &plan).unwrap();
        let dry = Engine::dry_run(&schedule, "main");
        let breakdown = lbc_cost_breakdown(n, &plan).unwrap();
        let ctx = format!("case {case}: n={n} s={s}");
        assert_eq!(
            breakdown.chol.loads,
            dry.phase(symla_core::lbc::PHASE_CHOL).loads as u128,
            "{ctx}: chol phase"
        );
        assert_eq!(
            breakdown.trsm.loads,
            dry.phase(symla_core::lbc::PHASE_TRSM).loads as u128,
            "{ctx}: trsm phase"
        );
        assert_eq!(
            breakdown.trailing.loads,
            dry.phase(symla_core::lbc::PHASE_TRAILING).loads as u128,
            "{ctx}: trailing phase"
        );
    }
}

#[test]
fn syrk_execute_equals_dry_run_trace_and_reference() {
    let mut rng = SeededRng::seed_from_u64(0xE0E);
    for case in 0..8 {
        let n = rng.gen_range(6usize..44);
        let m = rng.gen_range(1usize..16);
        let s = rng.gen_range(10usize..90);
        let seed = rng.gen_range(0usize..400) as u64;
        let ctx = format!("case {case}: n={n} m={m} s={s} seed={seed}");

        let a = generate::random_matrix_seeded::<f64>(n, m, seed);
        let c0 = generate::random_symmetric::<f64>(n, &mut generate::seeded_rng(seed + 1));
        let mut expected = c0.clone();
        kernels::syrk_sym(-1.0, &a, 1.0, &mut expected).unwrap();

        // Build the schedule against the ids the machine will hand out
        // (0 for the dense panel, 1 for the symmetric result).
        let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
        let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
        let plan = TbsPlan::for_memory(s).unwrap();
        let schedule = tbs_schedule::<f64>(&a_ref, &c_ref, -1.0, &plan).unwrap();

        let (a_clone, c_clone) = (a.clone(), c0.clone());
        let mut machine = check_execute_matches_dry_run(
            &schedule,
            move |machine| {
                machine.insert_dense(a_clone);
                machine.insert_symmetric(c_clone);
            },
            &ctx,
        );
        let got = machine.take_symmetric(MatrixId::synthetic(1)).unwrap();
        assert!(got.approx_eq(&expected, 1e-9), "{ctx}: result");
    }
}

#[test]
fn lbc_execute_equals_dry_run_trace_and_reference() {
    let mut rng = SeededRng::seed_from_u64(0xD1CE);
    for case in 0..6 {
        let n = rng.gen_range(8usize..40);
        let s = rng.gen_range(12usize..80);
        let seed = rng.gen_range(0usize..400) as u64;
        let ctx = format!("case {case}: n={n} s={s} seed={seed}");

        let a = generate::random_spd_seeded::<f64>(n, seed);
        let plan = LbcPlan::for_problem(n, s).unwrap();
        let window = SymWindowRef::full(MatrixId::synthetic(0), n);
        let schedule = lbc_schedule::<f64>(&window, &plan).unwrap();

        let a_clone = a.clone();
        let mut machine = check_execute_matches_dry_run(
            &schedule,
            move |machine| {
                machine.insert_symmetric(a_clone);
            },
            &ctx,
        );
        let got = machine.take_symmetric(MatrixId::synthetic(0)).unwrap();
        let l = LowerTriangular::from_lower_fn(n, |i, j| got.get(i, j));
        assert!(kernels::cholesky_residual(&a, &l) < 1e-8, "{ctx}: residual");
    }
}

/// An operand registered in slow memory for the parallel-equivalence checks
/// (ids are issued in insertion order, matching the synthetic ids the
/// schedules were built against).
#[derive(Clone)]
enum Operand {
    Dense(Matrix<f64>),
    Sym(SymMatrix<f64>),
}

impl Operand {
    fn insert_serial(&self, machine: &mut OocMachine<f64>) -> MatrixId {
        match self {
            Operand::Dense(m) => machine.insert_dense(m.clone()),
            Operand::Sym(s) => machine.insert_symmetric(s.clone()),
        }
    }

    fn insert_shared(&self, shared: &SharedSlowMemory<f64>) -> MatrixId {
        match self {
            Operand::Dense(m) => shared.insert_dense(m.clone()),
            Operand::Sym(s) => shared.insert_symmetric(s.clone()),
        }
    }
}

/// Checks invariant 5 of the module docs for one schedule: parallel
/// execution at P ∈ {1, 2, 4, 8} against the serial execution of the same
/// schedule on the same operands.
fn check_parallel_matches_serial(
    ctx: &str,
    schedule: &Schedule<f64>,
    capacity: usize,
    operands: &[Operand],
) {
    // Serial reference execution of the same schedule.
    let mut machine = OocMachine::new(MachineConfig::with_capacity(capacity));
    let ids: Vec<MatrixId> = operands
        .iter()
        .map(|o| o.insert_serial(&mut machine))
        .collect();
    Engine::execute(&mut machine, schedule).unwrap();
    let dry = Engine::dry_run(schedule, "main");
    assert_eq!(machine.stats(), &dry, "{ctx}: serial execute vs dry run");
    let serial_out: Vec<Operand> = ids
        .iter()
        .zip(operands)
        .map(|(&id, op)| match op {
            Operand::Dense(_) => Operand::Dense(machine.take_dense(id).unwrap()),
            Operand::Sym(_) => Operand::Sym(machine.take_symmetric(id).unwrap()),
        })
        .collect();

    for workers in [1usize, 2, 4, 8] {
        let shared = SharedSlowMemory::new();
        let ids: Vec<MatrixId> = operands.iter().map(|o| o.insert_shared(&shared)).collect();
        let runs = Engine::execute_parallel(
            &shared,
            schedule,
            workers,
            MachineConfig::with_capacity(capacity).record_trace(workers == 1),
            "main",
        )
        .unwrap_or_else(|e| panic!("{ctx} P={workers}: {e}"));
        assert_eq!(runs.len(), workers, "{ctx} P={workers}");

        // Every group ran exactly once, and the summed per-worker stats
        // equal the serial dry run of the whole schedule.
        let mut all: Vec<usize> = runs.iter().flat_map(|r| r.groups.clone()).collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..schedule.num_groups()).collect::<Vec<_>>(),
            "{ctx} P={workers}: group coverage"
        );
        let merged = WorkerRun::merged_stats(&runs);
        assert_eq!(
            merged, dry,
            "{ctx} P={workers}: summed worker stats vs serial dry run"
        );

        // The merged peak is the busiest single fast memory (a per-worker
        // max) — NOT the fleet-wide concurrent residency, which is bounded
        // above by the sum of per-worker peaks. The bound collapses to the
        // merged peak only when one worker did all the work.
        let aggregate = WorkerRun::aggregate_peak(&runs);
        assert!(
            aggregate >= merged.peak_resident,
            "{ctx} P={workers}: aggregate {aggregate} < merged {}",
            merged.peak_resident
        );
        assert!(
            aggregate <= workers * merged.peak_resident,
            "{ctx} P={workers}: aggregate {aggregate} exceeds P * busiest"
        );
        if workers == 1 {
            assert_eq!(aggregate, merged.peak_resident, "{ctx}");
        }

        // Each worker's observed I/O equals the analytic per-worker model:
        // the dry run of exactly the groups it processed.
        for (w, run) in runs.iter().enumerate() {
            let observed = WorkerIo {
                loads: run.stats.volume.loads,
                stores: run.stats.volume.stores,
                tasks: run.groups.len(),
            };
            assert_eq!(
                observed,
                analytic_worker_io(schedule, &run.groups),
                "{ctx} P={workers}: worker {w} observed vs analytic"
            );
        }

        // A single worker claims the groups in order: its trace is the
        // serial transfer stream.
        if workers == 1 {
            assert_eq!(
                runs[0].trace.as_ref().unwrap(),
                &Engine::trace(schedule, "main"),
                "{ctx}: single-worker trace vs synthesized trace"
            );
        }

        // The computed matrices are bitwise-equal to the serial execution.
        for ((&id, out), op) in ids.iter().zip(&serial_out).zip(operands) {
            match (out, op) {
                (Operand::Dense(expected), Operand::Dense(_)) => {
                    let got = shared.take_dense(id).unwrap();
                    assert!(got == *expected, "{ctx} P={workers}: dense result m{id:?}");
                }
                (Operand::Sym(expected), Operand::Sym(_)) => {
                    let got = shared.take_symmetric(id).unwrap();
                    assert!(got == *expected, "{ctx} P={workers}: sym result m{id:?}");
                }
                _ => unreachable!("operand kinds are stable"),
            }
        }
    }
}

#[test]
fn parallel_execution_matches_serial_for_all_grouped_schedules() {
    let (n, m, s) = (36, 6, 12);
    let a = generate::random_matrix_seeded::<f64>(n, m, 21);
    let c0 = generate::random_symmetric::<f64>(n, &mut generate::seeded_rng(22));
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let update_operands = [Operand::Dense(a.clone()), Operand::Sym(c0.clone())];

    let sq_plan = OocSyrkPlan::for_memory(s).unwrap();
    let schedule = ooc_syrk_schedule::<f64>(&a_ref, &c_ref, 1.5, &sq_plan).unwrap();
    assert!(schedule.num_groups() > 1);
    check_parallel_matches_serial("OOC_SYRK", &schedule, s, &update_operands);

    let tbs_plan = TbsPlan::for_memory(s).unwrap();
    let schedule = tbs_schedule::<f64>(&a_ref, &c_ref, -1.0, &tbs_plan).unwrap();
    assert!(schedule.num_groups() > 1);
    check_parallel_matches_serial("TBS", &schedule, s, &update_operands);

    let tiled_plan = TbsTiledPlan::for_problem(s, n).unwrap();
    let schedule = tbs_tiled_schedule::<f64>(&a_ref, &c_ref, 1.0, &tiled_plan).unwrap();
    assert!(schedule.num_groups() > 1);
    check_parallel_matches_serial("TBS(tiled)", &schedule, s, &update_operands);

    // GEMM: three dense operands, one group per C tile.
    let (gn, gb, gp, gs) = (20, 6, 10, 30);
    let ga = generate::random_matrix_seeded::<f64>(gn, gb, 23);
    let gbm = generate::random_matrix_seeded::<f64>(gb, gp, 24);
    let gc = generate::random_matrix_seeded::<f64>(gn, gp, 25);
    let ga_ref = PanelRef::dense(MatrixId::synthetic(0), gn, gb);
    let gb_ref = PanelRef::dense(MatrixId::synthetic(1), gb, gp);
    let gc_ref = PanelRef::dense(MatrixId::synthetic(2), gn, gp);
    let gemm_plan = OocGemmPlan::for_memory(gs).unwrap();
    let schedule = ooc_gemm_schedule::<f64>(&ga_ref, &gb_ref, &gc_ref, 2.0, &gemm_plan).unwrap();
    assert!(schedule.num_groups() > 1);
    check_parallel_matches_serial(
        "OOC_GEMM",
        &schedule,
        gs,
        &[Operand::Dense(ga), Operand::Dense(gbm), Operand::Dense(gc)],
    );

    // The parallel-SYRK partition schedules (C first, then A).
    for strategy in [BlockStrategy::SquareTiles, BlockStrategy::TriangleBlocks] {
        let schedule = partition_schedule::<f64>(n, m, s, strategy).unwrap();
        assert!(schedule.num_groups() > 1);
        check_parallel_matches_serial(
            strategy.name(),
            &schedule,
            s,
            &[Operand::Sym(c0.clone()), Operand::Dense(a.clone())],
        );
    }
}

#[test]
fn schedules_expose_their_structure() {
    // A TBS schedule at an engaged size has one task group per triangle
    // block / square tile, and the group volumes sum to the cost model.
    let (n, m, s) = (30, 6, 10);
    let plan = TbsPlan::for_memory(s).unwrap();
    assert!(plan.applicable(n));
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let schedule = tbs_schedule::<f64>(&a_ref, &c_ref, 1.0, &plan).unwrap();
    assert!(schedule.num_groups() > 1, "expected one group per block");

    let est = tbs_cost(n, m, &plan).unwrap();
    let loaded: u64 = schedule.groups.iter().map(|g| g.loaded_elements()).sum();
    let stored: u64 = schedule.groups.iter().map(|g| g.stored_elements()).sum();
    assert_eq!(loaded as u128, est.loads);
    assert_eq!(stored as u128, est.stores);
}
