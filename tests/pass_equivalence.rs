//! Acceptance invariants of the schedule-optimization pass layer, for every
//! one of the eight schedule builders × the stock pass pipelines:
//!
//! 1. **bitwise equivalence** — executing the optimized schedule leaves
//!    every slow-memory matrix bitwise identical to the seed execution;
//! 2. **symbolic equivalence** — the dataflow-hash effects of seed and
//!    optimized schedules agree (`passes::verify`);
//! 3. **monotone transfers** — the optimized dry-run never moves more
//!    elements or issues more transfer events than the seed, in either
//!    direction, and at least one paper algorithm (tiled TBS) shows a
//!    strictly positive measured saving;
//! 4. **mode agreement survives optimization** — executing an optimized
//!    schedule still reproduces its own dry run exactly, and schedules with
//!    independent groups still replay correctly through
//!    `Engine::execute_parallel`.

use symla::matrix::generate::{self, SeededRng};
use symla::prelude::*;
use symla_baselines::{
    ooc_chol_schedule, ooc_gemm_schedule, ooc_lu_schedule, ooc_syrk_schedule, ooc_trsm_schedule,
    OocCholPlan, OocGemmPlan, OocLuPlan, OocSyrkPlan, OocTrsmPlan,
};
use symla_core::engine::{Engine, Schedule, WorkerRun};
use symla_core::passes::{verify, PassPipeline};
use symla_core::plan::{LbcPlan, TbsPlan, TbsTiledPlan};
use symla_core::{lbc_schedule, tbs_schedule, tbs_tiled_schedule};
use symla_matrix::generate::{random_lower_triangular, random_matrix_seeded, random_spd_seeded};
use symla_matrix::{Matrix, SymMatrix};
use symla_memory::{MachineConfig, MatrixId, SharedSlowMemory};

/// A slow-memory operand, in the order it must be registered (machine ids
/// are assigned sequentially, so position = id).
#[derive(Clone, PartialEq, Debug)]
enum Mat {
    Dense(Matrix<f64>),
    Sym(SymMatrix<f64>),
}

/// One algorithm instance: a schedule plus the machine contents it runs on.
struct Case {
    name: &'static str,
    schedule: Schedule<f64>,
    mats: Vec<Mat>,
}

impl Case {
    fn machine(&self) -> OocMachine<f64> {
        let mut machine = OocMachine::new(MachineConfig::unlimited());
        for (i, mat) in self.mats.iter().enumerate() {
            let got = match mat {
                Mat::Dense(m) => machine.insert_dense(m.clone()),
                Mat::Sym(s) => machine.insert_symmetric(s.clone()),
            };
            assert_eq!(got, MatrixId::synthetic(i as u64), "ids must reproduce");
        }
        machine
    }

    /// Executes `schedule` and returns the final contents of every matrix.
    fn execute(&self, schedule: &Schedule<f64>) -> Vec<Mat> {
        let mut machine = self.machine();
        Engine::execute(&mut machine, schedule).unwrap();
        let dry = Engine::dry_run(schedule, "main");
        assert_eq!(
            machine.stats(),
            &dry,
            "{}: execute must match dry run",
            self.name
        );
        self.mats
            .iter()
            .enumerate()
            .map(|(i, mat)| {
                let id = MatrixId::synthetic(i as u64);
                match mat {
                    Mat::Dense(_) => Mat::Dense(machine.take_dense(id).unwrap()),
                    Mat::Sym(_) => Mat::Sym(machine.take_symmetric(id).unwrap()),
                }
            })
            .collect()
    }
}

/// The eight schedule builders on seeded instances.
fn all_cases() -> Vec<Case> {
    let mut cases = Vec::new();
    let mut rng = SeededRng::seed_from_u64(0x0A55);

    // --- SYRK family: A dense (id 0), C symmetric (id 1) ---
    let (n, m, s) = (30, 6, 10);
    let a: Matrix<f64> = random_matrix_seeded(n, m, 71);
    let c: SymMatrix<f64> = generate::random_symmetric(n, &mut rng);
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    cases.push(Case {
        name: "tbs",
        schedule: tbs_schedule(&a_ref, &c_ref, 1.0, &TbsPlan::for_memory(s).unwrap()).unwrap(),
        mats: vec![Mat::Dense(a.clone()), Mat::Sym(c.clone())],
    });
    let (n, m, s) = (40, 6, 60);
    let a40: Matrix<f64> = random_matrix_seeded(n, m, 72);
    let c40: SymMatrix<f64> = generate::random_symmetric(n, &mut rng);
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    cases.push(Case {
        name: "tbs_tiled",
        schedule: tbs_tiled_schedule(
            &a_ref,
            &c_ref,
            -1.0,
            &TbsTiledPlan::for_problem(s, n).unwrap(),
        )
        .unwrap(),
        mats: vec![Mat::Dense(a40.clone()), Mat::Sym(c40.clone())],
    });
    let (n, m, s) = (20, 5, 35);
    let a20: Matrix<f64> = random_matrix_seeded(n, m, 73);
    let c20: SymMatrix<f64> = generate::random_symmetric(n, &mut rng);
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    cases.push(Case {
        name: "ooc_syrk",
        schedule: ooc_syrk_schedule(&a_ref, &c_ref, 1.0, &OocSyrkPlan::for_memory(s).unwrap())
            .unwrap(),
        mats: vec![Mat::Dense(a20), Mat::Sym(c20)],
    });

    // --- factorizations on symmetric windows (id 0) ---
    let (n, s) = (36, 48);
    let spd: SymMatrix<f64> = random_spd_seeded(n, 74);
    let window = SymWindowRef::full(MatrixId::synthetic(0), n);
    cases.push(Case {
        name: "lbc",
        schedule: lbc_schedule(&window, &LbcPlan::for_problem(n, s).unwrap()).unwrap(),
        mats: vec![Mat::Sym(spd.clone())],
    });
    let (n, s) = (24, 35);
    let spd24: SymMatrix<f64> = random_spd_seeded(n, 75);
    let window = SymWindowRef::full(MatrixId::synthetic(0), n);
    cases.push(Case {
        name: "ooc_chol",
        schedule: ooc_chol_schedule(&window, &OocCholPlan::for_memory(s).unwrap()),
        mats: vec![Mat::Sym(spd24)],
    });

    // --- TRSM: L symmetric (id 0), X dense (id 1) ---
    let (mrows, b, s) = (9, 8, 24);
    let lfac = random_lower_triangular::<f64>(b, &mut rng);
    let lsym = SymMatrix::from_lower_fn(b, |i, j| lfac.get(i, j));
    let x: Matrix<f64> = random_matrix_seeded(mrows, b, 76);
    let l_ref = SymWindowRef::full(MatrixId::synthetic(0), b);
    let x_ref = PanelRef::dense(MatrixId::synthetic(1), mrows, b);
    cases.push(Case {
        name: "ooc_trsm",
        schedule: ooc_trsm_schedule(&l_ref, &x_ref, &OocTrsmPlan::for_memory(s).unwrap()).unwrap(),
        mats: vec![Mat::Sym(lsym), Mat::Dense(x)],
    });

    // --- GEMM: three dense panels ---
    let (gn, gm, gp, s) = (9, 7, 11, 35);
    let ga: Matrix<f64> = random_matrix_seeded(gn, gm, 77);
    let gb: Matrix<f64> = random_matrix_seeded(gm, gp, 78);
    let gc: Matrix<f64> = random_matrix_seeded(gn, gp, 79);
    cases.push(Case {
        name: "ooc_gemm",
        schedule: ooc_gemm_schedule(
            &PanelRef::dense(MatrixId::synthetic(0), gn, gm),
            &PanelRef::dense(MatrixId::synthetic(1), gm, gp),
            &PanelRef::dense(MatrixId::synthetic(2), gn, gp),
            0.5,
            &OocGemmPlan::for_memory(s).unwrap(),
        )
        .unwrap(),
        mats: vec![Mat::Dense(ga), Mat::Dense(gb), Mat::Dense(gc)],
    });

    // --- LU on a diagonally dominant dense matrix (id 0) ---
    let (n, s) = (12, 35);
    let mut lu = random_matrix_seeded::<f64>(n, n, 80);
    for i in 0..n {
        lu[(i, i)] += n as f64;
    }
    cases.push(Case {
        name: "ooc_lu",
        schedule: ooc_lu_schedule(
            &PanelRef::dense(MatrixId::synthetic(0), n, n),
            &OocLuPlan::for_memory(s).unwrap(),
        )
        .unwrap(),
        mats: vec![Mat::Dense(lu)],
    });

    cases
}

fn assert_transfers_monotone(seed: &symla_memory::IoStats, opt: &symla_memory::IoStats, ctx: &str) {
    assert!(
        opt.volume.loads <= seed.volume.loads,
        "{ctx}: load volume regressed {} -> {}",
        seed.volume.loads,
        opt.volume.loads
    );
    assert!(
        opt.volume.stores <= seed.volume.stores,
        "{ctx}: store volume regressed"
    );
    assert!(
        opt.load_events <= seed.load_events,
        "{ctx}: load events regressed"
    );
    assert!(
        opt.store_events <= seed.store_events,
        "{ctx}: store events regressed"
    );
}

#[test]
fn all_eight_builders_survive_both_pipelines_bitwise() {
    for case in all_cases() {
        let seed_dry = Engine::dry_run(&case.schedule, "main");
        let seed_result = case.execute(&case.schedule);
        let budget = seed_dry.peak_resident + seed_dry.peak_resident / 2;
        for pipeline in [
            PassPipeline::standard(),
            PassPipeline::locality(Some(budget)),
        ] {
            let ctx = format!("{} via {:?}", case.name, pipeline);
            let optimized = pipeline
                .manager::<f64>()
                .optimize(&case.schedule, "main")
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            verify::check_equivalent(&case.schedule, &optimized.schedule)
                .unwrap_or_else(|e| panic!("{ctx}: {e}"));
            assert_transfers_monotone(&seed_dry, &optimized.final_stats, &ctx);
            assert!(
                optimized.final_stats.peak_resident <= seed_dry.peak_resident.max(budget),
                "{ctx}: peak exceeded budget"
            );
            // per-pass monotonicity, too: no pass may undo another's savings
            for stage in &optimized.stages {
                assert_transfers_monotone(&stage.before, &stage.after, &ctx);
            }
            let opt_result = case.execute(&optimized.schedule);
            assert_eq!(
                seed_result, opt_result,
                "{ctx}: results must be bitwise equal"
            );
        }
    }
}

#[test]
fn tiled_tbs_and_lbc_square_show_strictly_positive_savings() {
    // the acceptance criterion: at least one paper algorithm saves
    // strictly positive measured transfers
    let cases = all_cases();
    let tiled = cases.iter().find(|c| c.name == "tbs_tiled").unwrap();
    let opt = PassPipeline::standard()
        .manager::<f64>()
        .optimize(&tiled.schedule, "main")
        .unwrap();
    assert!(
        opt.events_saved() > 0,
        "tiled TBS must coalesce some loads: {:?}",
        opt.stages
            .iter()
            .map(|s| s.report.clone())
            .collect::<Vec<_>>()
    );
    assert_eq!(
        opt.final_stats.volume, opt.seed_stats.volume,
        "coalescing must preserve element volume"
    );

    // TRSM with slack: the locality pipeline eliminates re-loaded L
    // segments outright (volume, not just events)
    let trsm = cases.iter().find(|c| c.name == "ooc_trsm").unwrap();
    let seed_peak = Engine::dry_run(&trsm.schedule, "main").peak_resident;
    let opt = PassPipeline::locality(Some(2 * seed_peak))
        .manager::<f64>()
        .optimize(&trsm.schedule, "main")
        .unwrap();
    assert!(
        opt.loads_saved() > 0,
        "TRSM with residency slack must save load volume: {:?}",
        opt.stages
            .iter()
            .map(|s| s.report.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn api_clamps_pipeline_budget_to_machine_capacity() {
    // A residency budget far beyond the machine capacity must not produce a
    // schedule the capacity-enforced execution rejects: the API clamps the
    // budget to `s`.
    let (n, s) = (40, 60);
    let spd = random_spd_seeded::<f64>(n, 10);
    let (l_plain, _) = cholesky_out_of_core(&spd, s, CholeskyAlgorithm::Lbc).unwrap();
    let (l_opt, run) = cholesky_out_of_core_optimized(
        &spd,
        s,
        CholeskyAlgorithm::Lbc,
        &PassPipeline::locality(Some(100 * s)),
    )
    .unwrap();
    assert!(
        l_opt.approx_eq(&l_plain, 0.0),
        "results must stay bitwise equal"
    );
    assert!(
        run.report.stats.peak_resident <= s,
        "optimized execution exceeded the requested fast memory"
    );
    assert!(run.events_saved() > 0, "the clamped pipeline still saves");
}

#[test]
fn optimized_independent_schedules_replay_in_parallel() {
    // OOC_SYRK: independent groups before and after optimization
    let (n, m, s) = (24, 4, 48);
    let a: Matrix<f64> = random_matrix_seeded(n, m, 90);
    let mut rng = SeededRng::seed_from_u64(0x9111);
    let c: SymMatrix<f64> = generate::random_symmetric(n, &mut rng);
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let schedule =
        ooc_syrk_schedule::<f64>(&a_ref, &c_ref, 1.0, &OocSyrkPlan::for_memory(s).unwrap())
            .unwrap();
    let optimized = PassPipeline::standard()
        .manager::<f64>()
        .optimize(&schedule, "main")
        .unwrap();
    assert!(
        optimized.events_saved() > 0,
        "adjacent-tile OOC_SYRK groups must coalesce"
    );

    // serial reference on the seed schedule
    let mut machine = OocMachine::new(MachineConfig::with_capacity(s));
    let sa = machine.insert_dense(a.clone());
    let sc = machine.insert_symmetric(c.clone());
    assert_eq!(sa, MatrixId::synthetic(0));
    assert_eq!(sc, MatrixId::synthetic(1));
    Engine::execute(&mut machine, &schedule).unwrap();
    let expected = machine.take_symmetric(sc).unwrap();

    for workers in [1, 2, 4] {
        let shared = SharedSlowMemory::new();
        let pa = shared.insert_dense(a.clone());
        let pc = shared.insert_symmetric(c.clone());
        assert_eq!(pa, MatrixId::synthetic(0));
        assert_eq!(pc, MatrixId::synthetic(1));
        let runs = Engine::execute_parallel(
            &shared,
            &optimized.schedule,
            workers,
            MachineConfig::with_capacity(s),
            "main",
        )
        .unwrap();
        assert_eq!(
            WorkerRun::merged_stats(&runs),
            optimized.final_stats,
            "P={workers}: merged worker stats must equal the optimized dry run"
        );
        let got = shared.take_symmetric(pc).unwrap();
        assert!(
            got.approx_eq(&expected, 0.0),
            "P={workers}: parallel optimized result differs from serial seed"
        );
    }
}
