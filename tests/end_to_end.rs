//! Cross-crate integration tests: the full pipeline (generators → machine
//! model → out-of-core schedules → verification against reference kernels).

use symla::prelude::*;

#[test]
fn syrk_all_algorithms_agree_with_reference_and_bounds() {
    let n = 72;
    let m = 24;
    let s = 28; // k = 7
    let a = generate::random_matrix_seeded::<f64>(n, m, 11);
    let c0 = generate::random_symmetric::<f64>(n, &mut generate::seeded_rng(12));

    let mut expected = c0.clone();
    kernels::syrk_sym(1.0, &a, 1.0, &mut expected).unwrap();

    let mut measured = Vec::new();
    for algo in [
        SyrkAlgorithm::SquareBlocks,
        SyrkAlgorithm::TbsTiled,
        SyrkAlgorithm::Tbs,
    ] {
        let mut c = c0.clone();
        let report = syrk_out_of_core(&a, &mut c, 1.0, s, algo).unwrap();
        assert!(c.approx_eq(&expected, 1e-9), "{} wrong result", algo.name());
        assert!(report.prediction_matches(), "{} prediction", algo.name());
        assert!(report.stats.peak_resident <= s, "{} capacity", algo.name());
        assert!(
            report.measured_loads() as f64 >= report.lower_bound,
            "{} below lower bound",
            algo.name()
        );
        measured.push((algo.name(), report.measured_loads()));
    }
    // At this size the tiled TBS engages and beats the square baseline.
    let square = measured[0].1;
    let tiled = measured[1].1;
    assert!(
        tiled < square,
        "tiled TBS ({tiled}) should move less data than square blocks ({square})"
    );
}

#[test]
fn cholesky_all_algorithms_agree_with_reference_and_bounds() {
    let n = 96;
    let s = 21; // k = 6
    let a = generate::random_spd_seeded::<f64>(n, 21);
    let reference = kernels::cholesky_sym(&a).unwrap();

    let mut loads = std::collections::BTreeMap::new();
    for algo in [
        CholeskyAlgorithm::Bereux,
        CholeskyAlgorithm::LbcSquare,
        CholeskyAlgorithm::LbcTiled,
        CholeskyAlgorithm::Lbc,
    ] {
        let (l, report) = cholesky_out_of_core(&a, s, algo).unwrap();
        assert!(
            l.approx_eq(&reference, 1e-7),
            "{} factor differs from reference",
            algo.name()
        );
        assert!(kernels::cholesky_residual(&a, &l) < 1e-9);
        assert!(report.prediction_matches(), "{}", algo.name());
        assert!(report.stats.peak_resident <= s);
        assert!(report.measured_loads() as f64 >= report.lower_bound);
        loads.insert(algo.name(), report.measured_loads());
    }
    // The LBC variants with symmetric-aware trailing updates beat the plain
    // right-looking square-block ablation at this size.
    assert!(loads["LBC(tiled)"] < loads["LBC(square trailing)"]);
}

#[test]
fn works_in_single_precision_too() {
    let n = 48;
    let s = 21;
    let a32 = generate::random_spd_seeded::<f32>(n, 33);
    let (l, report) = cholesky_out_of_core(&a32, s, CholeskyAlgorithm::Lbc).unwrap();
    assert!(kernels::cholesky_residual(&a32, &l) < 1e-3);
    assert!(report.prediction_matches());

    let a = generate::random_matrix_seeded::<f32>(n, 16, 34);
    let mut c = SymMatrix::<f32>::zeros(n);
    let report = syrk_out_of_core(&a, &mut c, 1.0, s, SyrkAlgorithm::TbsTiled).unwrap();
    assert!(report.prediction_matches());
    let mut expected = SymMatrix::<f32>::zeros(n);
    kernels::syrk_sym(1.0_f32, &a, 1.0, &mut expected).unwrap();
    assert!(c.approx_eq(&expected, 1e-3));
}

#[test]
fn direct_machine_usage_and_phase_attribution() {
    // Drive LBC manually through the machine to check the per-phase split
    // matches the per-phase cost model.
    let n = 60;
    let s = 15; // k = 5
    let a = generate::random_spd_seeded::<f64>(n, 44);
    let plan = LbcPlan::for_problem(n, s).unwrap();

    let mut machine = OocMachine::<f64>::with_capacity(s);
    let id = machine.insert_symmetric(a.clone());
    symla_core::lbc_execute(&mut machine, &SymWindowRef::full(id, n), &plan).unwrap();
    let breakdown = symla_core::lbc_cost_breakdown(n, &plan).unwrap();

    let stats = machine.stats();
    assert_eq!(
        breakdown.chol.loads,
        stats.phase(symla_core::lbc::PHASE_CHOL).loads as u128
    );
    assert_eq!(
        breakdown.trsm.loads,
        stats.phase(symla_core::lbc::PHASE_TRSM).loads as u128
    );
    assert_eq!(
        breakdown.trailing.loads,
        stats.phase(symla_core::lbc::PHASE_TRAILING).loads as u128
    );
    assert_eq!(breakdown.total().stores, stats.volume.stores as u128);

    // the factor is still correct
    let result = machine.take_symmetric(id).unwrap();
    let l = LowerTriangular::from_lower_fn(n, |i, j| result.get(i, j));
    assert!(kernels::cholesky_residual(&a, &l) < 1e-10);
}

#[test]
fn trace_recording_covers_every_transfer() {
    let n = 40;
    let m = 10;
    let s = 24;
    let a = generate::random_matrix_seeded::<f64>(n, m, 55);
    let plan = TbsPlan::for_memory(s).unwrap();

    let mut machine = OocMachine::<f64>::new(MachineConfig::with_capacity(s).record_trace(true));
    let a_id = machine.insert_dense(a);
    let c_id = machine.insert_symmetric(SymMatrix::zeros(n));
    symla_core::tbs_execute(
        &mut machine,
        &PanelRef::dense(a_id, n, m),
        &SymWindowRef::full(c_id, n),
        1.0,
        &plan,
    )
    .unwrap();

    let trace = machine.trace().unwrap();
    assert_eq!(trace.total_loaded(), machine.stats().volume.loads);
    assert_eq!(trace.total_stored(), machine.stats().volume.stores);
    assert!(trace.peak_resident() <= s);
    assert!(!trace.is_empty());
}

/// Section 5.1.3: "the TBS algorithm loads each entry of C exactly once".
/// Verified from the transfer trace: the load traffic attributed to the C
/// matrix equals its packed size, for both TBS and the square-block baseline.
#[test]
fn tbs_and_square_blocks_load_each_c_entry_exactly_once() {
    let n = 60;
    let m = 12;
    let s = 15; // k = 5, TBS engages
    let a = generate::random_matrix_seeded::<f64>(n, m, 77);

    for use_tbs in [true, false] {
        let mut machine =
            OocMachine::<f64>::new(MachineConfig::with_capacity(s).record_trace(true));
        let a_id = machine.insert_dense(a.clone());
        let c_id = machine.insert_symmetric(SymMatrix::zeros(n));
        let a_ref = PanelRef::dense(a_id, n, m);
        let c_ref = SymWindowRef::full(c_id, n);
        if use_tbs {
            let plan = TbsPlan::for_memory(s).unwrap();
            assert!(plan.applicable(n));
            symla_core::tbs_execute(&mut machine, &a_ref, &c_ref, 1.0, &plan).unwrap();
        } else {
            let plan = OocSyrkPlan::for_memory(s).unwrap();
            ooc_syrk_execute(&mut machine, &a_ref, &c_ref, 1.0, &plan).unwrap();
        }
        let trace = machine.trace().unwrap();
        let c_loads: usize = trace
            .events()
            .iter()
            .filter(|e| e.direction == symla::memory::Direction::Load && e.matrix == c_id.raw())
            .map(|e| e.elements())
            .sum();
        let c_stores: usize = trace
            .events()
            .iter()
            .filter(|e| e.direction == symla::memory::Direction::Store && e.matrix == c_id.raw())
            .map(|e| e.elements())
            .sum();
        // every element of the packed lower triangle is loaded exactly once
        // and written back exactly once
        assert_eq!(c_loads, n * (n + 1) / 2, "tbs={use_tbs}");
        assert_eq!(c_stores, n * (n + 1) / 2, "tbs={use_tbs}");
        // and the remaining loads are all loads of A
        let a_loads: usize = trace
            .events()
            .iter()
            .filter(|e| e.direction == symla::memory::Direction::Load && e.matrix == a_id.raw())
            .map(|e| e.elements())
            .sum();
        assert_eq!(
            a_loads as u64 + c_loads as u64,
            machine.stats().volume.loads,
            "tbs={use_tbs}"
        );
    }
}

#[test]
fn parallel_extension_matches_sequential_result() {
    use symla_core::parallel::{parallel_syrk, BlockStrategy};
    let n = 90;
    let m = 12;
    let a = generate::random_matrix_seeded::<f64>(n, m, 66);
    let mut expected = SymMatrix::<f64>::zeros(n);
    kernels::syrk_sym(1.0, &a, 1.0, &mut expected).unwrap();

    let mut c = SymMatrix::<f64>::zeros(n);
    let report = parallel_syrk(&a, &mut c, 1.0, 4, 15, BlockStrategy::TriangleBlocks).unwrap();
    assert!(c.approx_eq(&expected, 1e-10));
    assert_eq!(report.workers, 4);
    assert!(report.total_loads() > 0);
}
