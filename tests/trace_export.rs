//! Golden-file pin of the Chrome-trace (Perfetto) export.
//!
//! The modelled timebase is fully deterministic — event order is the
//! schedule's program order and every timestamp comes from the static
//! wall-clock model — so the exported bytes of a seeded instance are a
//! stable artifact. Pinning them catches accidental format drift (a viewer
//! that loaded yesterday's trace must load today's) and accidental model or
//! event-cadence drift in one diff. The measured timebase carries host
//! timings and is checked structurally instead: valid JSON, balanced spans,
//! per-track monotone timestamps.
//!
//! To regenerate after an intentional format, model or cadence change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test trace_export
//! git diff tests/golden/   # review the timeline diff by eye
//! ```

use std::collections::HashMap;
use std::path::PathBuf;
use symla::prelude::*;
use symla_baselines::ooc_syrk_schedule;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e}; regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its golden file; if the change is intentional, \
         regenerate with `UPDATE_GOLDEN=1 cargo test --test trace_export` \
         and review the diff"
    );
}

/// A small deterministic OOC_SYRK instance with enough groups for the
/// prefetcher to overlap at `lookahead = 1` (so the golden trace contains
/// prefetched loads and issue→delivery flow events).
fn tiny_syrk_case() -> (Schedule<f64>, usize) {
    let (n, m, s) = (12, 3, 30);
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let schedule =
        ooc_syrk_schedule(&a_ref, &c_ref, 1.0, &OocSyrkPlan::for_memory(s).unwrap()).unwrap();
    (schedule, s)
}

/// Executes the case inside an [`InstrumentedMachine`] and returns the
/// recorded trace.
fn executed_trace(schedule: &Schedule<f64>, s: usize, lookahead: usize) -> RunTrace {
    let (n, m) = (12, 3);
    let mut inner = OocMachine::<f64>::new(MachineConfig::with_capacity(s));
    inner.insert_dense(symla::matrix::generate::random_matrix_seeded(n, m, 940));
    inner.insert_symmetric(symla::matrix::generate::random_symmetric(
        n,
        &mut symla::matrix::generate::seeded_rng(941),
    ));
    let recorder = TraceRecorder::new();
    let mut machine = InstrumentedMachine::new(inner, MachineModel::nvme(), recorder.clone(), 0);
    Engine::execute_with(
        &mut machine,
        schedule,
        &EngineConfig::with_lookahead(lookahead),
    )
    .unwrap();
    recorder.finish()
}

#[test]
fn modelled_export_matches_golden_file() {
    let (schedule, s) = tiny_syrk_case();
    for (lookahead, name) in [
        (0usize, "ooc_syrk_l0.trace.json"),
        (1, "ooc_syrk_l1.trace.json"),
    ] {
        // The golden bytes come from the static walker; the executed trace
        // must export to exactly the same bytes, making the golden file a
        // pin on both the format and the executed==synthesized identity.
        let synthesized = modelled_run_trace(&schedule, &MachineModel::nvme(), lookahead, Some(s))
            .to_chrome_trace(&[TimeBase::Modelled]);
        check_golden(name, &synthesized);
        let executed =
            executed_trace(&schedule, s, lookahead).to_chrome_trace(&[TimeBase::Modelled]);
        assert_eq!(
            executed, synthesized,
            "L={lookahead}: executed export drifted from the golden walker export"
        );
    }
}

#[test]
fn exports_are_well_formed_on_both_timebases() {
    let (schedule, s) = tiny_syrk_case();
    let trace = executed_trace(&schedule, s, 1);
    for bases in [
        vec![TimeBase::Modelled],
        vec![TimeBase::Measured],
        vec![TimeBase::Measured, TimeBase::Modelled],
    ] {
        let export = trace.to_chrome_trace(&bases);
        symla::obs::json::validate(&export)
            .unwrap_or_else(|pos| panic!("{bases:?}: invalid JSON at byte {pos}"));

        // One event per line between the wrapper braces; timestamps must be
        // monotone per (pid, tid) track and B/E spans balanced per track.
        let mut last_ts: HashMap<(String, String), f64> = HashMap::new();
        let mut depth: HashMap<(String, String), i64> = HashMap::new();
        let mut events = 0usize;
        for line in export.lines() {
            let line = line.trim().trim_end_matches(',');
            if !line.starts_with("{\"ph\":") || line.contains("\"M\"") {
                continue;
            }
            events += 1;
            let field = |key: &str| -> Option<String> {
                let tag = format!("\"{key}\":");
                let rest = &line[line.find(&tag)? + tag.len()..];
                Some(
                    rest[..rest
                        .find([',', '}'])
                        .expect("field value ends before the event does")]
                        .to_string(),
                )
            };
            let track = (field("pid").unwrap(), field("tid").unwrap());
            if let Some(ts) = field("ts").map(|t| t.parse::<f64>().unwrap()) {
                let prev = last_ts.insert(track.clone(), ts).unwrap_or(f64::MIN);
                assert!(prev <= ts, "{bases:?}: track {track:?} went back in time");
            }
            match field("ph").unwrap().as_str() {
                "\"B\"" => *depth.entry(track).or_insert(0) += 1,
                "\"E\"" => {
                    let d = depth.entry(track.clone()).or_insert(0);
                    *d -= 1;
                    assert!(
                        *d >= 0,
                        "{bases:?}: track {track:?} closed an unopened span"
                    );
                }
                _ => {}
            }
        }
        assert!(events > 0, "{bases:?}: export contains no events");
        assert!(
            depth.values().all(|&d| d == 0),
            "{bases:?}: unbalanced spans {depth:?}"
        );
    }
}
