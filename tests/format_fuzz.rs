//! Seeded fuzz sweep of the serialization formats: random byte mutations,
//! truncations and splices of `Schedule::to_bytes` (with and without an
//! attached prefetch plan) must never panic — every input either decodes
//! into *some* well-formed schedule or reports a typed [`BinaryError`] — and
//! the text `dump()` path survives the same treatment through `parse()`.
//! Whenever a corrupted input does decode, re-encoding it must round-trip,
//! i.e. the decoder never fabricates a schedule it cannot itself represent.
//!
//! This extends the fixed corruption cases of `binary_roundtrip.rs` with a
//! deterministic (seeded) randomized sweep across every builder's encoding.

use symla::prelude::*;
use symla_baselines::{
    ooc_chol_schedule, ooc_gemm_schedule, ooc_lu_schedule, ooc_syrk_schedule, ooc_trsm_schedule,
};
use symla_matrix::generate::seeded_rng;
use symla_sched::PrefetchPlan;

/// The eight schedule builders on small, structurally interesting instances.
fn builder_schedules() -> Vec<(&'static str, Schedule<f64>)> {
    let (n, m, s) = (30, 5, 40);
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let window = SymWindowRef::full(MatrixId::synthetic(0), n);
    vec![
        (
            "ooc_syrk",
            ooc_syrk_schedule(&a_ref, &c_ref, 1.5, &OocSyrkPlan::for_memory(s).unwrap()).unwrap(),
        ),
        (
            "tbs",
            tbs_schedule(&a_ref, &c_ref, -0.5, &TbsPlan::for_memory(s).unwrap()).unwrap(),
        ),
        (
            "tbs_tiled",
            tbs_tiled_schedule(
                &a_ref,
                &c_ref,
                1.0,
                &TbsTiledPlan::for_problem(s, n).unwrap(),
            )
            .unwrap(),
        ),
        (
            "lbc",
            lbc_schedule(&window, &LbcPlan::for_problem(n, s).unwrap()).unwrap(),
        ),
        (
            "ooc_chol",
            ooc_chol_schedule(&window, &OocCholPlan::for_memory(s).unwrap()),
        ),
        (
            "ooc_trsm",
            ooc_trsm_schedule(
                &SymWindowRef::full(MatrixId::synthetic(0), 8),
                &PanelRef::dense(MatrixId::synthetic(1), 9, 8),
                &OocTrsmPlan::for_memory(24).unwrap(),
            )
            .unwrap(),
        ),
        (
            "ooc_gemm",
            ooc_gemm_schedule(
                &PanelRef::dense(MatrixId::synthetic(0), 9, 7),
                &PanelRef::dense(MatrixId::synthetic(1), 7, 11),
                &PanelRef::dense(MatrixId::synthetic(2), 9, 11),
                1.0,
                &OocGemmPlan::for_memory(35).unwrap(),
            )
            .unwrap(),
        ),
        (
            "ooc_lu",
            ooc_lu_schedule(
                &PanelRef::dense(MatrixId::synthetic(0), 12, 12),
                &OocLuPlan::for_memory(35).unwrap(),
            )
            .unwrap(),
        ),
    ]
}

/// Decoding `bytes` must either fail with a typed error or produce a
/// schedule the encoder can reproduce exactly (no "unrepresentable"
/// schedules leak out of the decoder).
fn assert_decode_is_total(name: &str, tag: &str, bytes: &[u8]) {
    if let Ok(decoded) = Schedule::<f64>::from_bytes(bytes) {
        let reencoded = decoded.to_bytes();
        let again = Schedule::<f64>::from_bytes(&reencoded)
            .unwrap_or_else(|e| panic!("{name}/{tag}: re-encode of accepted input failed: {e}"));
        assert_eq!(again, decoded, "{name}/{tag}: accepted input round-trips");
    }
    // The plan-carrying decoder must be equally total on the same input.
    if let Ok((decoded, plan)) = Schedule::<f64>::from_bytes_with_plan(bytes) {
        let reencoded = match &plan {
            Some(p) => decoded.to_bytes_with_plan(p),
            None => decoded.to_bytes(),
        };
        let (again, plan_again) = Schedule::<f64>::from_bytes_with_plan(&reencoded)
            .unwrap_or_else(|e| panic!("{name}/{tag}: plan re-encode failed: {e}"));
        assert_eq!(again, decoded, "{name}/{tag}: plan path round-trips");
        assert_eq!(plan_again, plan, "{name}/{tag}: plan survives");
    }
}

/// Random single- and multi-byte mutations of every builder's encoding
/// never panic; accepted mutants round-trip.
#[test]
fn random_mutations_never_panic() {
    let mut rng = seeded_rng(0xF0221);
    for (name, schedule) in builder_schedules() {
        for bytes in [
            schedule.to_bytes(),
            schedule.to_bytes_with_plan(&PrefetchPlan::plan(&schedule, 2, Some(64))),
        ] {
            for round in 0..200 {
                let mut mutated = bytes.clone();
                // 1..=4 independent byte mutations per round.
                let hits = 1 + (rng.next_u64() % 4) as usize;
                for _ in 0..hits {
                    let pos = (rng.next_u64() % bytes.len() as u64) as usize;
                    mutated[pos] = rng.next_u64() as u8;
                }
                assert_decode_is_total(name, &format!("mutate round {round}"), &mutated);
            }
        }
    }
}

/// Random truncations (including to the empty input) and random-tail
/// extensions never panic; every strict truncation of a valid encoding that
/// still decodes must round-trip.
#[test]
fn random_truncations_and_extensions_never_panic() {
    let mut rng = seeded_rng(0xF0222);
    for (name, schedule) in builder_schedules() {
        let bytes = schedule.to_bytes();
        for round in 0..200 {
            let cut = (rng.next_u64() % (bytes.len() as u64 + 1)) as usize;
            assert_decode_is_total(name, &format!("truncate to {cut}"), &bytes[..cut]);

            let mut extended = bytes.clone();
            let tail = (rng.next_u64() % 16) as usize + 1;
            for _ in 0..tail {
                extended.push(rng.next_u64() as u8);
            }
            assert_decode_is_total(name, &format!("extend round {round}"), &extended);
        }
    }
}

/// Random splices — a window of one builder's encoding pasted into
/// another's — never panic. This is the shape of corruption a partial file
/// write or a cache collision would produce.
#[test]
fn random_splices_never_panic() {
    let mut rng = seeded_rng(0xF0223);
    let schedules = builder_schedules();
    let encodings: Vec<(&str, Vec<u8>)> = schedules
        .iter()
        .map(|(name, s)| (*name, s.to_bytes()))
        .collect();
    for round in 0..400 {
        let (a_name, a) = &encodings[(rng.next_u64() % encodings.len() as u64) as usize];
        let (_, b) = &encodings[(rng.next_u64() % encodings.len() as u64) as usize];
        let mut spliced = a.clone();
        let dst = (rng.next_u64() % a.len() as u64) as usize;
        let src = (rng.next_u64() % b.len() as u64) as usize;
        let len = (rng.next_u64() % 64) as usize + 1;
        for i in 0..len {
            if dst + i >= spliced.len() || src + i >= b.len() {
                break;
            }
            spliced[dst + i] = b[src + i];
        }
        assert_decode_is_total(a_name, &format!("splice round {round}"), &spliced);
    }
}

/// The leveled (container v2) encodings fuzz like the flat ones: random
/// mutations of every builder's tier-3 variant — which exercises the
/// leveled Load/Store TLV tags and the v2 text header — never panic, and
/// accepted mutants round-trip. Mutations that land on a level byte must
/// decode into *some* level (levels are total over `u8`), never panic.
#[test]
fn leveled_encodings_fuzz_like_flat_ones() {
    use symla_memory::Level;
    let mut rng = seeded_rng(0xF0225);
    for (name, schedule) in builder_schedules() {
        let leveled = schedule.with_transfer_level(Level::new(3));
        let bytes = leveled.to_bytes();
        let text = leveled.dump();
        for round in 0..150 {
            // Binary: 1..=4 byte mutations per round.
            let mut mutated = bytes.clone();
            let hits = 1 + (rng.next_u64() % 4) as usize;
            for _ in 0..hits {
                let pos = (rng.next_u64() % bytes.len() as u64) as usize;
                mutated[pos] = rng.next_u64() as u8;
            }
            assert_decode_is_total(name, &format!("leveled mutate round {round}"), &mutated);

            // Binary: random truncation.
            let cut = (rng.next_u64() % (bytes.len() as u64 + 1)) as usize;
            assert_decode_is_total(name, &format!("leveled truncate to {cut}"), &bytes[..cut]);

            // Text: mutate a handful of characters of the v2 dump. The
            // replacement alphabet includes `@` and `l` so the ` @l3`
            // suffixes themselves get corrupted, not just the step bodies.
            let mut chars: Vec<char> = text.chars().collect();
            for _ in 0..4 {
                let pos = (rng.next_u64() % chars.len() as u64) as usize;
                chars[pos] = b" 0123456789azAZ#:x,-@l"[(rng.next_u64() % 22) as usize] as char;
            }
            let mutated_text: String = chars.into_iter().collect();
            if let Ok(parsed) = Schedule::<f64>::parse(&mutated_text) {
                let redumped = parsed.dump();
                let again = Schedule::<f64>::parse(&redumped).unwrap_or_else(|e| {
                    panic!("{name}: leveled round {round}: accepted text failed to re-parse: {e}")
                });
                assert_eq!(
                    again, parsed,
                    "{name}: leveled round {round}: text round trip"
                );
            }
        }
    }
}

/// The text path is equally total: random character mutations, line drops,
/// line duplications and truncations of `dump()` either parse into a
/// schedule whose own dump re-parses, or report a typed parse error — never
/// a panic.
#[test]
fn text_dump_fuzz_never_panics() {
    let mut rng = seeded_rng(0xF0224);
    for (name, schedule) in builder_schedules() {
        let text = schedule.dump();
        let lines: Vec<&str> = text.lines().collect();
        for round in 0..200 {
            let mutated: String = match round % 4 {
                // Mutate a handful of characters.
                0 => {
                    let mut chars: Vec<char> = text.chars().collect();
                    for _ in 0..4 {
                        let pos = (rng.next_u64() % chars.len() as u64) as usize;
                        let replacement =
                            b" 0123456789azAZ#:x,-"[(rng.next_u64() % 20) as usize] as char;
                        chars[pos] = replacement;
                    }
                    chars.into_iter().collect()
                }
                // Drop a random line.
                1 => {
                    let drop = (rng.next_u64() % lines.len() as u64) as usize;
                    lines
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != drop)
                        .map(|(_, l)| *l)
                        .collect::<Vec<_>>()
                        .join("\n")
                }
                // Duplicate a random line in place.
                2 => {
                    let dup = (rng.next_u64() % lines.len() as u64) as usize;
                    let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
                    for (i, l) in lines.iter().enumerate() {
                        out.push(l);
                        if i == dup {
                            out.push(l);
                        }
                    }
                    out.join("\n")
                }
                // Truncate mid-character-stream.
                _ => {
                    let cut = (rng.next_u64() % (text.len() as u64 + 1)) as usize;
                    let mut cut = cut;
                    while !text.is_char_boundary(cut) {
                        cut -= 1;
                    }
                    text[..cut].to_string()
                }
            };
            if let Ok(parsed) = Schedule::<f64>::parse(&mutated) {
                let redumped = parsed.dump();
                let again = Schedule::<f64>::parse(&redumped).unwrap_or_else(|e| {
                    panic!("{name}: round {round}: accepted text failed to re-parse: {e}")
                });
                assert_eq!(again, parsed, "{name}: round {round}: text round trip");
            }
        }
    }
}
