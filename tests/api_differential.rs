//! Differential sweep over the high-level API: for every builder the six
//! entry-point variants — `*_out_of_core`, `*_optimized`, `*_prefetched`,
//! `*_cached`, `*_timed` and `*_autotuned` — must produce **bitwise
//! identical** results and mutually consistent [`IoStats`]:
//!
//! * plain / optimized(`none()`) / cached / timed replay the same schedule,
//!   so their stats must be *equal* field for field;
//! * the prefetched variant moves the same volume (prefetching reorders
//!   load issue, never load totals) and stays within the capacity;
//! * the autotuned variant's measured stats must equal the stats its tuner
//!   scored by dry run alone (the zero-execution-scoring invariant), and
//!   its result must still match every other variant bitwise.

use symla::prelude::*;

/// The SYRK variants differentially, for one algorithm.
fn syrk_differential(algorithm: SyrkAlgorithm, n: usize, m: usize, s: usize) {
    let name = algorithm.name();
    let a: Matrix<f64> = generate::random_matrix_seeded(n, m, 8100 + n as u64);
    let mut rng = generate::seeded_rng(8200 + n as u64);
    let c0: SymMatrix<f64> = generate::random_symmetric(n, &mut rng);
    let none = PassPipeline::none();
    let model = MachineModel::dram();

    let mut c_plain = c0.clone();
    let report = syrk_out_of_core(&a, &mut c_plain, 1.0, s, algorithm).unwrap();

    let mut c_opt = c0.clone();
    let opt = syrk_out_of_core_optimized(&a, &mut c_opt, 1.0, s, algorithm, &none).unwrap();
    assert_eq!(c_opt, c_plain, "{name}: optimized(none) result");
    assert_eq!(
        opt.report.stats, report.stats,
        "{name}: optimized(none) stats"
    );

    let mut c_pre = c0.clone();
    let pre = syrk_out_of_core_prefetched(&a, &mut c_pre, 1.0, s, algorithm, &none, 1).unwrap();
    assert_eq!(c_pre, c_plain, "{name}: prefetched result");
    assert_eq!(
        pre.report.stats.volume, report.stats.volume,
        "{name}: prefetched volume"
    );
    assert!(
        pre.report.stats.peak_resident <= s,
        "{name}: prefetched capacity"
    );

    let service = PlanService::<f64>::in_memory();
    let mut c_cached = c0.clone();
    let served =
        syrk_out_of_core_cached(&service, &a, &mut c_cached, 1.0, s, algorithm, &none, 0).unwrap();
    assert_eq!(c_cached, c_plain, "{name}: cached result");
    assert_eq!(served.stats, report.stats, "{name}: cached stats");

    let mut c_timed = c0.clone();
    let (timed, clock) =
        syrk_out_of_core_timed(&a, &mut c_timed, 1.0, s, algorithm, &none, 0, &model).unwrap();
    assert_eq!(c_timed, c_plain, "{name}: timed result");
    assert_eq!(timed.report.stats, report.stats, "{name}: timed stats");
    assert!(clock.consistent(), "{name}: measured vs modelled time");

    let mut c_tuned = c0.clone();
    let space = syrk_tuning_space(n, s, algorithm);
    let tuned = syrk_out_of_core_autotuned(
        &a,
        &mut c_tuned,
        1.0,
        s,
        algorithm,
        &space,
        &MachineModel::nvme(),
    )
    .unwrap();
    assert_eq!(c_tuned, c_plain, "{name}: autotuned result");
    assert_eq!(
        tuned.run.report.stats,
        tuned.tuning.winner().stats,
        "{name}: autotuned measured stats equal the dry-run-scored stats"
    );
    assert!(
        tuned.run.report.stats.peak_resident <= s,
        "{name}: autotuned capacity"
    );
}

/// The Cholesky variants differentially, for one algorithm.
fn cholesky_differential(algorithm: CholeskyAlgorithm, n: usize, s: usize) {
    let name = algorithm.name();
    let spd: SymMatrix<f64> = generate::random_spd_seeded(n, 8300 + n as u64);
    let none = PassPipeline::none();
    let model = MachineModel::dram();

    let (l_plain, report) = cholesky_out_of_core(&spd, s, algorithm).unwrap();

    let (l_opt, opt) = cholesky_out_of_core_optimized(&spd, s, algorithm, &none).unwrap();
    assert_eq!(l_opt, l_plain, "{name}: optimized(none) factor");
    assert_eq!(
        opt.report.stats, report.stats,
        "{name}: optimized(none) stats"
    );

    let (l_pre, pre) = cholesky_out_of_core_prefetched(&spd, s, algorithm, &none, 1).unwrap();
    assert_eq!(l_pre, l_plain, "{name}: prefetched factor");
    assert_eq!(
        pre.report.stats.volume, report.stats.volume,
        "{name}: prefetched volume"
    );
    assert!(
        pre.report.stats.peak_resident <= s,
        "{name}: prefetched capacity"
    );

    let service = PlanService::<f64>::in_memory();
    let (l_cached, served) =
        cholesky_out_of_core_cached(&service, &spd, s, algorithm, &none, 0).unwrap();
    assert_eq!(l_cached, l_plain, "{name}: cached factor");
    assert_eq!(served.stats, report.stats, "{name}: cached stats");

    let (l_timed, timed, clock) =
        cholesky_out_of_core_timed(&spd, s, algorithm, &none, 0, &model).unwrap();
    assert_eq!(l_timed, l_plain, "{name}: timed factor");
    assert_eq!(timed.report.stats, report.stats, "{name}: timed stats");
    assert!(clock.consistent(), "{name}: measured vs modelled time");

    let space = cholesky_tuning_space(n, s, algorithm);
    let (l_tuned, tuned) =
        cholesky_out_of_core_autotuned(&spd, s, algorithm, &space, &MachineModel::nvme()).unwrap();
    assert_eq!(l_tuned, l_plain, "{name}: autotuned factor");
    assert_eq!(
        tuned.run.report.stats,
        tuned.tuning.winner().stats,
        "{name}: autotuned measured stats equal the dry-run-scored stats"
    );
    assert!(
        tuned.run.report.stats.peak_resident <= s,
        "{name}: autotuned capacity"
    );
}

#[test]
fn syrk_variants_agree_bitwise_across_all_algorithms() {
    syrk_differential(SyrkAlgorithm::Tbs, 30, 6, 60);
    syrk_differential(SyrkAlgorithm::TbsTiled, 40, 6, 60);
    syrk_differential(SyrkAlgorithm::SquareBlocks, 20, 5, 35);
}

#[test]
fn cholesky_variants_agree_bitwise_across_all_algorithms() {
    cholesky_differential(CholeskyAlgorithm::Lbc, 36, 48);
    cholesky_differential(CholeskyAlgorithm::LbcTiled, 36, 48);
    cholesky_differential(CholeskyAlgorithm::LbcSquare, 36, 48);
    cholesky_differential(CholeskyAlgorithm::Bereux, 24, 35);
}

#[test]
fn gemm_variants_agree_bitwise() {
    let (n, m, p, s) = (9usize, 7usize, 11usize, 35usize);
    let a: Matrix<f64> = generate::random_matrix_seeded(n, m, 8400);
    let b: Matrix<f64> = generate::random_matrix_seeded(m, p, 8401);
    let c0: Matrix<f64> = generate::random_matrix_seeded(n, p, 8402);
    let none = PassPipeline::none();
    let model = MachineModel::dram();

    let mut c_plain = c0.clone();
    let report = gemm_out_of_core(&a, &b, &mut c_plain, 1.0, s).unwrap();

    let mut c_opt = c0.clone();
    let opt = gemm_out_of_core_optimized(&a, &b, &mut c_opt, 1.0, s, &none).unwrap();
    assert_eq!(c_opt, c_plain, "gemm: optimized(none) result");
    assert_eq!(
        opt.report.stats, report.stats,
        "gemm: optimized(none) stats"
    );

    let mut c_pre = c0.clone();
    let pre = gemm_out_of_core_prefetched(&a, &b, &mut c_pre, 1.0, s, &none, 1).unwrap();
    assert_eq!(c_pre, c_plain, "gemm: prefetched result");
    assert_eq!(
        pre.report.stats.volume, report.stats.volume,
        "gemm: prefetched volume"
    );
    assert!(
        pre.report.stats.peak_resident <= s,
        "gemm: prefetched capacity"
    );

    let service = PlanService::<f64>::in_memory();
    let mut c_cached = c0.clone();
    let served =
        gemm_out_of_core_cached(&service, &a, &b, &mut c_cached, 1.0, s, &none, 0).unwrap();
    assert_eq!(c_cached, c_plain, "gemm: cached result");
    assert_eq!(served.stats, report.stats, "gemm: cached stats");

    let mut c_timed = c0.clone();
    let (timed, clock) =
        gemm_out_of_core_timed(&a, &b, &mut c_timed, 1.0, s, &none, 0, &model).unwrap();
    assert_eq!(c_timed, c_plain, "gemm: timed result");
    assert_eq!(timed.report.stats, report.stats, "gemm: timed stats");
    assert!(clock.consistent(), "gemm: measured vs modelled time");

    let mut c_tuned = c0.clone();
    let space = gemm_tuning_space(s);
    let tuned =
        gemm_out_of_core_autotuned(&a, &b, &mut c_tuned, 1.0, s, &space, &MachineModel::nvme())
            .unwrap();
    assert_eq!(c_tuned, c_plain, "gemm: autotuned result");
    assert_eq!(
        tuned.run.report.stats,
        tuned.tuning.winner().stats,
        "gemm: autotuned measured stats equal the dry-run-scored stats"
    );
    assert!(
        tuned.run.report.stats.peak_resident <= s,
        "gemm: autotuned capacity"
    );
}
