//! Trace-based audits of the paper's per-matrix invariants.
//!
//! `Engine::trace` synthesizes the exact transfer stream of a schedule
//! without executing it (no data, no machine), so instances can be larger
//! than anything the execute-mode tests touch. The audits hold for the
//! **seed** schedule of every algorithm *and* for its optimized form under
//! both stock pass pipelines:
//!
//! * **coherence** — the trace re-accumulates to the dry-run `IoStats`
//!   (volumes and event counts), and no post-transfer residency exceeds the
//!   dry run's peak;
//! * **per-matrix exactness** — each lower-triangle entry of the SYRK
//!   output `C` is loaded exactly once and stored exactly once, `A` is
//!   never written back, and both operands are fully covered;
//! * **lower bound** — total transfers are at least
//!   `mults / max_oi_symmetric_mults(S)` (Corollary 4.7: at most `√(S/2)`
//!   multiplications per transferred element, i.e. `Q_SYRK ≥ N²M/(√2·√S)`
//!   and `Q_Chol ≥ N³/(3·√2·√S)`), with the multiplication count taken
//!   from the schedule's own flop accounting;
//! * **monotone optimization** — the optimized trace never moves more
//!   elements than the seed trace, and the exactness invariants survive
//!   every pass.

use std::collections::HashMap;
use symla::prelude::*;
use symla_baselines::ooc_syrk_schedule;
use symla_core::passes::PassPipeline;
use symla_memory::{Direction, Trace};
use symla_sched::max_oi_symmetric_mults;

/// Per-cell transfer multiplicities of one matrix in one direction,
/// keyed by matrix coordinates (`Region::cells` buffer-layout order).
fn cell_counts(
    trace: &Trace,
    matrix: MatrixId,
    direction: Direction,
) -> HashMap<(usize, usize), u64> {
    let mut counts = HashMap::new();
    for event in trace.events() {
        if event.matrix == matrix.raw() && event.direction == direction {
            for cell in event.region.cells() {
                *counts.entry(cell).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// Trace ↔ dry-run coherence plus the operational-intensity lower bound
/// (shared by every audit). Returns the trace for per-matrix checks.
fn coherent_trace(name: &str, schedule: &Schedule<f64>, s: usize) -> Trace {
    let dry = Engine::dry_run(schedule, "main");
    let trace = Engine::trace(schedule, "main");
    assert_eq!(
        trace.total_loaded(),
        dry.volume.loads,
        "{name}: trace loads must re-accumulate to the dry run"
    );
    assert_eq!(
        trace.total_stored(),
        dry.volume.stores,
        "{name}: trace stores must re-accumulate to the dry run"
    );
    assert_eq!(
        trace.len() as u64,
        dry.load_events + dry.store_events,
        "{name}: one trace event per transfer"
    );
    assert!(
        trace.peak_resident() <= dry.peak_resident,
        "{name}: a transfer left more resident than the dry-run peak"
    );

    // Corollary 4.7 / 4.8 via Lemma 3.1: no schedule can perform more than
    // √(S/2) multiplications per transferred element.
    let total = (dry.volume.loads + dry.volume.stores) as f64;
    let bound = dry.flops.mults as f64 / max_oi_symmetric_mults(s as f64);
    assert!(
        total >= bound,
        "{name}: {total} transferred elements beat the OI lower bound {bound:.1}"
    );
    trace
}

/// The seed schedule plus its optimized forms under both stock pipelines,
/// with monotone total traffic.
fn seed_and_optimized(name: &str, seed: Schedule<f64>) -> Vec<(String, Schedule<f64>)> {
    let seed_dry = Engine::dry_run(&seed, "main");
    let budget = 2 * seed_dry.peak_resident;
    let mut out = vec![(format!("{name} (seed)"), seed)];
    for (tag, pipeline) in [
        ("standard", PassPipeline::standard()),
        ("locality", PassPipeline::locality(Some(budget))),
    ] {
        let optimized = pipeline
            .manager::<f64>()
            .optimize(&out[0].1, "main")
            .unwrap_or_else(|e| panic!("{name}/{tag}: {e}"));
        assert!(
            !optimized.regressed(),
            "{name}/{tag}: pipeline increased dry-run transfers"
        );
        out.push((format!("{name} ({tag})"), optimized.schedule));
    }
    out
}

/// Audits one SYRK-family schedule: `A` (id 0) read-only and fully covered,
/// every lower-triangle entry of `C` (id 1) loaded exactly once and stored
/// exactly once.
fn audit_syrk(name: &str, schedule: &Schedule<f64>, n: usize, m: usize, s: usize) {
    let trace = coherent_trace(name, schedule, s);
    let a_id = MatrixId::synthetic(0);
    let c_id = MatrixId::synthetic(1);

    assert!(
        cell_counts(&trace, a_id, Direction::Store).is_empty(),
        "{name}: the input panel A must never be written back"
    );
    let a_loads = cell_counts(&trace, a_id, Direction::Load);
    assert_eq!(a_loads.len(), n * m, "{name}: A must be fully read");
    assert!(
        a_loads.values().all(|&c| c >= 1),
        "{name}: impossible zero-count A cell"
    );

    for (direction, what) in [(Direction::Load, "loaded"), (Direction::Store, "stored")] {
        let c_cells = cell_counts(&trace, c_id, direction);
        assert_eq!(
            c_cells.len(),
            n * (n + 1) / 2,
            "{name}: C must be fully {what} (lower triangle)"
        );
        for (&(i, j), &count) in &c_cells {
            assert!(
                i >= j && i < n,
                "{name}: C cell ({i},{j}) outside the lower triangle"
            );
            assert_eq!(
                count, 1,
                "{name}: C entry ({i},{j}) {what} {count} times, expected 1"
            );
        }
    }
}

/// Audits one Cholesky schedule: the window (id 0) is fully loaded and the
/// whole factor is written back at least once; traffic never touches the
/// strict upper triangle.
fn audit_cholesky(name: &str, schedule: &Schedule<f64>, n: usize, s: usize) {
    let trace = coherent_trace(name, schedule, s);
    let id = MatrixId::synthetic(0);
    for (direction, what) in [(Direction::Load, "loaded"), (Direction::Store, "stored")] {
        let cells = cell_counts(&trace, id, direction);
        assert_eq!(
            cells.len(),
            n * (n + 1) / 2,
            "{name}: the factor must be fully {what}"
        );
        assert!(
            cells.keys().all(|&(i, j)| i >= j && i < n),
            "{name}: traffic outside the lower triangle"
        );
    }
}

#[test]
fn ooc_syrk_trace_audit_seed_and_optimized() {
    let (n, m, s) = (144, 24, 150);
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let seed = ooc_syrk_schedule::<f64>(&a_ref, &c_ref, 1.0, &OocSyrkPlan::for_memory(s).unwrap())
        .unwrap();
    for (name, schedule) in seed_and_optimized("ooc_syrk", seed) {
        audit_syrk(&name, &schedule, n, m, s);
    }
}

#[test]
fn tbs_trace_audit_seed_and_optimized() {
    let (n, m, s) = (96, 12, 36);
    let plan = TbsPlan::for_memory(s).unwrap();
    assert!(
        plan.applicable(n),
        "instance must engage the triangle phase"
    );
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let seed = tbs_schedule::<f64>(&a_ref, &c_ref, 1.0, &plan).unwrap();
    for (name, schedule) in seed_and_optimized("tbs", seed) {
        audit_syrk(&name, &schedule, n, m, s);
    }
}

#[test]
fn tbs_tiled_trace_audit_seed_and_optimized() {
    let (n, m, s) = (120, 16, 180);
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let seed = tbs_tiled_schedule::<f64>(
        &a_ref,
        &c_ref,
        1.0,
        &TbsTiledPlan::for_problem(s, n).unwrap(),
    )
    .unwrap();
    for (name, schedule) in seed_and_optimized("tbs_tiled", seed) {
        audit_syrk(&name, &schedule, n, m, s);
    }
}

#[test]
fn lbc_trace_audit_seed_and_optimized() {
    let (n, s) = (72, 100);
    let window = SymWindowRef::full(MatrixId::synthetic(0), n);
    let seed = lbc_schedule::<f64>(&window, &LbcPlan::for_problem(n, s).unwrap()).unwrap();
    for (name, schedule) in seed_and_optimized("lbc", seed) {
        audit_cholesky(&name, &schedule, n, s);
    }
}

/// The closed-form paper bounds (`bounds.rs`) agree with the OI formulation
/// on traced instances: the measured transfer totals dominate both.
#[test]
fn traced_totals_dominate_closed_form_bounds() {
    let (n, m, s) = (144, 24, 150);
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let schedule =
        ooc_syrk_schedule::<f64>(&a_ref, &c_ref, 1.0, &OocSyrkPlan::for_memory(s).unwrap())
            .unwrap();
    let trace = Engine::trace(&schedule, "main");
    let total = (trace.total_loaded() + trace.total_stored()) as f64;
    assert!(total >= bounds::syrk_lower_bound(n as f64, m as f64, s as f64));

    let (n, s) = (72, 100);
    let window = SymWindowRef::full(MatrixId::synthetic(0), n);
    let schedule = lbc_schedule::<f64>(&window, &LbcPlan::for_problem(n, s).unwrap()).unwrap();
    let trace = Engine::trace(&schedule, "main");
    let total = (trace.total_loaded() + trace.total_stored()) as f64;
    assert!(total >= bounds::cholesky_lower_bound(n as f64, s as f64));
}
