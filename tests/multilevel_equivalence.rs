//! Multi-level hierarchy equivalence: the tier stack must be invisible
//! when degenerate and honestly accounted when engaged.
//!
//! For every one of the eight schedule builders this asserts:
//!
//! 1. **collapse identity** — replaying the (default-level) schedule
//!    through a [`TieredMachine`] with two uncapped deep tiers produces
//!    bitwise-identical slow-memory results and field-for-field equal
//!    [`IoStats`] to the plain [`OocMachine`] replay;
//! 2. **leveled attribution** — re-leveling every transfer to tier 2
//!    ([`Schedule::with_transfer_level`]) still reproduces the results
//!    bitwise, moves exactly the same total volume, and attributes all of
//!    it to the tier in the per-level counters (which stay empty on the
//!    flat replay);
//! 3. **staging windows are enforced** — against a capped intermediate
//!    tier, a tier-3 replay fails with
//!    [`MemoryError::TierCapacityExceeded`] while the same schedule at the
//!    default level sails through untouched.
//!
//! The A/B binary `ab_multilevel` gates 1 and 2 in CI on every push; this
//! test keeps them enforced under a plain `cargo test` as well.

use symla::matrix::generate::{
    random_lower_triangular, random_matrix_seeded, random_spd_seeded, random_symmetric, seeded_rng,
};
use symla::prelude::*;
use symla_baselines::{
    ooc_chol_schedule, ooc_gemm_schedule, ooc_lu_schedule, ooc_syrk_schedule, ooc_trsm_schedule,
};
use symla_core::engine::{Engine, Schedule};
use symla_memory::{IoStats, Level, MemoryError, TieredMachine};
use symla_sched::EngineError;

/// A slow-memory operand in registration order (position = machine id).
#[derive(Clone, PartialEq)]
enum Mat {
    Dense(Matrix<f64>),
    Sym(SymMatrix<f64>),
}

struct Case {
    name: &'static str,
    memory: usize,
    schedule: Schedule<f64>,
    mats: Vec<Mat>,
}

fn insert_all(machine: &mut OocMachine<f64>, mats: &[Mat]) {
    for (i, mat) in mats.iter().enumerate() {
        let got = match mat {
            Mat::Dense(m) => machine.insert_dense(m.clone()),
            Mat::Sym(s) => machine.insert_symmetric(s.clone()),
        };
        assert_eq!(got, MatrixId::synthetic(i as u64));
    }
}

fn take_all(machine: &mut OocMachine<f64>, mats: &[Mat]) -> Vec<Mat> {
    mats.iter()
        .enumerate()
        .map(|(i, mat)| {
            let id = MatrixId::synthetic(i as u64);
            match mat {
                Mat::Dense(_) => Mat::Dense(machine.take_dense(id).unwrap()),
                Mat::Sym(_) => Mat::Sym(machine.take_symmetric(id).unwrap()),
            }
        })
        .collect()
}

impl Case {
    /// Plain replay through an [`OocMachine`]: results and stats.
    fn run_flat(&self) -> (Vec<Mat>, IoStats) {
        let mut machine = OocMachine::<f64>::new(MachineConfig::with_capacity(self.memory));
        insert_all(&mut machine, &self.mats);
        Engine::execute(&mut machine, &self.schedule)
            .unwrap_or_else(|e| panic!("{}: flat replay: {e}", self.name));
        let stats = machine.stats().clone();
        (take_all(&mut machine, &self.mats), stats)
    }

    /// Replay through a [`TieredMachine`] with two uncapped deep tiers,
    /// optionally re-leveling every transfer first.
    fn run_tiered(&self, level: Option<Level>) -> (Vec<Mat>, IoStats) {
        let inner = OocMachine::<f64>::new(MachineConfig::with_capacity(self.memory));
        let mut machine = TieredMachine::new(inner).with_tier(None).with_tier(None);
        insert_all(machine.inner_mut(), &self.mats);
        let schedule = match level {
            Some(l) => self.schedule.with_transfer_level(l),
            None => self.schedule.clone(),
        };
        Engine::execute(&mut machine, &schedule)
            .unwrap_or_else(|e| panic!("{}: tiered replay: {e}", self.name));
        let stats = machine.inner().stats().clone();
        let mut inner = machine.into_inner();
        (take_all(&mut inner, &self.mats), stats)
    }
}

/// The eight schedule builders on small instances with real operands.
fn builder_cases() -> Vec<Case> {
    let (n, m, s) = (30, 6, 60);
    let a: Matrix<f64> = random_matrix_seeded(n, m, 9100);
    let c: SymMatrix<f64> = random_symmetric(n, &mut seeded_rng(9101));
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let update_mats = vec![Mat::Dense(a), Mat::Sym(c)];

    let spd: SymMatrix<f64> = random_spd_seeded(24, 9102);
    let window = SymWindowRef::full(MatrixId::synthetic(0), 24);

    let lfac = random_lower_triangular::<f64>(8, &mut seeded_rng(9103));
    let lsym = SymMatrix::from_lower_fn(8, |i, j| lfac.get(i, j));
    let x: Matrix<f64> = random_matrix_seeded(9, 8, 9104);

    let ga: Matrix<f64> = random_matrix_seeded(9, 7, 9105);
    let gb: Matrix<f64> = random_matrix_seeded(7, 11, 9106);
    let gc: Matrix<f64> = random_matrix_seeded(9, 11, 9107);

    let mut lu = random_matrix_seeded::<f64>(12, 12, 9108);
    for i in 0..12 {
        lu[(i, i)] += 12.0;
    }

    vec![
        Case {
            name: "ooc_syrk",
            memory: s,
            schedule: ooc_syrk_schedule(&a_ref, &c_ref, 1.5, &OocSyrkPlan::for_memory(s).unwrap())
                .unwrap(),
            mats: update_mats.clone(),
        },
        Case {
            name: "tbs",
            memory: s,
            schedule: tbs_schedule(&a_ref, &c_ref, -0.5, &TbsPlan::for_memory(s).unwrap()).unwrap(),
            mats: update_mats.clone(),
        },
        Case {
            name: "tbs_tiled",
            memory: s,
            schedule: tbs_tiled_schedule(
                &a_ref,
                &c_ref,
                1.0,
                &TbsTiledPlan::for_problem(s, n).unwrap(),
            )
            .unwrap(),
            mats: update_mats,
        },
        Case {
            name: "lbc",
            memory: 48,
            schedule: lbc_schedule(
                &SymWindowRef::full(MatrixId::synthetic(0), 36),
                &LbcPlan::for_problem(36, 48).unwrap(),
            )
            .unwrap(),
            mats: vec![Mat::Sym(random_spd_seeded(36, 9109))],
        },
        Case {
            name: "ooc_chol",
            memory: 35,
            schedule: ooc_chol_schedule(&window, &OocCholPlan::for_memory(35).unwrap()),
            mats: vec![Mat::Sym(spd)],
        },
        Case {
            name: "ooc_trsm",
            memory: 24,
            schedule: ooc_trsm_schedule(
                &SymWindowRef::full(MatrixId::synthetic(0), 8),
                &PanelRef::dense(MatrixId::synthetic(1), 9, 8),
                &OocTrsmPlan::for_memory(24).unwrap(),
            )
            .unwrap(),
            mats: vec![Mat::Sym(lsym), Mat::Dense(x)],
        },
        Case {
            name: "ooc_gemm",
            memory: 35,
            schedule: ooc_gemm_schedule(
                &PanelRef::dense(MatrixId::synthetic(0), 9, 7),
                &PanelRef::dense(MatrixId::synthetic(1), 7, 11),
                &PanelRef::dense(MatrixId::synthetic(2), 9, 11),
                1.0,
                &OocGemmPlan::for_memory(35).unwrap(),
            )
            .unwrap(),
            mats: vec![Mat::Dense(ga), Mat::Dense(gb), Mat::Dense(gc)],
        },
        Case {
            name: "ooc_lu",
            memory: 35,
            schedule: ooc_lu_schedule(
                &PanelRef::dense(MatrixId::synthetic(0), 12, 12),
                &OocLuPlan::for_memory(35).unwrap(),
            )
            .unwrap(),
            mats: vec![Mat::Dense(lu)],
        },
    ]
}

/// Invariant 1: a degenerate hierarchy changes nothing — bitwise results
/// and field-for-field IoStats (volume, events, peak, phases, levels).
#[test]
fn degenerate_hierarchy_is_invisible_for_every_builder() {
    for case in builder_cases() {
        let (flat_result, flat_stats) = case.run_flat();
        let (collapsed_result, collapsed_stats) = case.run_tiered(None);
        assert!(
            collapsed_result == flat_result,
            "{}: collapse result diverged",
            case.name
        );
        assert_eq!(collapsed_stats, flat_stats, "{}: collapse stats", case.name);
        // The flat replay never touches a non-default tier.
        assert_eq!(flat_stats.level(2), Default::default(), "{}", case.name);
    }
}

/// Invariant 2: re-leveling every transfer to tier 2 reproduces the
/// results bitwise, moves the same volume, and attributes all of it to
/// the tier.
#[test]
fn tier2_replay_is_bitwise_equal_and_fully_attributed() {
    let deep = Level::new(2);
    for case in builder_cases() {
        let (flat_result, flat_stats) = case.run_flat();
        let (leveled_result, leveled_stats) = case.run_tiered(Some(deep));
        assert!(
            leveled_result == flat_result,
            "{}: leveled result diverged",
            case.name
        );
        assert_eq!(
            leveled_stats.volume, flat_stats.volume,
            "{}: leveled total volume",
            case.name
        );
        let tier = leveled_stats.level(deep.raw());
        assert_eq!(
            tier.loads, flat_stats.volume.loads,
            "{}: tier loads",
            case.name
        );
        assert_eq!(
            tier.stores, flat_stats.volume.stores,
            "{}: tier stores",
            case.name
        );
    }
}

/// Invariant 3: a capped intermediate tier rejects tier-3 transfers with a
/// typed error, while the default-level schedule never touches the tier
/// stack and executes unchanged on the same machine shape.
#[test]
fn capped_staging_windows_reject_deep_transfers() {
    let case = &builder_cases()[0];

    // Tier 2 capped at zero elements: any tier-3 transfer must fail.
    let inner = OocMachine::<f64>::new(MachineConfig::with_capacity(case.memory));
    let mut machine = TieredMachine::new(inner).with_tier(Some(0)).with_tier(None);
    insert_all(machine.inner_mut(), &case.mats);
    let deep = case.schedule.with_transfer_level(Level::new(3));
    let err = Engine::execute(&mut machine, &deep).expect_err("capped tier accepted a transfer");
    assert!(
        matches!(
            err,
            EngineError::Memory(MemoryError::TierCapacityExceeded { level: 2, .. })
        ),
        "unexpected error: {err:?}"
    );

    // The same capped machine executes the default-level schedule in full:
    // level-1 transfers pass through no staging window.
    let inner = OocMachine::<f64>::new(MachineConfig::with_capacity(case.memory));
    let mut machine = TieredMachine::new(inner).with_tier(Some(0)).with_tier(None);
    insert_all(machine.inner_mut(), &case.mats);
    Engine::execute(&mut machine, &case.schedule).expect("default level hit the tier stack");
    let (flat_result, flat_stats) = case.run_flat();
    assert_eq!(machine.inner().stats(), &flat_stats, "capped-machine stats");
    let mut inner = machine.into_inner();
    assert!(
        take_all(&mut inner, &case.mats) == flat_result,
        "capped-machine result diverged"
    );
}
