//! Wall-clock model equivalence: the static price of a schedule must be the
//! time a latency-modelled execution actually measures — bitwise.
//!
//! For seeded instances of all eight schedule builders this asserts, at
//! `lookahead ∈ {0, 1, 2}` under both machine-model presets:
//!
//! 1. **model = measurement** — [`modelled_time`] on the schedule equals the
//!    [`LatencyMachine`]'s measured [`TimeStats`] with `f64::to_bits`
//!    equality on every component (io / compute / hidden) and the same
//!    window count;
//! 2. **bitwise results** — wrapping the machine in a `LatencyMachine`
//!    changes no numerical output: slow memory after the timed run is
//!    bitwise-identical to the plain (`lookahead = 0`) run;
//! 3. **monotone wall-clock** — the modelled total never increases with the
//!    lookahead (prefetch may only hide I/O, never add any);
//! 4. **positive speedup** — tiled TBS and OOC-GEMM (the update-style
//!    kernels, whose groups leave slack) hide strictly positive time
//!    already at `lookahead = 1`;
//! 5. **timed API** — the one-call `*_out_of_core_timed` entry points
//!    report `WallClock::consistent()` and reproduce the untimed results.

use symla::matrix::generate;
use symla::prelude::*;
use symla_baselines::{
    ooc_chol_schedule, ooc_gemm_schedule, ooc_lu_schedule, ooc_syrk_schedule, ooc_trsm_schedule,
};

/// One sweep case: a schedule, the capacity it was planned for, its operands
/// (insertion order = synthetic ids) and whether the acceptance gate demands
/// strictly positive hidden time at `lookahead = 1`.
struct Case {
    name: &'static str,
    schedule: Schedule<f64>,
    capacity: usize,
    operands: Vec<Operand>,
    must_hide: bool,
}

#[derive(Clone, PartialEq)]
enum Operand {
    Dense(Matrix<f64>),
    Sym(SymMatrix<f64>),
}

fn sweep_cases() -> Vec<Case> {
    let (n, m, s) = (36, 6, 60);
    let a = generate::random_matrix_seeded::<f64>(n, m, 900);
    let c0 = generate::random_symmetric::<f64>(n, &mut generate::seeded_rng(901));
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let update_ops = vec![Operand::Dense(a), Operand::Sym(c0)];

    let mut cases = vec![
        Case {
            name: "TBS",
            schedule: tbs_schedule(&a_ref, &c_ref, -1.0, &TbsPlan::for_memory(s).unwrap()).unwrap(),
            capacity: s,
            operands: update_ops.clone(),
            must_hide: false,
        },
        Case {
            name: "TBS(tiled)",
            schedule: tbs_tiled_schedule(
                &a_ref,
                &c_ref,
                1.0,
                &TbsTiledPlan::for_problem(s, n).unwrap(),
            )
            .unwrap(),
            capacity: s,
            operands: update_ops.clone(),
            must_hide: true,
        },
        Case {
            name: "OOC_SYRK",
            schedule: ooc_syrk_schedule(&a_ref, &c_ref, 1.5, &OocSyrkPlan::for_memory(s).unwrap())
                .unwrap(),
            capacity: s,
            operands: update_ops,
            must_hide: false,
        },
    ];

    let (gn, gb, gp, gs) = (20, 6, 10, 40);
    cases.push(Case {
        name: "OOC_GEMM",
        schedule: ooc_gemm_schedule(
            &PanelRef::dense(MatrixId::synthetic(0), gn, gb),
            &PanelRef::dense(MatrixId::synthetic(1), gb, gp),
            &PanelRef::dense(MatrixId::synthetic(2), gn, gp),
            2.0,
            &OocGemmPlan::for_memory(gs).unwrap(),
        )
        .unwrap(),
        capacity: gs,
        operands: vec![
            Operand::Dense(generate::random_matrix_seeded::<f64>(gn, gb, 902)),
            Operand::Dense(generate::random_matrix_seeded::<f64>(gb, gp, 903)),
            Operand::Dense(generate::random_matrix_seeded::<f64>(gn, gp, 904)),
        ],
        must_hide: true,
    });

    let (fn_, fs) = (30, 40);
    let spd = generate::random_spd_seeded::<f64>(fn_, 905);
    let window = SymWindowRef::full(MatrixId::synthetic(0), fn_);
    cases.push(Case {
        name: "OOC_CHOL",
        schedule: ooc_chol_schedule(&window, &OocCholPlan::for_memory(fs).unwrap()),
        capacity: fs,
        operands: vec![Operand::Sym(spd.clone())],
        must_hide: false,
    });
    cases.push(Case {
        name: "LBC",
        schedule: lbc_schedule(&window, &LbcPlan::for_problem(fn_, fs).unwrap()).unwrap(),
        capacity: fs,
        operands: vec![Operand::Sym(spd)],
        must_hide: false,
    });

    let mut lu = generate::random_matrix_seeded::<f64>(18, 18, 906);
    for i in 0..18 {
        lu[(i, i)] += 18.0;
    }
    cases.push(Case {
        name: "OOC_LU",
        schedule: ooc_lu_schedule(
            &PanelRef::dense(MatrixId::synthetic(0), 18, 18),
            &OocLuPlan::for_memory(40).unwrap(),
        )
        .unwrap(),
        capacity: 40,
        operands: vec![Operand::Dense(lu)],
        must_hide: false,
    });

    let (tm, tb, ts) = (12, 10, 40);
    let lfac = generate::random_lower_triangular::<f64>(tb, &mut generate::seeded_rng(907));
    let lsym = SymMatrix::from_lower_fn(tb, |i, j| lfac.get(i, j));
    cases.push(Case {
        name: "OOC_TRSM",
        schedule: ooc_trsm_schedule(
            &SymWindowRef::full(MatrixId::synthetic(0), tb),
            &PanelRef::dense(MatrixId::synthetic(1), tm, tb),
            &OocTrsmPlan::for_memory(ts).unwrap(),
        )
        .unwrap(),
        capacity: ts,
        operands: vec![
            Operand::Sym(lsym),
            Operand::Dense(generate::random_matrix_seeded::<f64>(tm, tb, 908)),
        ],
        must_hide: false,
    });
    cases
}

/// Executes the case at one lookahead inside a [`LatencyMachine`], returning
/// the final operands and the measured time.
fn run_timed(case: &Case, model: MachineModel, lookahead: usize) -> (Vec<Operand>, TimeStats) {
    let config = EngineConfig::with_lookahead(lookahead);
    let mut machine = LatencyMachine::new(
        OocMachine::<f64>::new(MachineConfig::with_capacity(case.capacity)),
        model,
    );
    let ids: Vec<MatrixId> = case
        .operands
        .iter()
        .map(|o| match o {
            Operand::Dense(m) => machine.inner_mut().insert_dense(m.clone()),
            Operand::Sym(s) => machine.inner_mut().insert_symmetric(s.clone()),
        })
        .collect();
    Engine::execute_with(&mut machine, &case.schedule, &config).unwrap();
    let time = machine.time();
    let mut inner = machine.into_inner();
    let out = ids
        .iter()
        .zip(&case.operands)
        .map(|(&id, op)| match op {
            Operand::Dense(_) => Operand::Dense(inner.take_dense(id).unwrap()),
            Operand::Sym(_) => Operand::Sym(inner.take_symmetric(id).unwrap()),
        })
        .collect();
    (out, time)
}

fn assert_time_eq(measured: &TimeStats, modelled: &TimeStats, ctx: &str) {
    assert_eq!(
        measured.io_ns.to_bits(),
        modelled.io_ns.to_bits(),
        "{ctx}: io_ns {} vs {}",
        measured.io_ns,
        modelled.io_ns
    );
    assert_eq!(
        measured.compute_ns.to_bits(),
        modelled.compute_ns.to_bits(),
        "{ctx}: compute_ns {} vs {}",
        measured.compute_ns,
        modelled.compute_ns
    );
    assert_eq!(
        measured.hidden_ns.to_bits(),
        modelled.hidden_ns.to_bits(),
        "{ctx}: hidden_ns {} vs {}",
        measured.hidden_ns,
        modelled.hidden_ns
    );
    assert_eq!(measured.groups, modelled.groups, "{ctx}: window count");
}

#[test]
fn model_equals_measurement_for_every_builder() {
    for model in [MachineModel::dram(), MachineModel::nvme()] {
        for case in sweep_cases() {
            let (baseline, plain) = run_timed(&case, model, 0);
            assert_eq!(plain.hidden_ns, 0.0, "{}: L=0 cannot overlap", case.name);
            let mut prev_total = plain.total_ns();
            for lookahead in [0usize, 1, 2] {
                let ctx = format!("{} L={lookahead}", case.name);
                let (out, measured) = run_timed(&case, model, lookahead);

                // 1. static price == measured model time, bitwise.
                let modelled =
                    modelled_time(&case.schedule, &model, lookahead, Some(case.capacity));
                assert_time_eq(&measured, &modelled, &ctx);

                // 2. the timing wrapper changes no numbers.
                assert!(out == baseline, "{ctx}: result drifted");

                // 3. more lookahead never costs modelled time.
                assert!(
                    measured.total_ns() <= prev_total,
                    "{ctx}: total {} grew past {}",
                    measured.total_ns(),
                    prev_total
                );
                prev_total = measured.total_ns();

                // 4. the update kernels hide real time at lookahead >= 1.
                if lookahead >= 1 && case.must_hide {
                    assert!(
                        measured.hidden_ns > 0.0,
                        "{ctx}: expected strictly positive hidden time"
                    );
                    assert!(measured.speedup() > 1.0, "{ctx}: expected modelled speedup");
                }
            }
        }
    }
}

#[test]
fn timed_api_is_consistent_and_reproduces_untimed_results() {
    let model = MachineModel::nvme();
    let pipeline = PassPipeline::default();
    let a = generate::random_matrix_seeded::<f64>(32, 6, 910);
    let c0 = generate::random_symmetric::<f64>(32, &mut generate::seeded_rng(911));

    let mut c_untimed = c0.clone();
    syrk_out_of_core_prefetched(
        &a,
        &mut c_untimed,
        1.0,
        60,
        SyrkAlgorithm::TbsTiled,
        &pipeline,
        1,
    )
    .unwrap();
    let mut c_timed = c0;
    let (_, wall) = syrk_out_of_core_timed(
        &a,
        &mut c_timed,
        1.0,
        60,
        SyrkAlgorithm::TbsTiled,
        &pipeline,
        1,
        &model,
    )
    .unwrap();
    assert!(wall.consistent(), "SYRK: measured != modelled");
    assert!(wall.measured.hidden_ns > 0.0, "SYRK: no overlap at L=1");
    assert_eq!(c_timed, c_untimed, "SYRK: timed result drifted");

    let spd = generate::random_spd_seeded::<f64>(28, 912);
    let (l_untimed, _) =
        cholesky_out_of_core_prefetched(&spd, 40, CholeskyAlgorithm::Lbc, &pipeline, 1).unwrap();
    let (l_timed, _, wall) =
        cholesky_out_of_core_timed(&spd, 40, CholeskyAlgorithm::Lbc, &pipeline, 1, &model).unwrap();
    assert!(wall.consistent(), "Cholesky: measured != modelled");
    assert_eq!(l_timed, l_untimed, "Cholesky: timed factor drifted");

    let ga = generate::random_matrix_seeded::<f64>(14, 8, 913);
    let gb = generate::random_matrix_seeded::<f64>(8, 12, 914);
    let gc0 = generate::random_matrix_seeded::<f64>(14, 12, 915);
    let mut gc_untimed = gc0.clone();
    gemm_out_of_core_prefetched(&ga, &gb, &mut gc_untimed, 1.0, 40, &pipeline, 1).unwrap();
    let mut gc_timed = gc0.clone();
    let (_, wall) =
        gemm_out_of_core_timed(&ga, &gb, &mut gc_timed, 1.0, 40, &pipeline, 1, &model).unwrap();
    assert!(wall.consistent(), "GEMM: measured != modelled");
    assert!(wall.measured.hidden_ns > 0.0, "GEMM: no overlap at L=1");
    assert_eq!(gc_timed, gc_untimed, "GEMM: timed result drifted");

    // Lookahead 0 through the timed API: still consistent, nothing hidden.
    let mut gc_plain = gc0;
    let (_, wall) =
        gemm_out_of_core_timed(&ga, &gb, &mut gc_plain, 1.0, 40, &pipeline, 0, &model).unwrap();
    assert!(wall.consistent(), "GEMM L=0: measured != modelled");
    assert_eq!(wall.measured.hidden_ns, 0.0, "GEMM L=0: cannot overlap");
}
