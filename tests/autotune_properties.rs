//! Property sweep of the cost-model-driven autotuner:
//!
//! * **Determinism** — the same builder, space, model and capacity always
//!   produce an *identical* [`TuningReport`] (every candidate, every score,
//!   the same winner), both through the raw [`Tuner`] and through the
//!   high-level `*_autotuned` twins;
//! * **Monotonicity** — enlarging the [`TuningSpace`] along any axis never
//!   worsens the winner's modelled nanoseconds (the exhaustive search can
//!   only gain options, never lose them);
//! * **Makespan** — the LPT pricing of the parallel-worker axis respects
//!   the classic bounds (serial sum, max-element and sum/workers lower
//!   bounds, monotone in the worker count) and a worker axis of `[1, p]`
//!   never tunes worse than serial.

use symla::prelude::*;
use symla_core::TbsPlan;

/// A TBS seed builder over the tile (= `k`) axis on a fixed instance,
/// mirroring what the high-level API hands the tuner: `None` is the planner
/// default, an explicit `k` must fit the capacity or the point is skipped.
fn tbs_builder(
    n: usize,
    m: usize,
    s: usize,
) -> impl Fn(Option<usize>) -> Result<Schedule<f64>, String> {
    move |tile| {
        let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
        let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
        let plan = match tile {
            None => TbsPlan::for_memory(s).map_err(|e| e.to_string())?,
            Some(k) => {
                let plan = TbsPlan::with_k(k).map_err(|e| e.to_string())?;
                if plan.working_set() > s {
                    return Err(format!("k={k} exceeds capacity {s}"));
                }
                TbsPlan { k, capacity: s }
            }
        };
        tbs_schedule(&a_ref, &c_ref, 1.0, &plan).map_err(|e| e.to_string())
    }
}

fn space() -> TuningSpace {
    TuningSpace::minimal()
        .with_tiles(vec![None, Some(6), Some(4)])
        .with_pipelines(vec![
            PassPipeline::none(),
            PassPipeline::standard(),
            PassPipeline::locality(Some(40)),
        ])
        .with_lookaheads(vec![0, 1, 2])
}

/// Same inputs, same report — across repeated runs of the raw tuner.
#[test]
fn tuning_is_deterministic() {
    let (n, m, s) = (24usize, 5usize, 40usize);
    let model = MachineModel::nvme();
    let tuner = Tuner::new(&model, s);
    let first = tuner.tune(tbs_builder(n, m, s), &space()).unwrap();
    for _ in 0..3 {
        let again = tuner.tune(tbs_builder(n, m, s), &space()).unwrap();
        assert_eq!(again, first, "identical inputs must reproduce the report");
    }
    // A bounded beam is a different (but equally deterministic) search.
    let beamed = Tuner::new(&model, s).with_beam_width(1);
    let b1 = beamed.tune(tbs_builder(n, m, s), &space()).unwrap();
    let b2 = beamed.tune(tbs_builder(n, m, s), &space()).unwrap();
    assert_eq!(b1, b2, "beam search must be deterministic too");
}

/// Same inputs, same report — through the high-level autotuned twin.
#[test]
fn high_level_autotuning_is_deterministic() {
    let (n, m, s) = (30usize, 6usize, 60usize);
    let a: Matrix<f64> = generate::random_matrix_seeded(n, m, 9100);
    let mut rng = generate::seeded_rng(9101);
    let c0: SymMatrix<f64> = generate::random_symmetric(n, &mut rng);
    let space = syrk_tuning_space(n, s, SyrkAlgorithm::Tbs);
    let model = MachineModel::nvme();

    let mut c1 = c0.clone();
    let run1 = syrk_out_of_core_autotuned(&a, &mut c1, 1.0, s, SyrkAlgorithm::Tbs, &space, &model)
        .unwrap();
    let mut c2 = c0.clone();
    let run2 = syrk_out_of_core_autotuned(&a, &mut c2, 1.0, s, SyrkAlgorithm::Tbs, &space, &model)
        .unwrap();
    assert_eq!(run1.tuning, run2.tuning, "report reproduces");
    assert_eq!(c1, c2, "result reproduces bitwise");
    assert_eq!(
        run1.run.report.stats, run2.run.report.stats,
        "measured stats reproduce"
    );
}

/// Growing the space along every axis never worsens the winner: each step
/// of the chain is a superset of the previous one, so the exhaustive search
/// must report a winner at most as slow (in modelled ns).
#[test]
fn enlarging_the_space_never_worsens_the_winner() {
    let (n, m, s) = (24usize, 5usize, 40usize);
    let model = MachineModel::nvme();
    let tuner = Tuner::new(&model, s);

    let base = TuningSpace::minimal()
        .with_pipelines(vec![PassPipeline::none()])
        .with_lookaheads(vec![0]);
    let chain = [
        base.clone(),
        // More lookaheads.
        base.clone().with_lookaheads(vec![0, 1, 2]),
        // ... and more pipelines.
        base.clone()
            .with_lookaheads(vec![0, 1, 2])
            .with_pipelines(vec![
                PassPipeline::none(),
                PassPipeline::standard(),
                PassPipeline::locality(Some(s)),
            ]),
        // ... and more tiles (one of them infeasible: skipped, not fatal).
        base.with_lookaheads(vec![0, 1, 2])
            .with_pipelines(vec![
                PassPipeline::none(),
                PassPipeline::standard(),
                PassPipeline::locality(Some(s)),
            ])
            .with_tiles(vec![None, Some(6), Some(4), Some(100)]),
    ];

    let mut prev = f64::INFINITY;
    for (i, sp) in chain.iter().enumerate() {
        let report = tuner.tune(tbs_builder(n, m, s), sp).unwrap();
        let winner_ns = report.winner().modelled_ns;
        assert!(
            winner_ns <= prev,
            "step {i}: winner {winner_ns} ns worse than smaller space's {prev} ns"
        );
        prev = winner_ns;
    }
}

/// The LPT makespan respects the classic scheduling bounds.
#[test]
fn lpt_makespan_bounds() {
    use symla_sched::autotune::lpt_makespan;
    let durations: Vec<f64> = (1..=17).map(|i| ((i * 7919) % 13) as f64 + 0.5).collect();
    let serial: f64 = durations.iter().sum();
    let longest = durations.iter().cloned().fold(0.0f64, f64::max);

    assert_eq!(lpt_makespan(&durations, 1), serial);
    let mut prev = f64::INFINITY;
    for workers in 1..=8 {
        let span = lpt_makespan(&durations, workers);
        assert!(span <= prev, "workers={workers}: makespan must not grow");
        assert!(span >= longest, "workers={workers}: below longest task");
        assert!(
            span >= serial / workers as f64 - 1e-9,
            "workers={workers}: below the perfect-split bound"
        );
        assert!(span <= serial, "workers={workers}: above the serial sum");
        prev = span;
    }
}

/// A worker axis of `[1, p]` never tunes worse than serial-only, and the
/// winning parallel candidate's price is exactly the LPT makespan of its
/// group windows.
#[test]
fn worker_axis_never_worsens_the_winner() {
    let (n, m, s) = (24usize, 5usize, 40usize);
    let model = MachineModel::nvme();
    let tuner = Tuner::new(&model, s);

    let serial_space = TuningSpace::minimal();
    let parallel_space = TuningSpace::minimal().with_workers(vec![1, 2, 4]);

    let serial = tuner.tune(tbs_builder(n, m, s), &serial_space).unwrap();
    let parallel = tuner.tune(tbs_builder(n, m, s), &parallel_space).unwrap();
    assert!(
        parallel.winner().modelled_ns <= serial.winner().modelled_ns,
        "adding worker candidates must never worsen the winner"
    );
    // Every workers==1 candidate in the parallel report matches its twin in
    // the serial report (the worker axis re-prices, it never re-plans).
    for c in &parallel.candidates {
        if c.config.workers == 1 {
            let twin = serial
                .candidates
                .iter()
                .find(|t| t.config == c.config)
                .expect("serial twin exists");
            assert_eq!(
                c.modelled_ns.to_bits(),
                twin.modelled_ns.to_bits(),
                "serial candidates price identically in both spaces"
            );
            assert_eq!(c.stats, twin.stats, "and carry identical stats");
        }
    }
}
