//! Prefetch-mode equivalence: the double-buffered engine must change *when*
//! data moves, never *what* is computed or *how much* moves.
//!
//! For seeded instances of all eight schedule builders this asserts, at
//! `lookahead ∈ {0, 1, 2}`:
//!
//! 1. **bitwise results** — a prefetching execution leaves slow memory
//!    bitwise-identical to the plain (`lookahead = 0`) execution;
//! 2. **execute = dry-run** — the machine's counters after
//!    `Engine::execute_with` equal `Engine::dry_run_with` at the same
//!    config and capacity, and the machine trace equals
//!    `Engine::trace_with`;
//! 3. **capacity** — peak residency never exceeds the machine capacity `S`
//!    the schedule was planned for, at any lookahead;
//! 4. **volumes are invariant** — loads/stores/events/flops and the
//!    per-phase split are identical at every lookahead; only the
//!    stalled/overlapped split moves;
//! 5. **monotonicity** — the stalled-load volume is non-increasing as the
//!    lookahead grows (more lookahead can only overlap more);
//! 6. **positive overlap** — tiled TBS and OOC-GEMM (the paper's
//!    update-style kernels, whose groups leave slack) show strictly
//!    positive modelled overlap already at `lookahead = 1`;
//! 7. **parallel** — for the independent-group schedules, the pipelined
//!    `execute_parallel_with` at `workers ∈ {1, 4}` reproduces the serial
//!    results bitwise with every worker within capacity.

use symla::matrix::generate::{self, SeededRng};
use symla::prelude::*;
use symla_baselines::{
    ooc_chol_schedule, ooc_gemm_schedule, ooc_lu_schedule, ooc_syrk_schedule, ooc_trsm_schedule,
};
use symla_core::engine::{Engine, Schedule, WorkerRun};
use symla_memory::SharedSlowMemory;

/// One sweep case: a schedule, the capacity it was planned for, its
/// slow-memory operands (insertion order = synthetic ids) and whether its
/// groups are independent (parallel-legal).
struct Case {
    name: String,
    schedule: Schedule<f64>,
    capacity: usize,
    operands: Vec<Operand>,
    parallel_ok: bool,
}

#[derive(Clone)]
enum Operand {
    Dense(Matrix<f64>),
    Sym(SymMatrix<f64>),
}

impl Operand {
    fn insert_serial(&self, machine: &mut OocMachine<f64>) -> MatrixId {
        match self {
            Operand::Dense(m) => machine.insert_dense(m.clone()),
            Operand::Sym(s) => machine.insert_symmetric(s.clone()),
        }
    }

    fn insert_shared(&self, shared: &SharedSlowMemory<f64>) -> MatrixId {
        match self {
            Operand::Dense(m) => shared.insert_dense(m.clone()),
            Operand::Sym(s) => shared.insert_symmetric(s.clone()),
        }
    }

    fn take_serial(&self, machine: &mut OocMachine<f64>, id: MatrixId) -> Operand {
        match self {
            Operand::Dense(_) => Operand::Dense(machine.take_dense(id).unwrap()),
            Operand::Sym(_) => Operand::Sym(machine.take_symmetric(id).unwrap()),
        }
    }

    fn take_shared(&self, shared: &SharedSlowMemory<f64>, id: MatrixId) -> Operand {
        match self {
            Operand::Dense(_) => Operand::Dense(shared.take_dense(id).unwrap()),
            Operand::Sym(_) => Operand::Sym(shared.take_symmetric(id).unwrap()),
        }
    }

    fn bitwise_eq(&self, other: &Operand) -> bool {
        match (self, other) {
            (Operand::Dense(a), Operand::Dense(b)) => a == b,
            (Operand::Sym(a), Operand::Sym(b)) => a == b,
            _ => false,
        }
    }
}

/// Builds the seeded sweep: one instance of each of the eight builders.
fn sweep_cases(rng: &mut SeededRng) -> Vec<Case> {
    let seed = rng.gen_range(0usize..1000) as u64;
    let (n, m, s) = (36, 6, 60);
    let a = generate::random_matrix_seeded::<f64>(n, m, seed);
    let c0 = generate::random_symmetric::<f64>(n, &mut generate::seeded_rng(seed + 1));
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let update_ops = vec![Operand::Dense(a.clone()), Operand::Sym(c0.clone())];

    let mut cases = vec![
        Case {
            name: "OOC_SYRK".into(),
            schedule: ooc_syrk_schedule(&a_ref, &c_ref, 1.5, &OocSyrkPlan::for_memory(s).unwrap())
                .unwrap(),
            capacity: s,
            operands: update_ops.clone(),
            parallel_ok: true,
        },
        Case {
            name: "TBS".into(),
            schedule: tbs_schedule(&a_ref, &c_ref, -1.0, &TbsPlan::for_memory(s).unwrap()).unwrap(),
            capacity: s,
            operands: update_ops.clone(),
            parallel_ok: true,
        },
        Case {
            name: "TBS(tiled)".into(),
            schedule: tbs_tiled_schedule(
                &a_ref,
                &c_ref,
                1.0,
                &TbsTiledPlan::for_problem(s, n).unwrap(),
            )
            .unwrap(),
            capacity: s,
            operands: update_ops.clone(),
            parallel_ok: true,
        },
    ];

    // GEMM: three dense operands, one group per C tile.
    let (gn, gb, gp, gs) = (20, 6, 10, 40);
    let ga = generate::random_matrix_seeded::<f64>(gn, gb, seed + 2);
    let gbm = generate::random_matrix_seeded::<f64>(gb, gp, seed + 3);
    let gc = generate::random_matrix_seeded::<f64>(gn, gp, seed + 4);
    cases.push(Case {
        name: "OOC_GEMM".into(),
        schedule: ooc_gemm_schedule(
            &PanelRef::dense(MatrixId::synthetic(0), gn, gb),
            &PanelRef::dense(MatrixId::synthetic(1), gb, gp),
            &PanelRef::dense(MatrixId::synthetic(2), gn, gp),
            2.0,
            &OocGemmPlan::for_memory(gs).unwrap(),
        )
        .unwrap(),
        capacity: gs,
        operands: vec![Operand::Dense(ga), Operand::Dense(gbm), Operand::Dense(gc)],
        parallel_ok: true,
    });

    // The factorizations and the solve: groups ordered through slow memory,
    // serial only.
    let (fn_, fs) = (30, 40);
    let spd = generate::random_spd_seeded::<f64>(fn_, seed + 5);
    let window = SymWindowRef::full(MatrixId::synthetic(0), fn_);
    cases.push(Case {
        name: "OOC_CHOL".into(),
        schedule: ooc_chol_schedule(&window, &OocCholPlan::for_memory(fs).unwrap()),
        capacity: fs,
        operands: vec![Operand::Sym(spd.clone())],
        parallel_ok: false,
    });
    cases.push(Case {
        name: "LBC".into(),
        schedule: lbc_schedule(&window, &LbcPlan::for_problem(fn_, fs).unwrap()).unwrap(),
        capacity: fs,
        operands: vec![Operand::Sym(spd)],
        parallel_ok: false,
    });

    let mut lu = generate::random_matrix_seeded::<f64>(18, 18, seed + 6);
    for i in 0..18 {
        lu[(i, i)] += 18.0;
    }
    cases.push(Case {
        name: "OOC_LU".into(),
        schedule: ooc_lu_schedule(
            &PanelRef::dense(MatrixId::synthetic(0), 18, 18),
            &OocLuPlan::for_memory(40).unwrap(),
        )
        .unwrap(),
        capacity: 40,
        operands: vec![Operand::Dense(lu)],
        parallel_ok: false,
    });

    let (tm, tb, ts) = (12, 10, 40);
    let mut trng = generate::seeded_rng(seed + 7);
    let lfac = generate::random_lower_triangular::<f64>(tb, &mut trng);
    let lsym = SymMatrix::from_lower_fn(tb, |i, j| lfac.get(i, j));
    let x = generate::random_matrix_seeded::<f64>(tm, tb, seed + 8);
    cases.push(Case {
        name: "OOC_TRSM".into(),
        schedule: ooc_trsm_schedule(
            &SymWindowRef::full(MatrixId::synthetic(0), tb),
            &PanelRef::dense(MatrixId::synthetic(1), tm, tb),
            &OocTrsmPlan::for_memory(ts).unwrap(),
        )
        .unwrap(),
        capacity: ts,
        operands: vec![Operand::Sym(lsym), Operand::Dense(x)],
        parallel_ok: false,
    });
    cases
}

/// Serial execution of a case at one lookahead, returning the final
/// operands and the machine's stats.
fn run_serial(case: &Case, lookahead: usize) -> (Vec<Operand>, IoStats) {
    let config = EngineConfig::with_lookahead(lookahead);
    let mut machine =
        OocMachine::new(MachineConfig::with_capacity(case.capacity).record_trace(true));
    let ids: Vec<MatrixId> = case
        .operands
        .iter()
        .map(|o| o.insert_serial(&mut machine))
        .collect();
    Engine::execute_with(&mut machine, &case.schedule, &config).unwrap();

    let dry = Engine::dry_run_with(&case.schedule, "main", &config, Some(case.capacity));
    assert_eq!(
        machine.stats(),
        &dry,
        "{} L={lookahead}: execute vs dry-run",
        case.name
    );
    let synthesized = Engine::trace_with(&case.schedule, "main", &config, Some(case.capacity));
    assert_eq!(
        machine.trace().unwrap(),
        &synthesized,
        "{} L={lookahead}: machine trace vs synthesized trace",
        case.name
    );

    let stats = machine.stats().clone();
    let out = ids
        .iter()
        .zip(&case.operands)
        .map(|(&id, op)| op.take_serial(&mut machine, id))
        .collect();
    (out, stats)
}

#[test]
fn prefetch_sweep_all_builders_serial() {
    let mut rng = SeededRng::seed_from_u64(0xF00D);
    for case in sweep_cases(&mut rng) {
        let (baseline, plain) = run_serial(&case, 0);
        assert_eq!(plain.prefetched_elements, 0, "{}", case.name);
        let mut prev_stalled = plain.stalled_loads();
        for lookahead in [1usize, 2] {
            let (out, stats) = run_serial(&case, lookahead);
            let ctx = format!("{} L={lookahead}", case.name);

            // 1. bitwise results
            for (got, want) in out.iter().zip(&baseline) {
                assert!(got.bitwise_eq(want), "{ctx}: result drifted");
            }
            // 3. capacity
            assert!(
                stats.peak_resident <= case.capacity,
                "{ctx}: peak {} exceeds S={}",
                stats.peak_resident,
                case.capacity
            );
            // 4. volumes invariant
            assert_eq!(stats.volume, plain.volume, "{ctx}");
            assert_eq!(stats.load_events, plain.load_events, "{ctx}");
            assert_eq!(stats.store_events, plain.store_events, "{ctx}");
            assert_eq!(stats.flops, plain.flops, "{ctx}");
            assert_eq!(stats.per_phase, plain.per_phase, "{ctx}");
            // 5. monotone non-increasing stalled loads
            assert!(
                stats.stalled_loads() <= prev_stalled,
                "{ctx}: stalled {} grew past {}",
                stats.stalled_loads(),
                prev_stalled
            );
            prev_stalled = stats.stalled_loads();
            // 6. the update kernels overlap for real at lookahead >= 1
            if matches!(case.name.as_str(), "TBS(tiled)" | "OOC_GEMM") {
                assert!(
                    stats.prefetched_elements > 0,
                    "{ctx}: expected strictly positive overlap"
                );
            }
        }
    }
}

#[test]
fn prefetch_sweep_parallel_matches_serial() {
    let mut rng = SeededRng::seed_from_u64(0xFE7C);
    for case in sweep_cases(&mut rng) {
        if !case.parallel_ok {
            continue;
        }
        let (baseline, plain) = run_serial(&case, 0);
        for workers in [1usize, 4] {
            for lookahead in [0usize, 1, 2] {
                let shared = SharedSlowMemory::new();
                let ids: Vec<MatrixId> = case
                    .operands
                    .iter()
                    .map(|o| o.insert_shared(&shared))
                    .collect();
                let runs = Engine::execute_parallel_with(
                    &shared,
                    &case.schedule,
                    workers,
                    MachineConfig::with_capacity(case.capacity),
                    "main",
                    &EngineConfig::with_lookahead(lookahead),
                )
                .unwrap();
                let ctx = format!("{} P={workers} L={lookahead}", case.name);

                let merged = WorkerRun::merged_stats(&runs);
                assert_eq!(merged.volume, plain.volume, "{ctx}");
                assert_eq!(merged.flops, plain.flops, "{ctx}");
                for (w, run) in runs.iter().enumerate() {
                    assert!(
                        run.stats.peak_resident <= case.capacity,
                        "{ctx}: worker {w} peak {} exceeds S",
                        run.stats.peak_resident
                    );
                }
                // the busiest single fast memory never exceeds the fleet sum
                assert!(
                    WorkerRun::aggregate_peak(&runs) >= merged.peak_resident,
                    "{ctx}"
                );
                if lookahead == 0 {
                    assert_eq!(merged.prefetched_elements, 0, "{ctx}");
                }

                for (&id, want) in ids.iter().zip(&baseline) {
                    let got = want.take_shared(&shared, id);
                    assert!(got.bitwise_eq(want), "{ctx}: result drifted");
                }
            }
        }
    }
}
