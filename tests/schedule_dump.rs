//! Golden-file test of the compact textual schedule dump
//! (`Schedule::dump`), on a seed schedule and its pass-optimized form.
//!
//! The dump is the first slice of the ROADMAP's schedule-serialization
//! item: one header line per task group and one line per step, stable
//! enough that an optimized-vs-seed `diff` of the two golden files shows
//! exactly what a pipeline did (here: adjacent loads of contiguous `A`
//! block columns coalesced into one transfer per group).
//!
//! To regenerate after an intentional IR or pass change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test schedule_dump
//! git diff tests/golden/   # review the schedule diff by eye
//! ```

use std::path::PathBuf;
use symla::prelude::*;
use symla_baselines::ooc_syrk_schedule;
use symla_core::passes::PassPipeline;
use symla_sched::FORMAT_VERSION;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e}; regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its golden file; if the change is intentional, \
         regenerate with `UPDATE_GOLDEN=1 cargo test --test schedule_dump` \
         and review the diff"
    );
}

/// A small deterministic OOC_SYRK instance: three block-columns of `C`, so
/// the per-group `A` loads are contiguous and the merge pass has visible
/// work to do.
fn tiny_syrk_schedule() -> Schedule<f64> {
    let (n, m, s) = (8, 2, 18);
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    ooc_syrk_schedule(&a_ref, &c_ref, 1.0, &OocSyrkPlan::for_memory(s).unwrap()).unwrap()
}

#[test]
fn seed_and_optimized_dumps_match_golden_files() {
    let seed = tiny_syrk_schedule();
    check_golden("ooc_syrk_seed.dump", &seed.dump());

    let optimized = PassPipeline::standard()
        .manager::<f64>()
        .optimize(&seed, "main")
        .unwrap();
    assert!(
        optimized.events_saved() > 0,
        "the tiny instance must show a reviewable optimization"
    );
    check_golden("ooc_syrk_optimized.dump", &optimized.schedule.dump());
}

/// `Schedule::parse` inverts `Schedule::dump` over the golden files: the
/// on-disk text reconstructs the schedule exactly (and re-dumps to the
/// identical bytes), so dumped schedules can be replayed from disk without
/// rebuilding them.
#[test]
fn golden_files_parse_back_losslessly() {
    let seed = tiny_syrk_schedule();
    let golden = std::fs::read_to_string(golden_path("ooc_syrk_seed.dump")).unwrap();
    let parsed = Schedule::<f64>::parse(&golden).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(parsed, seed, "golden seed dump reconstructs the schedule");
    assert_eq!(parsed.dump(), golden, "re-dump is byte-identical");

    let optimized_golden = std::fs::read_to_string(golden_path("ooc_syrk_optimized.dump")).unwrap();
    let parsed = Schedule::<f64>::parse(&optimized_golden).unwrap_or_else(|e| panic!("{e}"));
    assert_eq!(parsed.dump(), optimized_golden);
    // The parsed optimized schedule is executable and equivalent: same
    // dry-run volumes as re-optimizing the seed in process.
    let reoptimized = PassPipeline::standard()
        .manager::<f64>()
        .optimize(&seed, "main")
        .unwrap();
    assert_eq!(parsed, reoptimized.schedule);
}

/// `parse(dump(s)) == s` for every schedule builder, not just the golden
/// instance — the dump is a faithful serialization of the whole IR surface
/// the builders emit (all region kinds, compute ops and phase labels).
#[test]
fn parse_round_trips_every_builder() {
    use symla_baselines::{
        ooc_chol_schedule, ooc_gemm_schedule, ooc_lu_schedule, ooc_trsm_schedule,
    };

    let (n, m, s) = (30, 5, 40);
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let window = SymWindowRef::full(MatrixId::synthetic(0), n);
    let schedules: Vec<(&str, Schedule<f64>)> = vec![
        (
            "ooc_syrk",
            symla_baselines::ooc_syrk_schedule(
                &a_ref,
                &c_ref,
                1.5,
                &OocSyrkPlan::for_memory(s).unwrap(),
            )
            .unwrap(),
        ),
        (
            "tbs",
            tbs_schedule(&a_ref, &c_ref, -0.5, &TbsPlan::for_memory(s).unwrap()).unwrap(),
        ),
        (
            "tbs_tiled",
            tbs_tiled_schedule(
                &a_ref,
                &c_ref,
                1.0,
                &TbsTiledPlan::for_problem(s, n).unwrap(),
            )
            .unwrap(),
        ),
        (
            "lbc",
            lbc_schedule(&window, &LbcPlan::for_problem(n, s).unwrap()).unwrap(),
        ),
        (
            "ooc_chol",
            ooc_chol_schedule(&window, &OocCholPlan::for_memory(s).unwrap()),
        ),
        (
            "ooc_trsm",
            ooc_trsm_schedule(
                &SymWindowRef::full(MatrixId::synthetic(0), 8),
                &PanelRef::dense(MatrixId::synthetic(1), 9, 8),
                &OocTrsmPlan::for_memory(24).unwrap(),
            )
            .unwrap(),
        ),
        (
            "ooc_gemm",
            ooc_gemm_schedule(
                &PanelRef::dense(MatrixId::synthetic(0), 9, 7),
                &PanelRef::dense(MatrixId::synthetic(1), 7, 11),
                &PanelRef::dense(MatrixId::synthetic(2), 9, 11),
                1.0,
                &OocGemmPlan::for_memory(35).unwrap(),
            )
            .unwrap(),
        ),
        (
            "ooc_lu",
            ooc_lu_schedule(
                &PanelRef::dense(MatrixId::synthetic(0), 12, 12),
                &OocLuPlan::for_memory(35).unwrap(),
            )
            .unwrap(),
        ),
    ];
    for (name, schedule) in schedules {
        let dump = schedule.dump();
        let parsed = Schedule::<f64>::parse(&dump).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(parsed, schedule, "{name}: parse(dump(s)) == s");
    }
}

/// The dump's shape is structural, not incidental: one format-version line,
/// one summary header, one line per group, one (indented) line per step.
#[test]
fn dump_has_one_line_per_group_and_step() {
    let schedule = tiny_syrk_schedule();
    let dump = schedule.dump();
    let lines: Vec<&str> = dump.lines().collect();
    assert_eq!(
        lines.len(),
        2 + schedule.num_groups() + schedule.num_steps()
    );
    // Two-level schedules keep the v1 text header even though the binary
    // container's FORMAT_VERSION has moved on; only leveled schedules dump v2.
    assert_eq!(schedule.text_version(), 1);
    assert_eq!(lines[0], "symla-schedule text v1");
    assert!(FORMAT_VERSION >= schedule.text_version());
    assert_eq!(lines[1], format!("{schedule}"));
    assert_eq!(
        lines.iter().filter(|l| l.starts_with("group ")).count(),
        schedule.num_groups()
    );
    assert_eq!(
        lines.iter().filter(|l| l.starts_with("  ")).count(),
        schedule.num_steps()
    );
}
