//! Golden-file test of the compact textual schedule dump
//! (`Schedule::dump`), on a seed schedule and its pass-optimized form.
//!
//! The dump is the first slice of the ROADMAP's schedule-serialization
//! item: one header line per task group and one line per step, stable
//! enough that an optimized-vs-seed `diff` of the two golden files shows
//! exactly what a pipeline did (here: adjacent loads of contiguous `A`
//! block columns coalesced into one transfer per group).
//!
//! To regenerate after an intentional IR or pass change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test schedule_dump
//! git diff tests/golden/   # review the schedule diff by eye
//! ```

use std::path::PathBuf;
use symla::prelude::*;
use symla_baselines::ooc_syrk_schedule;
use symla_core::passes::PassPipeline;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e}; regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its golden file; if the change is intentional, \
         regenerate with `UPDATE_GOLDEN=1 cargo test --test schedule_dump` \
         and review the diff"
    );
}

/// A small deterministic OOC_SYRK instance: three block-columns of `C`, so
/// the per-group `A` loads are contiguous and the merge pass has visible
/// work to do.
fn tiny_syrk_schedule() -> Schedule<f64> {
    let (n, m, s) = (8, 2, 18);
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    ooc_syrk_schedule(&a_ref, &c_ref, 1.0, &OocSyrkPlan::for_memory(s).unwrap()).unwrap()
}

#[test]
fn seed_and_optimized_dumps_match_golden_files() {
    let seed = tiny_syrk_schedule();
    check_golden("ooc_syrk_seed.dump", &seed.dump());

    let optimized = PassPipeline::standard()
        .manager::<f64>()
        .optimize(&seed, "main")
        .unwrap();
    assert!(
        optimized.events_saved() > 0,
        "the tiny instance must show a reviewable optimization"
    );
    check_golden("ooc_syrk_optimized.dump", &optimized.schedule.dump());
}

/// The dump's shape is structural, not incidental: one summary header, one
/// line per group, one (indented) line per step.
#[test]
fn dump_has_one_line_per_group_and_step() {
    let schedule = tiny_syrk_schedule();
    let dump = schedule.dump();
    let lines: Vec<&str> = dump.lines().collect();
    assert_eq!(
        lines.len(),
        1 + schedule.num_groups() + schedule.num_steps()
    );
    assert_eq!(lines[0], format!("{schedule}"));
    assert_eq!(
        lines.iter().filter(|l| l.starts_with("group ")).count(),
        schedule.num_groups()
    );
    assert_eq!(
        lines.iter().filter(|l| l.starts_with("  ")).count(),
        schedule.num_steps()
    );
}
