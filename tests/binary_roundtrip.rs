//! Integration sweep of the binary schedule serialization
//! (`Schedule::to_bytes` / `from_bytes`): every builder round-trips exactly,
//! the binary path agrees with the text dump/parse path, the kitchen-sink IR
//! (every region kind, every compute op) survives, and corrupted input of
//! any shape yields a typed [`BinaryError`] — never a panic and never a
//! silently wrong schedule.

use symla::prelude::*;
use symla_baselines::{
    ooc_chol_schedule, ooc_gemm_schedule, ooc_lu_schedule, ooc_syrk_schedule, ooc_trsm_schedule,
};
use symla_matrix::kernels::FlopCount;
use symla_sched::{BinaryError, BufSlice, ComputeOp, PrefetchPlan, FORMAT_VERSION};

/// The eight schedule builders on small, structurally interesting instances.
fn builder_schedules() -> Vec<(&'static str, Schedule<f64>)> {
    let (n, m, s) = (30, 5, 40);
    let a_ref = PanelRef::dense(MatrixId::synthetic(0), n, m);
    let c_ref = SymWindowRef::full(MatrixId::synthetic(1), n);
    let window = SymWindowRef::full(MatrixId::synthetic(0), n);
    vec![
        (
            "ooc_syrk",
            ooc_syrk_schedule(&a_ref, &c_ref, 1.5, &OocSyrkPlan::for_memory(s).unwrap()).unwrap(),
        ),
        (
            "tbs",
            tbs_schedule(&a_ref, &c_ref, -0.5, &TbsPlan::for_memory(s).unwrap()).unwrap(),
        ),
        (
            "tbs_tiled",
            tbs_tiled_schedule(
                &a_ref,
                &c_ref,
                1.0,
                &TbsTiledPlan::for_problem(s, n).unwrap(),
            )
            .unwrap(),
        ),
        (
            "lbc",
            lbc_schedule(&window, &LbcPlan::for_problem(n, s).unwrap()).unwrap(),
        ),
        (
            "ooc_chol",
            ooc_chol_schedule(&window, &OocCholPlan::for_memory(s).unwrap()),
        ),
        (
            "ooc_trsm",
            ooc_trsm_schedule(
                &SymWindowRef::full(MatrixId::synthetic(0), 8),
                &PanelRef::dense(MatrixId::synthetic(1), 9, 8),
                &OocTrsmPlan::for_memory(24).unwrap(),
            )
            .unwrap(),
        ),
        (
            "ooc_gemm",
            ooc_gemm_schedule(
                &PanelRef::dense(MatrixId::synthetic(0), 9, 7),
                &PanelRef::dense(MatrixId::synthetic(1), 7, 11),
                &PanelRef::dense(MatrixId::synthetic(2), 9, 11),
                1.0,
                &OocGemmPlan::for_memory(35).unwrap(),
            )
            .unwrap(),
        ),
        (
            "ooc_lu",
            ooc_lu_schedule(
                &PanelRef::dense(MatrixId::synthetic(0), 12, 12),
                &OocLuPlan::for_memory(35).unwrap(),
            )
            .unwrap(),
        ),
    ]
}

/// `from_bytes(to_bytes(s)) == s` for every builder, the encoding is
/// deterministic, and the binary path reconstructs the same schedule as the
/// independent text dump/parse path.
#[test]
fn every_builder_round_trips_binary_and_matches_text_path() {
    let mut hashes = Vec::new();
    for (name, schedule) in builder_schedules() {
        let bytes = schedule.to_bytes();
        assert_eq!(bytes, schedule.to_bytes(), "{name}: encoding deterministic");
        let decoded = Schedule::<f64>::from_bytes(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(decoded, schedule, "{name}: binary round trip");

        let texted = Schedule::<f64>::parse(&schedule.dump())
            .unwrap_or_else(|e| panic!("{name}: text path: {e}"));
        assert_eq!(decoded, texted, "{name}: binary and text paths agree");

        hashes.push((name, schedule.content_hash()));
    }
    // The content hash separates the builders (and is intact after decode).
    for (i, (a_name, a_hash)) in hashes.iter().enumerate() {
        for (b_name, b_hash) in &hashes[i + 1..] {
            assert_ne!(a_hash, b_hash, "{a_name} vs {b_name}: hash collision");
        }
    }
}

/// A compiled prefetch plan rides along with its schedule and round-trips
/// exactly, at several lookaheads.
#[test]
fn prefetch_plan_rides_along_and_round_trips() {
    for (name, schedule) in builder_schedules() {
        for lookahead in [1usize, 2] {
            let plan = PrefetchPlan::plan(&schedule, lookahead, Some(64));
            let bytes = schedule.to_bytes_with_plan(&plan);
            let (decoded, decoded_plan) = Schedule::<f64>::from_bytes_with_plan(&bytes)
                .unwrap_or_else(|e| panic!("{name} L={lookahead}: {e}"));
            assert_eq!(decoded, schedule, "{name} L={lookahead}");
            assert_eq!(
                decoded_plan.as_ref(),
                Some(&plan),
                "{name} L={lookahead}: prefetch plan round trip"
            );
        }
        // Plain encoding decodes with no plan attached.
        let (_, none) = Schedule::<f64>::from_bytes_with_plan(&schedule.to_bytes()).unwrap();
        assert!(none.is_none(), "{name}: plain bytes carry no plan");
    }
}

/// A hand-built schedule exercising every region kind and every compute op
/// (beyond what any single builder emits) survives the binary round trip.
#[test]
fn kitchen_sink_ir_round_trips() {
    let a = MatrixId::synthetic(0);
    let c = MatrixId::synthetic(7);
    let mut b = ScheduleBuilder::<f64>::new();

    b.set_phase("phase one");
    let rect = b.load(
        a,
        Region::Rect {
            row0: 1,
            col0: 2,
            rows: 3,
            cols: 4,
        },
    );
    let rows = b.load(
        a,
        Region::Rows {
            rows: vec![0, 2, 5],
            col0: 1,
            cols: 2,
        },
    );
    let dst = b.alloc(
        c,
        Region::SymRect {
            row0: 4,
            col0: 0,
            rows: 2,
            cols: 2,
        },
    );
    b.compute(ComputeOp::Ger {
        alpha: -1.25,
        x: BufSlice::new(rect, 0, 2),
        y: BufSlice::whole(rows, 2),
        dst,
    });
    b.flops(FlopCount::new(4, 4));
    b.store(dst);
    b.discard(rect);
    b.discard(rows);

    b.begin_group();
    b.set_phase("phase two — ünïcode");
    let tri = b.load(c, Region::SymLowerTriangle { start: 0, size: 3 });
    let pairs = b.load(
        c,
        Region::SymPairs {
            rows: vec![1, 3, 6],
        },
    );
    let srows = b.load(
        c,
        Region::SymRows {
            rows: vec![2, 4],
            col0: 0,
            cols: 2,
        },
    );
    b.compute(ComputeOp::SprLower {
        alpha: 0.5,
        x: BufSlice::new(srows, 0, 3),
        dst: tri,
    });
    b.compute(ComputeOp::TrianglePairs {
        alpha: 2.0,
        x: BufSlice::whole(srows, 3),
        dst: pairs,
    });
    b.compute(ComputeOp::CholeskyInPlace {
        dst: tri,
        pivot_base: 9,
    });
    b.compute(ComputeOp::LuInPlace {
        dst: pairs,
        pivot_base: 11,
    });
    b.compute(ComputeOp::TrsmRightStep {
        seg: srows,
        dst: tri,
        col: 1,
        pivot: 3,
    });
    b.compute(ComputeOp::LuColSolveStep {
        seg: srows,
        dst: pairs,
        col: 0,
        pivot: 5,
    });
    b.compute(ComputeOp::LuRowElimStep {
        seg: srows,
        dst: tri,
        row: 2,
    });
    b.flops(FlopCount::new(123_456_789_012_345, 987));
    b.store(tri);
    b.discard(pairs);
    b.discard(srows);
    let schedule = b.finish();

    let bytes = schedule.to_bytes();
    let decoded = Schedule::<f64>::from_bytes(&bytes).unwrap();
    assert_eq!(decoded, schedule);
    // The text path carries the same IR surface.
    let texted = Schedule::<f64>::parse(&schedule.dump()).unwrap();
    assert_eq!(texted, schedule);
}

/// Leveled variants of every builder round-trip in both formats, encode as
/// container version 2, and collapsing back to the default level restores
/// the exact version-1 bytes an older build would have written.
#[test]
fn leveled_builders_round_trip_and_collapse_to_v1_bytes() {
    use symla_memory::Level;
    for (name, schedule) in builder_schedules() {
        let flat_bytes = schedule.to_bytes();
        assert_eq!(flat_bytes[4..6], [1, 0], "{name}: two-level encodes v1");

        let leveled = schedule.with_transfer_level(Level::new(3));
        assert!(leveled.is_leveled(), "{name}");
        let bytes = leveled.to_bytes();
        assert_eq!(bytes[4..6], [2, 0], "{name}: leveled encodes v2");
        let decoded = Schedule::<f64>::from_bytes(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(decoded, leveled, "{name}: binary round trip");
        let texted = Schedule::<f64>::parse(&leveled.dump())
            .unwrap_or_else(|e| panic!("{name}: text path: {e}"));
        assert_eq!(texted, leveled, "{name}: text round trip");

        // Collapsing the hierarchy restores the pre-hierarchy encodings
        // byte for byte, in both formats.
        let collapsed = leveled.with_transfer_level(Level::default());
        assert_eq!(collapsed.to_bytes(), flat_bytes, "{name}: bytes collapse");
        assert_eq!(collapsed.dump(), schedule.dump(), "{name}: dump collapses");
    }
}

/// Version cross-parsing: a v1 dump parses under a v2 header (versions are
/// upper bounds, not exact matches), and the binary v1/v2 tag sets decode
/// to the same steps where they overlap.
#[test]
fn v1_dumps_parse_under_a_v2_header() {
    for (name, schedule) in builder_schedules() {
        let dump = schedule.dump();
        assert!(dump.starts_with("symla-schedule text v1\n"), "{name}");
        let relabeled = dump.replacen("v1", "v2", 1);
        let parsed = Schedule::<f64>::parse(&relabeled)
            .unwrap_or_else(|e| panic!("{name}: v2-relabeled dump: {e}"));
        assert_eq!(parsed, schedule, "{name}: header version is an upper bound");
    }
}

/// The leveled TLV tags (7/8) survive the corruption sweep like the rest of
/// the format: every strict prefix is rejected with a typed error and no
/// single-byte flip anywhere in a leveled encoding can panic the decoder —
/// including flips that land on the trailing level byte itself.
#[test]
fn leveled_encoding_survives_the_corruption_sweep() {
    use symla_memory::Level;
    let (_, schedule) = builder_schedules().swap_remove(0);
    let leveled = schedule.with_transfer_level(Level::new(2));
    let bytes = leveled.to_bytes();

    for cut in 0..bytes.len() {
        let err = Schedule::<f64>::from_bytes(&bytes[..cut])
            .expect_err(&format!("leveled prefix of {cut} bytes decoded"));
        assert!(
            matches!(
                err,
                BinaryError::Truncated { .. }
                    | BinaryError::BadMagic(_)
                    | BinaryError::Corrupt { .. }
            ),
            "leveled prefix {cut}: unexpected error {err:?}"
        );
    }

    for mask in [0x40u8, 0x01] {
        for pos in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[pos] ^= mask;
            let _ = Schedule::<f64>::from_bytes(&flipped);
        }
    }
}

/// Corrupted input always yields a typed error: truncation at *every*
/// prefix, bad magic, a future format version, a scalar-width mismatch and
/// trailing garbage all report the matching [`BinaryError`] variant, and
/// single-byte corruption anywhere never panics.
#[test]
fn corruption_reports_typed_errors_and_never_panics() {
    let (_, schedule) = builder_schedules().swap_remove(0);
    let bytes = schedule.to_bytes();

    // Every strict prefix is rejected (nothing decodes "by luck").
    for cut in 0..bytes.len() {
        let err = Schedule::<f64>::from_bytes(&bytes[..cut])
            .expect_err(&format!("prefix of {cut} bytes decoded"));
        assert!(
            matches!(
                err,
                BinaryError::Truncated { .. }
                    | BinaryError::BadMagic(_)
                    | BinaryError::Corrupt { .. }
            ),
            "prefix {cut}: unexpected error {err:?}"
        );
    }

    // Wrong magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    assert!(matches!(
        Schedule::<f64>::from_bytes(&bad),
        Err(BinaryError::BadMagic(_))
    ));

    // A future format version is refused, not misread.
    let mut future = bytes.clone();
    future[4] = 0xff;
    future[5] = 0xff;
    match Schedule::<f64>::from_bytes(&future) {
        Err(BinaryError::UnsupportedVersion(v)) => assert!(v > FORMAT_VERSION),
        other => panic!("future version decoded as {other:?}"),
    }

    // f64-encoded bytes refuse an f32 decoder.
    match Schedule::<f32>::from_bytes(&bytes) {
        Err(BinaryError::ScalarWidthMismatch { expected, found }) => {
            assert_eq!((expected, found), (4, 8));
        }
        other => panic!("width mismatch decoded as {other:?}"),
    }

    // Trailing garbage is corrupt, not ignored.
    let mut trailing = bytes.clone();
    trailing.push(0);
    assert!(matches!(
        Schedule::<f64>::from_bytes(&trailing),
        Err(BinaryError::Corrupt { .. })
    ));

    // Flipping any single byte either fails with a typed error or decodes
    // into *some* schedule — but never panics. (A flip in a scalar payload
    // can legitimately decode; structural bytes must not.)
    for pos in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0x40;
        let _ = Schedule::<f64>::from_bytes(&flipped);
    }
}
