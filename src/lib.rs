//! # symla — I/O-optimal symmetric linear algebra kernels
//!
//! Facade crate of the `symla` workspace, a full reproduction of
//! *"I/O-Optimal Algorithms for Symmetric Linear Algebra Kernels"*
//! (Beaumont, Eyraud-Dubois, Vérité, Langou — SPAA 2022).
//!
//! The workspace contains:
//!
//! * [`matrix`] (`symla-matrix`) — dense/symmetric/triangular containers and
//!   in-memory reference kernels;
//! * [`memory`] (`symla-memory`) — the two-level out-of-core machine model
//!   with exact I/O accounting and capacity enforcement, including the
//!   shared-slow-memory variant for multi-worker execution;
//! * [`sched`] (`symla-sched`) — the combinatorial machinery behind the
//!   lower bounds (triangle blocks, balanced solutions, indexing families);
//! * [`plancache`] (`symla-plancache`) — the content-addressed two-tier
//!   plan cache (in-memory LRU + optional disk tier) behind the
//!   compile-once/replay-many serve layer;
//! * [`obs`] (`symla-obs`) — execution observability: structured run
//!   traces, the metrics registry and Perfetto timeline export;
//! * [`baselines`] (`symla-baselines`) — Béreux's out-of-core SYRK / TRSM /
//!   Cholesky and the GEMM / LU comparison points;
//! * [`core`] (`symla-core`) — the paper's TBS and LBC schedules, lower
//!   bounds, planners, the operational-intensity analysis and the high-level
//!   API.
//!
//! ## Quick start
//!
//! ```
//! use symla::prelude::*;
//!
//! // An out-of-core Cholesky factorization of a 64x64 SPD matrix with a
//! // fast memory of only 55 elements, using the paper's LBC schedule.
//! let a = symla::matrix::generate::random_spd_seeded::<f64>(64, 42);
//! let (l, report) = cholesky_out_of_core(&a, 55, CholeskyAlgorithm::Lbc).unwrap();
//! assert!(symla::matrix::kernels::cholesky_residual(&a, &l) < 1e-9);
//! // The measured traffic respects the paper's lower bound ...
//! assert!(report.measured_loads() as f64 >= report.lower_bound);
//! // ... and never exceeded the declared fast memory.
//! assert!(report.stats.peak_resident <= 55);
//! ```

#![warn(missing_docs)]

pub use symla_baselines as baselines;
pub use symla_core as core;
pub use symla_matrix as matrix;
pub use symla_memory as memory;
pub use symla_obs as obs;
pub use symla_plancache as plancache;
pub use symla_sched as sched;

/// The most commonly used items, re-exported for one-line imports.
pub mod prelude {
    pub use symla_baselines::{
        ooc_chol_cost, ooc_chol_execute, ooc_gemm_execute, ooc_lu_execute, ooc_syrk_cost,
        ooc_syrk_execute, ooc_trsm_execute, IoEstimate, OocCholPlan, OocError, OocGemmPlan,
        OocLuPlan, OocSyrkPlan, OocTrsmPlan,
    };
    pub use symla_core::{
        api::{
            cholesky_out_of_core, cholesky_out_of_core_autotuned, cholesky_out_of_core_cached,
            cholesky_out_of_core_optimized, cholesky_out_of_core_prefetched,
            cholesky_out_of_core_timed, cholesky_out_of_core_traced, cholesky_tuning_space,
            gemm_out_of_core, gemm_out_of_core_autotuned, gemm_out_of_core_cached,
            gemm_out_of_core_optimized, gemm_out_of_core_prefetched, gemm_out_of_core_timed,
            gemm_out_of_core_traced, gemm_tuning_space, syrk_out_of_core,
            syrk_out_of_core_autotuned, syrk_out_of_core_cached, syrk_out_of_core_optimized,
            syrk_out_of_core_prefetched, syrk_out_of_core_timed, syrk_out_of_core_traced,
            syrk_tuning_space, AutotunedRun, CholeskyAlgorithm, OptimizedRun, RunReport,
            SyrkAlgorithm, TracedRun, WallClock,
        },
        bounds, lbc_cost, lbc_cost_breakdown, lbc_execute, lbc_schedule, oi, tbs_cost, tbs_execute,
        tbs_schedule, tbs_tiled_cost, tbs_tiled_execute, tbs_tiled_schedule, Engine, EngineConfig,
        LbcPlan, PassManager, PassPipeline, PlanService, Schedule, ScheduleBuilder, ServedRun,
        TbsPlan, TbsTiledPlan, TrailingUpdate,
    };
    pub use symla_matrix::{
        generate, kernels, LowerTriangular, Matrix, MatrixError, Scalar, SymMatrix,
    };
    pub use symla_memory::{
        IoStats, LatencyMachine, MachineConfig, MachineModel, MachineOps, MatrixId, OocMachine,
        PanelRef, Region, SharedSlowMemory, SymWindowRef, TimeStats, WorkerMachine,
    };
    pub use symla_obs::{
        EventKind, ExecutionObserver, InstrumentedMachine, MetricsRegistry, NullObserver, RunTrace,
        TimeBase, TraceRecorder,
    };
    pub use symla_plancache::{CacheStats, PlanCache, PlanCacheConfig, PlanKey, PlanSource};
    pub use symla_sched::autotune::{
        Candidate, TuneError, TunedConfig, Tuner, TuningReport, TuningSpace,
    };
    pub use symla_sched::timing::{
        modelled_group_times, modelled_run_trace, modelled_time, modelled_time_planned,
    };
    pub use symla_sched::{BalancedSolution, CyclicIndexing, Op, OpSet, TbsPartition};
}
