/root/repo/target/debug/deps/experiments-fbee0004e9b5fa09.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-fbee0004e9b5fa09: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
