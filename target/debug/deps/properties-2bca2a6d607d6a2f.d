/root/repo/target/debug/deps/properties-2bca2a6d607d6a2f.d: crates/baselines/tests/properties.rs

/root/repo/target/debug/deps/properties-2bca2a6d607d6a2f: crates/baselines/tests/properties.rs

crates/baselines/tests/properties.rs:
