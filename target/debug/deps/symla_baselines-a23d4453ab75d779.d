/root/repo/target/debug/deps/symla_baselines-a23d4453ab75d779.d: crates/baselines/src/lib.rs crates/baselines/src/error.rs crates/baselines/src/ooc_chol.rs crates/baselines/src/ooc_gemm.rs crates/baselines/src/ooc_lu.rs crates/baselines/src/ooc_syrk.rs crates/baselines/src/ooc_trsm.rs crates/baselines/src/params.rs

/root/repo/target/debug/deps/libsymla_baselines-a23d4453ab75d779.rlib: crates/baselines/src/lib.rs crates/baselines/src/error.rs crates/baselines/src/ooc_chol.rs crates/baselines/src/ooc_gemm.rs crates/baselines/src/ooc_lu.rs crates/baselines/src/ooc_syrk.rs crates/baselines/src/ooc_trsm.rs crates/baselines/src/params.rs

/root/repo/target/debug/deps/libsymla_baselines-a23d4453ab75d779.rmeta: crates/baselines/src/lib.rs crates/baselines/src/error.rs crates/baselines/src/ooc_chol.rs crates/baselines/src/ooc_gemm.rs crates/baselines/src/ooc_lu.rs crates/baselines/src/ooc_syrk.rs crates/baselines/src/ooc_trsm.rs crates/baselines/src/params.rs

crates/baselines/src/lib.rs:
crates/baselines/src/error.rs:
crates/baselines/src/ooc_chol.rs:
crates/baselines/src/ooc_gemm.rs:
crates/baselines/src/ooc_lu.rs:
crates/baselines/src/ooc_syrk.rs:
crates/baselines/src/ooc_trsm.rs:
crates/baselines/src/params.rs:
