/root/repo/target/debug/deps/properties-d0d168536b61047f.d: crates/baselines/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-d0d168536b61047f.rmeta: crates/baselines/tests/properties.rs Cargo.toml

crates/baselines/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
