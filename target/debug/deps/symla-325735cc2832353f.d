/root/repo/target/debug/deps/symla-325735cc2832353f.d: src/lib.rs

/root/repo/target/debug/deps/symla-325735cc2832353f: src/lib.rs

src/lib.rs:
