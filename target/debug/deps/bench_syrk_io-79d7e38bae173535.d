/root/repo/target/debug/deps/bench_syrk_io-79d7e38bae173535.d: crates/bench/benches/bench_syrk_io.rs

/root/repo/target/debug/deps/bench_syrk_io-79d7e38bae173535: crates/bench/benches/bench_syrk_io.rs

crates/bench/benches/bench_syrk_io.rs:
