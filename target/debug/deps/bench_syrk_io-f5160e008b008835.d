/root/repo/target/debug/deps/bench_syrk_io-f5160e008b008835.d: crates/bench/benches/bench_syrk_io.rs Cargo.toml

/root/repo/target/debug/deps/libbench_syrk_io-f5160e008b008835.rmeta: crates/bench/benches/bench_syrk_io.rs Cargo.toml

crates/bench/benches/bench_syrk_io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
