/root/repo/target/debug/deps/experiments-574ea4022eb90394.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-574ea4022eb90394: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
