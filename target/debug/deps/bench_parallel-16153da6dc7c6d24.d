/root/repo/target/debug/deps/bench_parallel-16153da6dc7c6d24.d: crates/bench/benches/bench_parallel.rs

/root/repo/target/debug/deps/bench_parallel-16153da6dc7c6d24: crates/bench/benches/bench_parallel.rs

crates/bench/benches/bench_parallel.rs:
