/root/repo/target/debug/deps/property_integration-1ffe6f7d0f6eeba6.d: tests/property_integration.rs

/root/repo/target/debug/deps/property_integration-1ffe6f7d0f6eeba6: tests/property_integration.rs

tests/property_integration.rs:
