/root/repo/target/debug/deps/bench_parallel-aaaf2d0e33d415aa.d: crates/bench/benches/bench_parallel.rs Cargo.toml

/root/repo/target/debug/deps/libbench_parallel-aaaf2d0e33d415aa.rmeta: crates/bench/benches/bench_parallel.rs Cargo.toml

crates/bench/benches/bench_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
