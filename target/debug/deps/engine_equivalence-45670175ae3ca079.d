/root/repo/target/debug/deps/engine_equivalence-45670175ae3ca079.d: tests/engine_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libengine_equivalence-45670175ae3ca079.rmeta: tests/engine_equivalence.rs Cargo.toml

tests/engine_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
