/root/repo/target/debug/deps/symla_memory-1fa1e53a3abd3fa8.d: crates/memory/src/lib.rs crates/memory/src/cache.rs crates/memory/src/error.rs crates/memory/src/machine.rs crates/memory/src/operand.rs crates/memory/src/region.rs crates/memory/src/stats.rs crates/memory/src/storage.rs crates/memory/src/trace.rs

/root/repo/target/debug/deps/libsymla_memory-1fa1e53a3abd3fa8.rlib: crates/memory/src/lib.rs crates/memory/src/cache.rs crates/memory/src/error.rs crates/memory/src/machine.rs crates/memory/src/operand.rs crates/memory/src/region.rs crates/memory/src/stats.rs crates/memory/src/storage.rs crates/memory/src/trace.rs

/root/repo/target/debug/deps/libsymla_memory-1fa1e53a3abd3fa8.rmeta: crates/memory/src/lib.rs crates/memory/src/cache.rs crates/memory/src/error.rs crates/memory/src/machine.rs crates/memory/src/operand.rs crates/memory/src/region.rs crates/memory/src/stats.rs crates/memory/src/storage.rs crates/memory/src/trace.rs

crates/memory/src/lib.rs:
crates/memory/src/cache.rs:
crates/memory/src/error.rs:
crates/memory/src/machine.rs:
crates/memory/src/operand.rs:
crates/memory/src/region.rs:
crates/memory/src/stats.rs:
crates/memory/src/storage.rs:
crates/memory/src/trace.rs:
