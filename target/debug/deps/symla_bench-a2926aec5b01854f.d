/root/repo/target/debug/deps/symla_bench-a2926aec5b01854f.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libsymla_bench-a2926aec5b01854f.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/libsymla_bench-a2926aec5b01854f.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
