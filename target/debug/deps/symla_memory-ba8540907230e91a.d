/root/repo/target/debug/deps/symla_memory-ba8540907230e91a.d: crates/memory/src/lib.rs crates/memory/src/cache.rs crates/memory/src/error.rs crates/memory/src/machine.rs crates/memory/src/operand.rs crates/memory/src/region.rs crates/memory/src/stats.rs crates/memory/src/storage.rs crates/memory/src/trace.rs

/root/repo/target/debug/deps/symla_memory-ba8540907230e91a: crates/memory/src/lib.rs crates/memory/src/cache.rs crates/memory/src/error.rs crates/memory/src/machine.rs crates/memory/src/operand.rs crates/memory/src/region.rs crates/memory/src/stats.rs crates/memory/src/storage.rs crates/memory/src/trace.rs

crates/memory/src/lib.rs:
crates/memory/src/cache.rs:
crates/memory/src/error.rs:
crates/memory/src/machine.rs:
crates/memory/src/operand.rs:
crates/memory/src/region.rs:
crates/memory/src/stats.rs:
crates/memory/src/storage.rs:
crates/memory/src/trace.rs:
