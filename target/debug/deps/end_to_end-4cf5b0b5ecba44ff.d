/root/repo/target/debug/deps/end_to_end-4cf5b0b5ecba44ff.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-4cf5b0b5ecba44ff.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
