/root/repo/target/debug/deps/symla_core-52c7ad26ef9b79ad.d: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/bounds.rs crates/core/src/engine.rs crates/core/src/lbc.rs crates/core/src/oi.rs crates/core/src/parallel.rs crates/core/src/plan.rs crates/core/src/tbs.rs crates/core/src/tbs_tiled.rs Cargo.toml

/root/repo/target/debug/deps/libsymla_core-52c7ad26ef9b79ad.rmeta: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/bounds.rs crates/core/src/engine.rs crates/core/src/lbc.rs crates/core/src/oi.rs crates/core/src/parallel.rs crates/core/src/plan.rs crates/core/src/tbs.rs crates/core/src/tbs_tiled.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/api.rs:
crates/core/src/bounds.rs:
crates/core/src/engine.rs:
crates/core/src/lbc.rs:
crates/core/src/oi.rs:
crates/core/src/parallel.rs:
crates/core/src/plan.rs:
crates/core/src/tbs.rs:
crates/core/src/tbs_tiled.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
