/root/repo/target/debug/deps/experiments-ffb6ba59e6fdea93.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-ffb6ba59e6fdea93.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
