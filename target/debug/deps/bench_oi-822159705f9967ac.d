/root/repo/target/debug/deps/bench_oi-822159705f9967ac.d: crates/bench/benches/bench_oi.rs Cargo.toml

/root/repo/target/debug/deps/libbench_oi-822159705f9967ac.rmeta: crates/bench/benches/bench_oi.rs Cargo.toml

crates/bench/benches/bench_oi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
