/root/repo/target/debug/deps/bench_kernels-694ab369905b92b1.d: crates/bench/benches/bench_kernels.rs

/root/repo/target/debug/deps/bench_kernels-694ab369905b92b1: crates/bench/benches/bench_kernels.rs

crates/bench/benches/bench_kernels.rs:
