/root/repo/target/debug/deps/symla_sched-b8f6a6cf8a10a56a.d: crates/sched/src/lib.rs crates/sched/src/balanced.rs crates/sched/src/engine.rs crates/sched/src/footprint.rs crates/sched/src/indexing.rs crates/sched/src/ir.rs crates/sched/src/ops.rs crates/sched/src/opt.rs crates/sched/src/partition.rs crates/sched/src/triangle.rs

/root/repo/target/debug/deps/symla_sched-b8f6a6cf8a10a56a: crates/sched/src/lib.rs crates/sched/src/balanced.rs crates/sched/src/engine.rs crates/sched/src/footprint.rs crates/sched/src/indexing.rs crates/sched/src/ir.rs crates/sched/src/ops.rs crates/sched/src/opt.rs crates/sched/src/partition.rs crates/sched/src/triangle.rs

crates/sched/src/lib.rs:
crates/sched/src/balanced.rs:
crates/sched/src/engine.rs:
crates/sched/src/footprint.rs:
crates/sched/src/indexing.rs:
crates/sched/src/ir.rs:
crates/sched/src/ops.rs:
crates/sched/src/opt.rs:
crates/sched/src/partition.rs:
crates/sched/src/triangle.rs:
