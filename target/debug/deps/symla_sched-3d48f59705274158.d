/root/repo/target/debug/deps/symla_sched-3d48f59705274158.d: crates/sched/src/lib.rs crates/sched/src/balanced.rs crates/sched/src/engine.rs crates/sched/src/footprint.rs crates/sched/src/indexing.rs crates/sched/src/ir.rs crates/sched/src/ops.rs crates/sched/src/opt.rs crates/sched/src/partition.rs crates/sched/src/triangle.rs

/root/repo/target/debug/deps/libsymla_sched-3d48f59705274158.rlib: crates/sched/src/lib.rs crates/sched/src/balanced.rs crates/sched/src/engine.rs crates/sched/src/footprint.rs crates/sched/src/indexing.rs crates/sched/src/ir.rs crates/sched/src/ops.rs crates/sched/src/opt.rs crates/sched/src/partition.rs crates/sched/src/triangle.rs

/root/repo/target/debug/deps/libsymla_sched-3d48f59705274158.rmeta: crates/sched/src/lib.rs crates/sched/src/balanced.rs crates/sched/src/engine.rs crates/sched/src/footprint.rs crates/sched/src/indexing.rs crates/sched/src/ir.rs crates/sched/src/ops.rs crates/sched/src/opt.rs crates/sched/src/partition.rs crates/sched/src/triangle.rs

crates/sched/src/lib.rs:
crates/sched/src/balanced.rs:
crates/sched/src/engine.rs:
crates/sched/src/footprint.rs:
crates/sched/src/indexing.rs:
crates/sched/src/ir.rs:
crates/sched/src/ops.rs:
crates/sched/src/opt.rs:
crates/sched/src/partition.rs:
crates/sched/src/triangle.rs:
