/root/repo/target/debug/deps/symla_bench-f445a6e609fe3243.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/debug/deps/symla_bench-f445a6e609fe3243: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
