/root/repo/target/debug/deps/end_to_end-da13cb20c4b5c7ba.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-da13cb20c4b5c7ba: tests/end_to_end.rs

tests/end_to_end.rs:
