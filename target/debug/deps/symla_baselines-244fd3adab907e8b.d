/root/repo/target/debug/deps/symla_baselines-244fd3adab907e8b.d: crates/baselines/src/lib.rs crates/baselines/src/error.rs crates/baselines/src/ooc_chol.rs crates/baselines/src/ooc_gemm.rs crates/baselines/src/ooc_lu.rs crates/baselines/src/ooc_syrk.rs crates/baselines/src/ooc_trsm.rs crates/baselines/src/params.rs Cargo.toml

/root/repo/target/debug/deps/libsymla_baselines-244fd3adab907e8b.rmeta: crates/baselines/src/lib.rs crates/baselines/src/error.rs crates/baselines/src/ooc_chol.rs crates/baselines/src/ooc_gemm.rs crates/baselines/src/ooc_lu.rs crates/baselines/src/ooc_syrk.rs crates/baselines/src/ooc_trsm.rs crates/baselines/src/params.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/error.rs:
crates/baselines/src/ooc_chol.rs:
crates/baselines/src/ooc_gemm.rs:
crates/baselines/src/ooc_lu.rs:
crates/baselines/src/ooc_syrk.rs:
crates/baselines/src/ooc_trsm.rs:
crates/baselines/src/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
