/root/repo/target/debug/deps/bench_chol_io-ccf6269b1cfc75c1.d: crates/bench/benches/bench_chol_io.rs Cargo.toml

/root/repo/target/debug/deps/libbench_chol_io-ccf6269b1cfc75c1.rmeta: crates/bench/benches/bench_chol_io.rs Cargo.toml

crates/bench/benches/bench_chol_io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
