/root/repo/target/debug/deps/symla_sched-91ffb7908270e447.d: crates/sched/src/lib.rs crates/sched/src/balanced.rs crates/sched/src/engine.rs crates/sched/src/footprint.rs crates/sched/src/indexing.rs crates/sched/src/ir.rs crates/sched/src/ops.rs crates/sched/src/opt.rs crates/sched/src/partition.rs crates/sched/src/triangle.rs Cargo.toml

/root/repo/target/debug/deps/libsymla_sched-91ffb7908270e447.rmeta: crates/sched/src/lib.rs crates/sched/src/balanced.rs crates/sched/src/engine.rs crates/sched/src/footprint.rs crates/sched/src/indexing.rs crates/sched/src/ir.rs crates/sched/src/ops.rs crates/sched/src/opt.rs crates/sched/src/partition.rs crates/sched/src/triangle.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/balanced.rs:
crates/sched/src/engine.rs:
crates/sched/src/footprint.rs:
crates/sched/src/indexing.rs:
crates/sched/src/ir.rs:
crates/sched/src/ops.rs:
crates/sched/src/opt.rs:
crates/sched/src/partition.rs:
crates/sched/src/triangle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
