/root/repo/target/debug/deps/bench_execute-96cc1076b6a3abb0.d: crates/bench/benches/bench_execute.rs Cargo.toml

/root/repo/target/debug/deps/libbench_execute-96cc1076b6a3abb0.rmeta: crates/bench/benches/bench_execute.rs Cargo.toml

crates/bench/benches/bench_execute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
