/root/repo/target/debug/deps/symla_bench-dfc6bda163b6fdd0.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libsymla_bench-dfc6bda163b6fdd0.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
