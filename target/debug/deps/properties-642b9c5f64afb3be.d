/root/repo/target/debug/deps/properties-642b9c5f64afb3be.d: crates/sched/tests/properties.rs

/root/repo/target/debug/deps/properties-642b9c5f64afb3be: crates/sched/tests/properties.rs

crates/sched/tests/properties.rs:
