/root/repo/target/debug/deps/property_integration-57ff7de824904a54.d: tests/property_integration.rs Cargo.toml

/root/repo/target/debug/deps/libproperty_integration-57ff7de824904a54.rmeta: tests/property_integration.rs Cargo.toml

tests/property_integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
