/root/repo/target/debug/deps/symla_matrix-2e7bc6a546302e2f.d: crates/matrix/src/lib.rs crates/matrix/src/dense.rs crates/matrix/src/error.rs crates/matrix/src/generate.rs crates/matrix/src/kernels/mod.rs crates/matrix/src/kernels/cholesky.rs crates/matrix/src/kernels/flops.rs crates/matrix/src/kernels/gemm.rs crates/matrix/src/kernels/lu.rs crates/matrix/src/kernels/residual.rs crates/matrix/src/kernels/syrk.rs crates/matrix/src/kernels/trsm.rs crates/matrix/src/kernels/views.rs crates/matrix/src/packed.rs crates/matrix/src/scalar.rs crates/matrix/src/symmetric.rs crates/matrix/src/tiled.rs crates/matrix/src/triangular.rs crates/matrix/src/views.rs Cargo.toml

/root/repo/target/debug/deps/libsymla_matrix-2e7bc6a546302e2f.rmeta: crates/matrix/src/lib.rs crates/matrix/src/dense.rs crates/matrix/src/error.rs crates/matrix/src/generate.rs crates/matrix/src/kernels/mod.rs crates/matrix/src/kernels/cholesky.rs crates/matrix/src/kernels/flops.rs crates/matrix/src/kernels/gemm.rs crates/matrix/src/kernels/lu.rs crates/matrix/src/kernels/residual.rs crates/matrix/src/kernels/syrk.rs crates/matrix/src/kernels/trsm.rs crates/matrix/src/kernels/views.rs crates/matrix/src/packed.rs crates/matrix/src/scalar.rs crates/matrix/src/symmetric.rs crates/matrix/src/tiled.rs crates/matrix/src/triangular.rs crates/matrix/src/views.rs Cargo.toml

crates/matrix/src/lib.rs:
crates/matrix/src/dense.rs:
crates/matrix/src/error.rs:
crates/matrix/src/generate.rs:
crates/matrix/src/kernels/mod.rs:
crates/matrix/src/kernels/cholesky.rs:
crates/matrix/src/kernels/flops.rs:
crates/matrix/src/kernels/gemm.rs:
crates/matrix/src/kernels/lu.rs:
crates/matrix/src/kernels/residual.rs:
crates/matrix/src/kernels/syrk.rs:
crates/matrix/src/kernels/trsm.rs:
crates/matrix/src/kernels/views.rs:
crates/matrix/src/packed.rs:
crates/matrix/src/scalar.rs:
crates/matrix/src/symmetric.rs:
crates/matrix/src/tiled.rs:
crates/matrix/src/triangular.rs:
crates/matrix/src/views.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
