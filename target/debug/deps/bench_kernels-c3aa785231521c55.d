/root/repo/target/debug/deps/bench_kernels-c3aa785231521c55.d: crates/bench/benches/bench_kernels.rs Cargo.toml

/root/repo/target/debug/deps/libbench_kernels-c3aa785231521c55.rmeta: crates/bench/benches/bench_kernels.rs Cargo.toml

crates/bench/benches/bench_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
