/root/repo/target/debug/deps/paper_claims-7407b08268338789.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-7407b08268338789: tests/paper_claims.rs

tests/paper_claims.rs:
