/root/repo/target/debug/deps/bench_oi-71768707c2d88c58.d: crates/bench/benches/bench_oi.rs

/root/repo/target/debug/deps/bench_oi-71768707c2d88c58: crates/bench/benches/bench_oi.rs

crates/bench/benches/bench_oi.rs:
