/root/repo/target/debug/deps/symla_memory-e713549d404e73a2.d: crates/memory/src/lib.rs crates/memory/src/cache.rs crates/memory/src/error.rs crates/memory/src/machine.rs crates/memory/src/operand.rs crates/memory/src/region.rs crates/memory/src/stats.rs crates/memory/src/storage.rs crates/memory/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libsymla_memory-e713549d404e73a2.rmeta: crates/memory/src/lib.rs crates/memory/src/cache.rs crates/memory/src/error.rs crates/memory/src/machine.rs crates/memory/src/operand.rs crates/memory/src/region.rs crates/memory/src/stats.rs crates/memory/src/storage.rs crates/memory/src/trace.rs Cargo.toml

crates/memory/src/lib.rs:
crates/memory/src/cache.rs:
crates/memory/src/error.rs:
crates/memory/src/machine.rs:
crates/memory/src/operand.rs:
crates/memory/src/region.rs:
crates/memory/src/stats.rs:
crates/memory/src/storage.rs:
crates/memory/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
