/root/repo/target/debug/deps/symla-697ada49c31740b3.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsymla-697ada49c31740b3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
