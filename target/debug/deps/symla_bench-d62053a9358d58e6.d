/root/repo/target/debug/deps/symla_bench-d62053a9358d58e6.d: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

/root/repo/target/debug/deps/libsymla_bench-d62053a9358d58e6.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
