/root/repo/target/debug/deps/symla_core-e48f7f4a4871196f.d: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/bounds.rs crates/core/src/engine.rs crates/core/src/lbc.rs crates/core/src/oi.rs crates/core/src/parallel.rs crates/core/src/plan.rs crates/core/src/tbs.rs crates/core/src/tbs_tiled.rs

/root/repo/target/debug/deps/symla_core-e48f7f4a4871196f: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/bounds.rs crates/core/src/engine.rs crates/core/src/lbc.rs crates/core/src/oi.rs crates/core/src/parallel.rs crates/core/src/plan.rs crates/core/src/tbs.rs crates/core/src/tbs_tiled.rs

crates/core/src/lib.rs:
crates/core/src/api.rs:
crates/core/src/bounds.rs:
crates/core/src/engine.rs:
crates/core/src/lbc.rs:
crates/core/src/oi.rs:
crates/core/src/parallel.rs:
crates/core/src/plan.rs:
crates/core/src/tbs.rs:
crates/core/src/tbs_tiled.rs:
