/root/repo/target/debug/deps/symla_baselines-e81b31c5d8bca01f.d: crates/baselines/src/lib.rs crates/baselines/src/error.rs crates/baselines/src/ooc_chol.rs crates/baselines/src/ooc_gemm.rs crates/baselines/src/ooc_lu.rs crates/baselines/src/ooc_syrk.rs crates/baselines/src/ooc_trsm.rs crates/baselines/src/params.rs Cargo.toml

/root/repo/target/debug/deps/libsymla_baselines-e81b31c5d8bca01f.rmeta: crates/baselines/src/lib.rs crates/baselines/src/error.rs crates/baselines/src/ooc_chol.rs crates/baselines/src/ooc_gemm.rs crates/baselines/src/ooc_lu.rs crates/baselines/src/ooc_syrk.rs crates/baselines/src/ooc_trsm.rs crates/baselines/src/params.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/error.rs:
crates/baselines/src/ooc_chol.rs:
crates/baselines/src/ooc_gemm.rs:
crates/baselines/src/ooc_lu.rs:
crates/baselines/src/ooc_syrk.rs:
crates/baselines/src/ooc_trsm.rs:
crates/baselines/src/params.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
