/root/repo/target/debug/deps/symla-5183998184069526.d: src/lib.rs

/root/repo/target/debug/deps/libsymla-5183998184069526.rlib: src/lib.rs

/root/repo/target/debug/deps/libsymla-5183998184069526.rmeta: src/lib.rs

src/lib.rs:
