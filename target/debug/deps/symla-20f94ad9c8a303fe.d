/root/repo/target/debug/deps/symla-20f94ad9c8a303fe.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsymla-20f94ad9c8a303fe.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
