/root/repo/target/debug/deps/experiments-cad79c6d05bbb34c.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-cad79c6d05bbb34c.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
