/root/repo/target/debug/deps/symla_baselines-4f11012ab4d0e2dd.d: crates/baselines/src/lib.rs crates/baselines/src/error.rs crates/baselines/src/ooc_chol.rs crates/baselines/src/ooc_gemm.rs crates/baselines/src/ooc_lu.rs crates/baselines/src/ooc_syrk.rs crates/baselines/src/ooc_trsm.rs crates/baselines/src/params.rs

/root/repo/target/debug/deps/symla_baselines-4f11012ab4d0e2dd: crates/baselines/src/lib.rs crates/baselines/src/error.rs crates/baselines/src/ooc_chol.rs crates/baselines/src/ooc_gemm.rs crates/baselines/src/ooc_lu.rs crates/baselines/src/ooc_syrk.rs crates/baselines/src/ooc_trsm.rs crates/baselines/src/params.rs

crates/baselines/src/lib.rs:
crates/baselines/src/error.rs:
crates/baselines/src/ooc_chol.rs:
crates/baselines/src/ooc_gemm.rs:
crates/baselines/src/ooc_lu.rs:
crates/baselines/src/ooc_syrk.rs:
crates/baselines/src/ooc_trsm.rs:
crates/baselines/src/params.rs:
