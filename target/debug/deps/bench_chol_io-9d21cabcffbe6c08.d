/root/repo/target/debug/deps/bench_chol_io-9d21cabcffbe6c08.d: crates/bench/benches/bench_chol_io.rs

/root/repo/target/debug/deps/bench_chol_io-9d21cabcffbe6c08: crates/bench/benches/bench_chol_io.rs

crates/bench/benches/bench_chol_io.rs:
