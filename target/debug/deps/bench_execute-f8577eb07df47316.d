/root/repo/target/debug/deps/bench_execute-f8577eb07df47316.d: crates/bench/benches/bench_execute.rs

/root/repo/target/debug/deps/bench_execute-f8577eb07df47316: crates/bench/benches/bench_execute.rs

crates/bench/benches/bench_execute.rs:
