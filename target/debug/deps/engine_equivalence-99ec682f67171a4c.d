/root/repo/target/debug/deps/engine_equivalence-99ec682f67171a4c.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-99ec682f67171a4c: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
