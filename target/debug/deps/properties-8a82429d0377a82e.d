/root/repo/target/debug/deps/properties-8a82429d0377a82e.d: crates/sched/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-8a82429d0377a82e.rmeta: crates/sched/tests/properties.rs Cargo.toml

crates/sched/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
