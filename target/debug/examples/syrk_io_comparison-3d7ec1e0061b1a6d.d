/root/repo/target/debug/examples/syrk_io_comparison-3d7ec1e0061b1a6d.d: examples/syrk_io_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libsyrk_io_comparison-3d7ec1e0061b1a6d.rmeta: examples/syrk_io_comparison.rs Cargo.toml

examples/syrk_io_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
