/root/repo/target/debug/examples/quickstart-fd07f7d7e48b23d4.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-fd07f7d7e48b23d4: examples/quickstart.rs

examples/quickstart.rs:
