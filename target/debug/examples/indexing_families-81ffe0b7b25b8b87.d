/root/repo/target/debug/examples/indexing_families-81ffe0b7b25b8b87.d: examples/indexing_families.rs Cargo.toml

/root/repo/target/debug/examples/libindexing_families-81ffe0b7b25b8b87.rmeta: examples/indexing_families.rs Cargo.toml

examples/indexing_families.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
