/root/repo/target/debug/examples/out_of_core_cholesky-034f02bb5ff1bd56.d: examples/out_of_core_cholesky.rs Cargo.toml

/root/repo/target/debug/examples/libout_of_core_cholesky-034f02bb5ff1bd56.rmeta: examples/out_of_core_cholesky.rs Cargo.toml

examples/out_of_core_cholesky.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
