/root/repo/target/debug/examples/indexing_families-306346c94f929c65.d: examples/indexing_families.rs

/root/repo/target/debug/examples/indexing_families-306346c94f929c65: examples/indexing_families.rs

examples/indexing_families.rs:
