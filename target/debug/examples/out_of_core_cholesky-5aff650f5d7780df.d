/root/repo/target/debug/examples/out_of_core_cholesky-5aff650f5d7780df.d: examples/out_of_core_cholesky.rs

/root/repo/target/debug/examples/out_of_core_cholesky-5aff650f5d7780df: examples/out_of_core_cholesky.rs

examples/out_of_core_cholesky.rs:
