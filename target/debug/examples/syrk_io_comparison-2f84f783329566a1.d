/root/repo/target/debug/examples/syrk_io_comparison-2f84f783329566a1.d: examples/syrk_io_comparison.rs

/root/repo/target/debug/examples/syrk_io_comparison-2f84f783329566a1: examples/syrk_io_comparison.rs

examples/syrk_io_comparison.rs:
