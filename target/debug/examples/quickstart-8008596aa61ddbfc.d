/root/repo/target/debug/examples/quickstart-8008596aa61ddbfc.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-8008596aa61ddbfc.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
