/root/repo/target/debug/examples/blocksize_sweep-d04c4789221122b7.d: examples/blocksize_sweep.rs

/root/repo/target/debug/examples/blocksize_sweep-d04c4789221122b7: examples/blocksize_sweep.rs

examples/blocksize_sweep.rs:
