/root/repo/target/debug/examples/blocksize_sweep-8720b492a6e05ab2.d: examples/blocksize_sweep.rs Cargo.toml

/root/repo/target/debug/examples/libblocksize_sweep-8720b492a6e05ab2.rmeta: examples/blocksize_sweep.rs Cargo.toml

examples/blocksize_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
