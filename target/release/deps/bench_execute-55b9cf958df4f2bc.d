/root/repo/target/release/deps/bench_execute-55b9cf958df4f2bc.d: crates/bench/benches/bench_execute.rs

/root/repo/target/release/deps/bench_execute-55b9cf958df4f2bc: crates/bench/benches/bench_execute.rs

crates/bench/benches/bench_execute.rs:
