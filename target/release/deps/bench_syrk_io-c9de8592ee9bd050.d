/root/repo/target/release/deps/bench_syrk_io-c9de8592ee9bd050.d: crates/bench/benches/bench_syrk_io.rs

/root/repo/target/release/deps/bench_syrk_io-c9de8592ee9bd050: crates/bench/benches/bench_syrk_io.rs

crates/bench/benches/bench_syrk_io.rs:
