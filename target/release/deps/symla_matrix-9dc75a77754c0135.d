/root/repo/target/release/deps/symla_matrix-9dc75a77754c0135.d: crates/matrix/src/lib.rs crates/matrix/src/dense.rs crates/matrix/src/error.rs crates/matrix/src/generate.rs crates/matrix/src/kernels/mod.rs crates/matrix/src/kernels/cholesky.rs crates/matrix/src/kernels/flops.rs crates/matrix/src/kernels/gemm.rs crates/matrix/src/kernels/lu.rs crates/matrix/src/kernels/residual.rs crates/matrix/src/kernels/syrk.rs crates/matrix/src/kernels/trsm.rs crates/matrix/src/kernels/views.rs crates/matrix/src/packed.rs crates/matrix/src/scalar.rs crates/matrix/src/symmetric.rs crates/matrix/src/tiled.rs crates/matrix/src/triangular.rs crates/matrix/src/views.rs

/root/repo/target/release/deps/libsymla_matrix-9dc75a77754c0135.rlib: crates/matrix/src/lib.rs crates/matrix/src/dense.rs crates/matrix/src/error.rs crates/matrix/src/generate.rs crates/matrix/src/kernels/mod.rs crates/matrix/src/kernels/cholesky.rs crates/matrix/src/kernels/flops.rs crates/matrix/src/kernels/gemm.rs crates/matrix/src/kernels/lu.rs crates/matrix/src/kernels/residual.rs crates/matrix/src/kernels/syrk.rs crates/matrix/src/kernels/trsm.rs crates/matrix/src/kernels/views.rs crates/matrix/src/packed.rs crates/matrix/src/scalar.rs crates/matrix/src/symmetric.rs crates/matrix/src/tiled.rs crates/matrix/src/triangular.rs crates/matrix/src/views.rs

/root/repo/target/release/deps/libsymla_matrix-9dc75a77754c0135.rmeta: crates/matrix/src/lib.rs crates/matrix/src/dense.rs crates/matrix/src/error.rs crates/matrix/src/generate.rs crates/matrix/src/kernels/mod.rs crates/matrix/src/kernels/cholesky.rs crates/matrix/src/kernels/flops.rs crates/matrix/src/kernels/gemm.rs crates/matrix/src/kernels/lu.rs crates/matrix/src/kernels/residual.rs crates/matrix/src/kernels/syrk.rs crates/matrix/src/kernels/trsm.rs crates/matrix/src/kernels/views.rs crates/matrix/src/packed.rs crates/matrix/src/scalar.rs crates/matrix/src/symmetric.rs crates/matrix/src/tiled.rs crates/matrix/src/triangular.rs crates/matrix/src/views.rs

crates/matrix/src/lib.rs:
crates/matrix/src/dense.rs:
crates/matrix/src/error.rs:
crates/matrix/src/generate.rs:
crates/matrix/src/kernels/mod.rs:
crates/matrix/src/kernels/cholesky.rs:
crates/matrix/src/kernels/flops.rs:
crates/matrix/src/kernels/gemm.rs:
crates/matrix/src/kernels/lu.rs:
crates/matrix/src/kernels/residual.rs:
crates/matrix/src/kernels/syrk.rs:
crates/matrix/src/kernels/trsm.rs:
crates/matrix/src/kernels/views.rs:
crates/matrix/src/packed.rs:
crates/matrix/src/scalar.rs:
crates/matrix/src/symmetric.rs:
crates/matrix/src/tiled.rs:
crates/matrix/src/triangular.rs:
crates/matrix/src/views.rs:
