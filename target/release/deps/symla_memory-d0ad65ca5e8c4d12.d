/root/repo/target/release/deps/symla_memory-d0ad65ca5e8c4d12.d: crates/memory/src/lib.rs crates/memory/src/cache.rs crates/memory/src/error.rs crates/memory/src/machine.rs crates/memory/src/operand.rs crates/memory/src/region.rs crates/memory/src/stats.rs crates/memory/src/storage.rs crates/memory/src/trace.rs

/root/repo/target/release/deps/libsymla_memory-d0ad65ca5e8c4d12.rlib: crates/memory/src/lib.rs crates/memory/src/cache.rs crates/memory/src/error.rs crates/memory/src/machine.rs crates/memory/src/operand.rs crates/memory/src/region.rs crates/memory/src/stats.rs crates/memory/src/storage.rs crates/memory/src/trace.rs

/root/repo/target/release/deps/libsymla_memory-d0ad65ca5e8c4d12.rmeta: crates/memory/src/lib.rs crates/memory/src/cache.rs crates/memory/src/error.rs crates/memory/src/machine.rs crates/memory/src/operand.rs crates/memory/src/region.rs crates/memory/src/stats.rs crates/memory/src/storage.rs crates/memory/src/trace.rs

crates/memory/src/lib.rs:
crates/memory/src/cache.rs:
crates/memory/src/error.rs:
crates/memory/src/machine.rs:
crates/memory/src/operand.rs:
crates/memory/src/region.rs:
crates/memory/src/stats.rs:
crates/memory/src/storage.rs:
crates/memory/src/trace.rs:
