/root/repo/target/release/deps/symla_bench-451c09f876de0554.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libsymla_bench-451c09f876de0554.rlib: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/libsymla_bench-451c09f876de0554.rmeta: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
