/root/repo/target/release/deps/symla_bench-9dd5b35ebced40d0.d: crates/bench/src/lib.rs crates/bench/src/harness.rs

/root/repo/target/release/deps/symla_bench-9dd5b35ebced40d0: crates/bench/src/lib.rs crates/bench/src/harness.rs

crates/bench/src/lib.rs:
crates/bench/src/harness.rs:
