/root/repo/target/release/deps/experiments-e92651d45f8846b2.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-e92651d45f8846b2: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
