/root/repo/target/release/deps/symla_core-bac3739be290317a.d: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/bounds.rs crates/core/src/engine.rs crates/core/src/lbc.rs crates/core/src/oi.rs crates/core/src/parallel.rs crates/core/src/plan.rs crates/core/src/tbs.rs crates/core/src/tbs_tiled.rs

/root/repo/target/release/deps/libsymla_core-bac3739be290317a.rlib: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/bounds.rs crates/core/src/engine.rs crates/core/src/lbc.rs crates/core/src/oi.rs crates/core/src/parallel.rs crates/core/src/plan.rs crates/core/src/tbs.rs crates/core/src/tbs_tiled.rs

/root/repo/target/release/deps/libsymla_core-bac3739be290317a.rmeta: crates/core/src/lib.rs crates/core/src/api.rs crates/core/src/bounds.rs crates/core/src/engine.rs crates/core/src/lbc.rs crates/core/src/oi.rs crates/core/src/parallel.rs crates/core/src/plan.rs crates/core/src/tbs.rs crates/core/src/tbs_tiled.rs

crates/core/src/lib.rs:
crates/core/src/api.rs:
crates/core/src/bounds.rs:
crates/core/src/engine.rs:
crates/core/src/lbc.rs:
crates/core/src/oi.rs:
crates/core/src/parallel.rs:
crates/core/src/plan.rs:
crates/core/src/tbs.rs:
crates/core/src/tbs_tiled.rs:
