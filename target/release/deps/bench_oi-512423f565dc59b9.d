/root/repo/target/release/deps/bench_oi-512423f565dc59b9.d: crates/bench/benches/bench_oi.rs

/root/repo/target/release/deps/bench_oi-512423f565dc59b9: crates/bench/benches/bench_oi.rs

crates/bench/benches/bench_oi.rs:
