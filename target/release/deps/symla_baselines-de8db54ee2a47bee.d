/root/repo/target/release/deps/symla_baselines-de8db54ee2a47bee.d: crates/baselines/src/lib.rs crates/baselines/src/error.rs crates/baselines/src/ooc_chol.rs crates/baselines/src/ooc_gemm.rs crates/baselines/src/ooc_lu.rs crates/baselines/src/ooc_syrk.rs crates/baselines/src/ooc_trsm.rs crates/baselines/src/params.rs

/root/repo/target/release/deps/libsymla_baselines-de8db54ee2a47bee.rlib: crates/baselines/src/lib.rs crates/baselines/src/error.rs crates/baselines/src/ooc_chol.rs crates/baselines/src/ooc_gemm.rs crates/baselines/src/ooc_lu.rs crates/baselines/src/ooc_syrk.rs crates/baselines/src/ooc_trsm.rs crates/baselines/src/params.rs

/root/repo/target/release/deps/libsymla_baselines-de8db54ee2a47bee.rmeta: crates/baselines/src/lib.rs crates/baselines/src/error.rs crates/baselines/src/ooc_chol.rs crates/baselines/src/ooc_gemm.rs crates/baselines/src/ooc_lu.rs crates/baselines/src/ooc_syrk.rs crates/baselines/src/ooc_trsm.rs crates/baselines/src/params.rs

crates/baselines/src/lib.rs:
crates/baselines/src/error.rs:
crates/baselines/src/ooc_chol.rs:
crates/baselines/src/ooc_gemm.rs:
crates/baselines/src/ooc_lu.rs:
crates/baselines/src/ooc_syrk.rs:
crates/baselines/src/ooc_trsm.rs:
crates/baselines/src/params.rs:
