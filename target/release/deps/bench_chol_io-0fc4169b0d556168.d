/root/repo/target/release/deps/bench_chol_io-0fc4169b0d556168.d: crates/bench/benches/bench_chol_io.rs

/root/repo/target/release/deps/bench_chol_io-0fc4169b0d556168: crates/bench/benches/bench_chol_io.rs

crates/bench/benches/bench_chol_io.rs:
