/root/repo/target/release/deps/symla-433e1a3a870c2d21.d: src/lib.rs

/root/repo/target/release/deps/libsymla-433e1a3a870c2d21.rlib: src/lib.rs

/root/repo/target/release/deps/libsymla-433e1a3a870c2d21.rmeta: src/lib.rs

src/lib.rs:
