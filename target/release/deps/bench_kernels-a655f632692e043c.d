/root/repo/target/release/deps/bench_kernels-a655f632692e043c.d: crates/bench/benches/bench_kernels.rs

/root/repo/target/release/deps/bench_kernels-a655f632692e043c: crates/bench/benches/bench_kernels.rs

crates/bench/benches/bench_kernels.rs:
