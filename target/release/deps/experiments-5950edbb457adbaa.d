/root/repo/target/release/deps/experiments-5950edbb457adbaa.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-5950edbb457adbaa: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
