/root/repo/target/release/deps/bench_parallel-7ee43b05bcf5f6c4.d: crates/bench/benches/bench_parallel.rs

/root/repo/target/release/deps/bench_parallel-7ee43b05bcf5f6c4: crates/bench/benches/bench_parallel.rs

crates/bench/benches/bench_parallel.rs:
