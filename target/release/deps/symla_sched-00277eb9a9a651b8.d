/root/repo/target/release/deps/symla_sched-00277eb9a9a651b8.d: crates/sched/src/lib.rs crates/sched/src/balanced.rs crates/sched/src/engine.rs crates/sched/src/footprint.rs crates/sched/src/indexing.rs crates/sched/src/ir.rs crates/sched/src/ops.rs crates/sched/src/opt.rs crates/sched/src/partition.rs crates/sched/src/triangle.rs

/root/repo/target/release/deps/libsymla_sched-00277eb9a9a651b8.rlib: crates/sched/src/lib.rs crates/sched/src/balanced.rs crates/sched/src/engine.rs crates/sched/src/footprint.rs crates/sched/src/indexing.rs crates/sched/src/ir.rs crates/sched/src/ops.rs crates/sched/src/opt.rs crates/sched/src/partition.rs crates/sched/src/triangle.rs

/root/repo/target/release/deps/libsymla_sched-00277eb9a9a651b8.rmeta: crates/sched/src/lib.rs crates/sched/src/balanced.rs crates/sched/src/engine.rs crates/sched/src/footprint.rs crates/sched/src/indexing.rs crates/sched/src/ir.rs crates/sched/src/ops.rs crates/sched/src/opt.rs crates/sched/src/partition.rs crates/sched/src/triangle.rs

crates/sched/src/lib.rs:
crates/sched/src/balanced.rs:
crates/sched/src/engine.rs:
crates/sched/src/footprint.rs:
crates/sched/src/indexing.rs:
crates/sched/src/ir.rs:
crates/sched/src/ops.rs:
crates/sched/src/opt.rs:
crates/sched/src/partition.rs:
crates/sched/src/triangle.rs:
