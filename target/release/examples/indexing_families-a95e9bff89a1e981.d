/root/repo/target/release/examples/indexing_families-a95e9bff89a1e981.d: examples/indexing_families.rs

/root/repo/target/release/examples/indexing_families-a95e9bff89a1e981: examples/indexing_families.rs

examples/indexing_families.rs:
