/root/repo/target/release/examples/quickstart-b5d1bd9daed485a9.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-b5d1bd9daed485a9: examples/quickstart.rs

examples/quickstart.rs:
