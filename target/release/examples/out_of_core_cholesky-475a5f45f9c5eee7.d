/root/repo/target/release/examples/out_of_core_cholesky-475a5f45f9c5eee7.d: examples/out_of_core_cholesky.rs

/root/repo/target/release/examples/out_of_core_cholesky-475a5f45f9c5eee7: examples/out_of_core_cholesky.rs

examples/out_of_core_cholesky.rs:
