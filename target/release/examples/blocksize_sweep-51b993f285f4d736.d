/root/repo/target/release/examples/blocksize_sweep-51b993f285f4d736.d: examples/blocksize_sweep.rs

/root/repo/target/release/examples/blocksize_sweep-51b993f285f4d736: examples/blocksize_sweep.rs

examples/blocksize_sweep.rs:
