/root/repo/target/release/examples/syrk_io_comparison-71d2e9b979d0d5ac.d: examples/syrk_io_comparison.rs

/root/repo/target/release/examples/syrk_io_comparison-71d2e9b979d0d5ac: examples/syrk_io_comparison.rs

examples/syrk_io_comparison.rs:
